//! Offline stand-in for the subset of `parking_lot` used by this
//! workspace: `RwLock` and `Mutex` with non-poisoning guards.
//!
//! Wraps the `std::sync` primitives; a poisoned lock is recovered rather
//! than propagated, matching `parking_lot`'s semantics of not poisoning.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock whose guards never poison.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock whose guard never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), [1, 2]);
    }

    #[test]
    fn shared_across_threads() {
        let lock = std::sync::Arc::new(RwLock::new(0u32));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *lock.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), 400);
    }
}
