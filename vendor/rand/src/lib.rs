//! Offline stand-in for the subset of the `rand` 0.9 API used by this
//! workspace: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods `random_range` / `random_bool`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of external APIs it needs (see `vendor/`). The
//! generator is SplitMix64 — deterministic, seedable, and statistically
//! solid for test-data generation (it is not, and does not need to be,
//! cryptographic).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// The sampling interface, mirroring the `rand::Rng` methods in use.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 random bits → uniform f64 in [0, 1)
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// A range that can be sampled uniformly for values of type `T`.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic seedable generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.random_range(1..=5usize);
            assert!((1..=5).contains(&y));
            let z = rng.random_range(-4..5i32);
            assert!((-4..5).contains(&z));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let hits = (0..1000).filter(|_| rng.random_bool(0.3)).count();
        assert!((150..450).contains(&hits), "p=0.3 gave {hits}/1000");
    }
}
