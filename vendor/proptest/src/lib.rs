//! Offline stand-in for the subset of the `proptest` API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the external APIs its tests rely on. This implementation keeps
//! the *shape* of proptest — `Strategy`, `prop_map`, `prop_recursive`,
//! `prop_oneof!`, `prop::collection::vec`, regex-like string strategies,
//! and the `proptest!` test macro — over a much simpler engine: each test
//! runs `ProptestConfig::cases` deterministic pseudo-random cases seeded
//! from the test name. There is no shrinking; a failing case reports its
//! case number and seed so it can be replayed by rerunning the test.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

mod pattern;
pub mod test_runner;

pub use test_runner::{ProptestConfig, TestRng};

// ---------------------------------------------------------------------------
// Strategy and adapters
// ---------------------------------------------------------------------------

/// A generator of pseudo-random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds recursive values: `self` generates leaves, and `grow` turns a
    /// strategy for depth-`n` values into one for depth-`n+1` values. The
    /// `_desired_size` and `_expected_branch` hints are accepted for
    /// proptest compatibility but unused.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        grow: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        Recursive {
            base: self.boxed(),
            grow: Rc::new(move |inner| grow(inner).boxed()),
            depth,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Picks uniformly among alternatives (the engine behind [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// The result of [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    #[allow(clippy::type_complexity)]
    grow: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            grow: self.grow.clone(),
            depth: self.depth,
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.below(u64::from(self.depth) + 1) as u32;
        let mut strategy = self.base.clone();
        for _ in 0..levels {
            strategy = (self.grow)(strategy);
        }
        strategy.generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: integer ranges, chars, strings from patterns, tuples
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u64;
                (start as i128 + rng.below_inclusive(width) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Character strategies, mirroring `proptest::char`.
pub mod char {
    use super::{Strategy, TestRng};

    /// Uniform characters in `[start, end]`, skipping surrogate codepoints.
    pub fn range(start: char, end: char) -> CharRange {
        assert!(start <= end, "cannot sample empty char range");
        CharRange { start, end }
    }

    /// The strategy returned by [`range`].
    #[derive(Debug, Clone, Copy)]
    pub struct CharRange {
        start: char,
        end: char,
    }

    impl Strategy for CharRange {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            let (lo, hi) = (self.start as u32, self.end as u32);
            loop {
                let code = lo + rng.below_inclusive(u64::from(hi - lo)) as u32;
                if let Some(c) = std::char::from_u32(code) {
                    return c;
                }
            }
        }
    }
}

/// String-valued strategy from a regex-like pattern (see [`pattern`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let parsed = pattern::Pattern::parse(self)
            .unwrap_or_else(|e| panic!("unsupported proptest string pattern {self:?}: {e}"));
        parsed.generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `size` (half-open) and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "cannot sample empty size range");
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(width) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniformly picks one of several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that runs the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run_proptest(&config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                $body
            });
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}

/// Common imports for property tests, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[derive(Debug, Clone)]
    enum Tree {
        Leaf(u8),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
        }
    }

    fn max_leaf(t: &Tree) -> u8 {
        match t {
            Tree::Leaf(n) => *n,
            Tree::Node(children) => children.iter().map(max_leaf).max().unwrap_or(0),
        }
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                prop::collection::vec(inner, 1..4).prop_map(Tree::Node)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 0u8..16, b in 3usize..9) {
            prop_assert!(a < 16);
            prop_assert!((3..9).contains(&b));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(matches!(x, 1 | 2 | 5 | 6));
        }

        #[test]
        fn recursive_depth_bounded(t in arb_tree()) {
            prop_assert!(depth(&t) <= 3);
            prop_assert!(max_leaf(&t) < 10);
        }

        #[test]
        fn char_range_bounds(c in crate::char::range('a', 'm')) {
            prop_assert!(('a'..='m').contains(&c));
        }

        #[test]
        fn tuples_compose(pair in (0u8..4, "[x-z]{2,3}")) {
            let (n, s) = pair;
            prop_assert!(n < 4);
            prop_assert!((2..=3).contains(&s.chars().count()));
            prop_assert!(s.chars().all(|c| ('x'..='z').contains(&c)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("fixed");
        let mut b = TestRng::from_name("fixed");
        let strat = prop::collection::vec(0u64..1000, 0..10);
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        run_with_failure();
    }

    fn run_with_failure() {
        crate::test_runner::run_proptest(&ProptestConfig::with_cases(5), "always_fails", |_rng| {
            panic!("boom")
        });
    }
}
