//! A regex-like string generator covering the pattern dialect the
//! workspace's property tests use: literals, character classes (with
//! ranges, negation, and `\xHH` escapes), `\d`, `\PC` (any non-control
//! character), `.`, and the quantifiers `{m}`, `{m,n}`, `*`, `+`, `?`.
//!
//! Unsupported syntax (groups, alternation, anchors…) is rejected with an
//! error naming the offending construct, so a new test using a fancier
//! pattern fails loudly instead of generating wrong data.

use std::iter::Peekable;
use std::str::Chars;

use crate::test_runner::TestRng;

/// Characters drawn for `\PC`, `.`, and as candidates for negated
/// classes: printable ASCII plus a few multi-byte characters so Unicode
/// handling gets exercised too.
fn printable_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..=0x7E).map(char::from).collect();
    pool.extend(['¡', 'é', 'ß', 'λ', '中', '€', '🙂']);
    pool
}

/// Upper repetition bound substituted for the unbounded `*` and `+`.
const UNBOUNDED_MAX: u32 = 8;

/// A parsed pattern: a sequence of repeated character classes.
#[derive(Debug, Clone)]
pub struct Pattern {
    parts: Vec<Part>,
}

#[derive(Debug, Clone)]
struct Part {
    class: CharClass,
    min: u32,
    max: u32,
}

#[derive(Debug, Clone)]
enum CharClass {
    Literal(char),
    Ranges(Vec<(char, char)>),
    Negated(Vec<(char, char)>),
    /// `\PC` — any character outside Unicode category C (controls).
    NonControl,
    /// `.` — any character except newline.
    Dot,
}

impl Pattern {
    /// Parses `src`, rejecting unsupported regex syntax.
    pub fn parse(src: &str) -> Result<Pattern, String> {
        let mut chars = src.chars().peekable();
        let mut parts = Vec::new();
        while let Some(c) = chars.next() {
            let class = match c {
                '[' => parse_class(&mut chars)?,
                '\\' => parse_escape(&mut chars)?,
                '.' => CharClass::Dot,
                '(' | ')' | '|' | '^' | '$' | '*' | '+' | '?' | '{' | '}' | ']' => {
                    return Err(format!("unsupported pattern syntax {c:?}"));
                }
                other => CharClass::Literal(other),
            };
            let (min, max) = parse_quantifier(&mut chars)?;
            parts.push(Part { class, min, max });
        }
        Ok(Pattern { parts })
    }

    /// Generates one string matching the pattern.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for part in &self.parts {
            let n = part.min + rng.below_inclusive(u64::from(part.max - part.min)) as u32;
            for _ in 0..n {
                out.push(part.class.sample(rng));
            }
        }
        out
    }
}

impl CharClass {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharClass::Literal(c) => *c,
            CharClass::Ranges(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|&(lo, hi)| u64::from(hi as u32 - lo as u32) + 1)
                    .sum();
                let mut idx = rng.below(total);
                for &(lo, hi) in ranges {
                    let size = u64::from(hi as u32 - lo as u32) + 1;
                    if idx < size {
                        // ranges in this dialect never straddle surrogates
                        return std::char::from_u32(lo as u32 + idx as u32)
                            .expect("class range stays within valid scalar values");
                    }
                    idx -= size;
                }
                unreachable!("index within total size")
            }
            CharClass::Negated(excluded) => {
                let pool = {
                    let mut p = printable_pool();
                    p.extend(['\t', '\n', '\r']);
                    p
                };
                let allowed = |c: char| !excluded.iter().any(|&(lo, hi)| (lo..=hi).contains(&c));
                for _ in 0..100 {
                    let c = pool[rng.below(pool.len() as u64) as usize];
                    if allowed(c) {
                        return c;
                    }
                }
                pool.into_iter()
                    .find(|&c| allowed(c))
                    .expect("negated class excludes the entire candidate pool")
            }
            CharClass::NonControl => {
                let pool = printable_pool();
                pool[rng.below(pool.len() as u64) as usize]
            }
            CharClass::Dot => loop {
                let pool = printable_pool();
                let c = pool[rng.below(pool.len() as u64) as usize];
                if c != '\n' {
                    return c;
                }
            },
        }
    }
}

enum ClassAtom {
    Char(char),
    Set(Vec<(char, char)>),
}

fn parse_escape(chars: &mut Peekable<Chars<'_>>) -> Result<CharClass, String> {
    match chars.next().ok_or("dangling backslash")? {
        'P' => match chars.next() {
            Some('C') => Ok(CharClass::NonControl),
            other => Err(format!("unsupported \\P category {other:?}")),
        },
        'd' => Ok(CharClass::Ranges(vec![('0', '9')])),
        'x' => Ok(CharClass::Literal(parse_hex_escape(chars)?)),
        't' => Ok(CharClass::Literal('\t')),
        'n' => Ok(CharClass::Literal('\n')),
        'r' => Ok(CharClass::Literal('\r')),
        c @ ('\\' | '.' | '-' | '[' | ']' | '(' | ')' | '{' | '}' | '*' | '+' | '?' | '|' | '^'
        | '$' | '\'' | '"' | '/') => Ok(CharClass::Literal(c)),
        other => Err(format!("unsupported escape \\{other}")),
    }
}

fn parse_class_escape(chars: &mut Peekable<Chars<'_>>) -> Result<ClassAtom, String> {
    match chars.next().ok_or("dangling backslash in class")? {
        'd' => Ok(ClassAtom::Set(vec![('0', '9')])),
        'x' => Ok(ClassAtom::Char(parse_hex_escape(chars)?)),
        't' => Ok(ClassAtom::Char('\t')),
        'n' => Ok(ClassAtom::Char('\n')),
        'r' => Ok(ClassAtom::Char('\r')),
        other => Ok(ClassAtom::Char(other)),
    }
}

fn parse_hex_escape(chars: &mut Peekable<Chars<'_>>) -> Result<char, String> {
    let mut value = 0u32;
    for _ in 0..2 {
        let d = chars.next().ok_or("truncated \\x escape")?;
        value = value * 16
            + d.to_digit(16)
                .ok_or_else(|| format!("bad hex digit {d:?}"))?;
    }
    std::char::from_u32(value).ok_or_else(|| format!("\\x{value:02x} is not a scalar value"))
}

fn parse_class(chars: &mut Peekable<Chars<'_>>) -> Result<CharClass, String> {
    let negated = chars.peek() == Some(&'^') && {
        chars.next();
        true
    };
    let mut ranges: Vec<(char, char)> = Vec::new();
    loop {
        let c = chars.next().ok_or("unterminated character class")?;
        if c == ']' {
            if ranges.is_empty() {
                return Err("empty character class".into());
            }
            break;
        }
        let atom = if c == '\\' {
            parse_class_escape(chars)?
        } else {
            ClassAtom::Char(c)
        };
        match atom {
            ClassAtom::Set(set) => ranges.extend(set),
            ClassAtom::Char(start) => {
                if chars.peek() == Some(&'-') {
                    chars.next();
                    match chars.peek() {
                        Some(']') | None => {
                            // trailing '-' is a literal
                            ranges.push((start, start));
                            ranges.push(('-', '-'));
                        }
                        Some('\\') => {
                            chars.next();
                            match parse_class_escape(chars)? {
                                ClassAtom::Char(end) if start <= end => ranges.push((start, end)),
                                ClassAtom::Char(end) => {
                                    return Err(format!("inverted range {start:?}-{end:?}"))
                                }
                                ClassAtom::Set(_) => {
                                    return Err("class set as range endpoint".into())
                                }
                            }
                        }
                        Some(&end) => {
                            chars.next();
                            if start > end {
                                return Err(format!("inverted range {start:?}-{end:?}"));
                            }
                            ranges.push((start, end));
                        }
                    }
                } else {
                    ranges.push((start, start));
                }
            }
        }
    }
    Ok(if negated {
        CharClass::Negated(ranges)
    } else {
        CharClass::Ranges(ranges)
    })
}

fn parse_quantifier(chars: &mut Peekable<Chars<'_>>) -> Result<(u32, u32), String> {
    let (min, max) = match chars.peek() {
        Some('{') => {
            chars.next();
            let min = parse_number(chars)?;
            let max = match chars.peek() {
                Some(',') => {
                    chars.next();
                    parse_number(chars)?
                }
                _ => min,
            };
            match chars.next() {
                Some('}') => (min, max),
                other => return Err(format!("expected '}}' in quantifier, got {other:?}")),
            }
        }
        Some('*') => {
            chars.next();
            (0, UNBOUNDED_MAX)
        }
        Some('+') => {
            chars.next();
            (1, UNBOUNDED_MAX)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        _ => (1, 1),
    };
    if min > max {
        return Err(format!("quantifier {{{min},{max}}} is inverted"));
    }
    Ok((min, max))
}

fn parse_number(chars: &mut Peekable<Chars<'_>>) -> Result<u32, String> {
    let mut digits = String::new();
    while matches!(chars.peek(), Some(c) if c.is_ascii_digit()) {
        digits.push(chars.next().expect("peeked"));
    }
    digits
        .parse()
        .map_err(|_| format!("expected number in quantifier, got {digits:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: u64) -> String {
        Pattern::parse(pattern)
            .unwrap()
            .generate(&mut TestRng::from_seed(seed))
    }

    fn check_all(pattern: &str, len_bounds: (usize, usize), allowed: impl Fn(char) -> bool) {
        for seed in 0..200 {
            let s = gen(pattern, seed);
            let n = s.chars().count();
            assert!(
                (len_bounds.0..=len_bounds.1).contains(&n),
                "{pattern}: length {n} outside {len_bounds:?} in {s:?}"
            );
            for c in s.chars() {
                assert!(allowed(c), "{pattern}: produced {c:?} in {s:?}");
            }
        }
    }

    #[test]
    fn simple_classes() {
        check_all("[a-z]{1,6}", (1, 6), |c| c.is_ascii_lowercase());
        check_all("[a-z ]{0,8}", (0, 8), |c| {
            c.is_ascii_lowercase() || c == ' '
        });
        check_all("[abc0-9]{0,12}", (0, 12), |c| {
            matches!(c, 'a' | 'b' | 'c' | '0'..='9')
        });
        check_all("[a-c]", (1, 1), |c| ('a'..='c').contains(&c));
    }

    #[test]
    fn escaped_metacharacters_in_class() {
        check_all("[<>/a-z\"'= &;!?\\-\\[\\]]{0,100}", (0, 100), |c| {
            c.is_ascii_lowercase() || "<>/\"'= &;!?-[]".contains(c)
        });
    }

    #[test]
    fn negated_class_excludes_controls() {
        check_all("[^\\x00-\\x08\\x0b\\x0c\\x0e-\\x1f]{0,40}", (0, 40), |c| {
            !(('\x00'..='\x08').contains(&c)
                || c == '\x0b'
                || c == '\x0c'
                || ('\x0e'..='\x1f').contains(&c))
        });
    }

    #[test]
    fn non_control_category() {
        check_all("\\PC{0,200}", (0, 200), |c| !c.is_control());
    }

    #[test]
    fn literal_prefix() {
        for seed in 0..50 {
            let s = gen("/[a-z/]{0,20}", seed);
            assert!(s.starts_with('/'), "missing prefix in {s:?}");
            assert!(s
                .chars()
                .skip(1)
                .all(|c| c.is_ascii_lowercase() || c == '/'));
        }
    }

    #[test]
    fn star_plus_question() {
        check_all("a*", (0, 8), |c| c == 'a');
        check_all("b+", (1, 8), |c| c == 'b');
        check_all("c?", (0, 1), |c| c == 'c');
        check_all("\\d{2}", (2, 2), |c| c.is_ascii_digit());
    }

    #[test]
    fn unsupported_syntax_rejected() {
        assert!(Pattern::parse("(ab)").is_err());
        assert!(Pattern::parse("a|b").is_err());
        assert!(Pattern::parse("[a-z").is_err());
        assert!(Pattern::parse("a{2,").is_err());
        assert!(Pattern::parse("\\pL").is_err());
    }
}
