//! The case runner and RNG behind the [`proptest!`](crate::proptest) macro.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// Deterministic pseudo-random generator (SplitMix64) used by strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from a raw value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// An RNG deterministically seeded from a test name, so every run of a
    /// test explores the same cases.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform in `[0, n]`.
    pub fn below_inclusive(&mut self, n: u64) -> u64 {
        if n == u64::MAX {
            self.next_u64()
        } else {
            self.next_u64() % (n + 1)
        }
    }
}

/// Runs `body` for each case, reporting the case number and seed on
/// failure so the run can be reproduced (seeds derive only from `name`).
pub fn run_proptest<F: FnMut(&mut TestRng)>(config: &ProptestConfig, name: &str, mut body: F) {
    let mut seeder = TestRng::from_name(name);
    for case in 0..config.cases {
        let seed = seeder.next_u64();
        let mut rng = TestRng::from_seed(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(&mut rng))) {
            eprintln!(
                "proptest {name}: case {case}/{} (seed {seed:#018x}) failed",
                config.cases
            );
            resume_unwind(payload);
        }
    }
}
