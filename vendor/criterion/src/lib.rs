//! Offline stand-in for the subset of the `criterion` benchmarking API
//! this workspace uses: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — warm up, size a batch so each
//! sample runs for roughly a millisecond, time `sample_size` samples, and
//! report mean / min / max per iteration (plus throughput when declared).
//! That is enough to compare the workspace's validation and generation
//! paths against each other on one machine, which is all the B-series
//! experiments need.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box` as well as
/// `std::hint::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().render(), 20, None, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the amount of work per iteration, enabling throughput
    /// reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.render());
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a parameter, rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id consisting of the parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function.is_empty(), &self.parameter) {
            (false, Some(p)) => format!("{}/{p}", self.function),
            (false, None) => self.function.clone(),
            (true, Some(p)) => p.clone(),
            (true, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: name,
            parameter: None,
        }
    }
}

/// Work performed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    /// Mean/min/max per-iteration time, filled in by `iter`.
    result: Option<(Duration, Duration, Duration)>,
}

impl Bencher {
    /// Times `f`, recording per-iteration statistics.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and batch sizing: target ~1 ms per sample.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed() / iters as u32);
        }
        let min = *samples.iter().min().expect("sample_size >= 2");
        let max = *samples.iter().max().expect("sample_size >= 2");
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        self.result = Some((mean, min, max));
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((mean, min, max)) => {
            let rate = throughput
                .map(|t| {
                    let per_sec = |units: u64| units as f64 / mean.as_secs_f64();
                    match t {
                        Throughput::Bytes(n) => {
                            format!("  {:.1} MiB/s", per_sec(n) / (1024.0 * 1024.0))
                        }
                        Throughput::Elements(n) => format!("  {:.0} elem/s", per_sec(n)),
                    }
                })
                .unwrap_or_default();
            println!(
                "{label:<50} mean {:>12} min {:>12} max {:>12}{rate}",
                fmt_duration(mean),
                fmt_duration(min),
                fmt_duration(max),
            );
        }
        None => println!("{label:<50} (no measurement: Bencher::iter not called)"),
    }
}

fn fmt_duration(d: Duration) -> impl fmt::Display {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Collects benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim-smoke");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_and_macros_run() {
        benches();
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 10).render(), "f/10");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
        assert_eq!(BenchmarkId::from_parameter(3).render(), "3");
    }
}
