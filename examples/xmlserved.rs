//! xmlserved: the validation service as a process. Boots the corpus
//! registry behind the std-only HTTP front end and serves until stdin
//! closes (so `echo | xmlserved` or a supervisor pipe ends it with a
//! graceful drain — std has no signal handling to hook).
//!
//! ```text
//! cargo run --release -p examples --bin xmlserved -- [addr]
//! cargo run --release -p examples --bin xmlserved -- --self-test
//! ```
//!
//! `addr` defaults to `127.0.0.1:8080`; pass `127.0.0.1:0` for an
//! ephemeral port (printed at boot). `--self-test` boots on an
//! ephemeral port, drives a scripted request sweep over loopback —
//! valid and invalid documents, a hostile deep-nesting document, an
//! oversized declared length, a batch, a schema hot-swap, the health
//! and metrics endpoints — checks every status against expectation, and
//! exits non-zero on any surprise. The verify gate runs exactly this.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use serve::{Server, ServerConfig};
use webgen::SchemaRegistry;

fn main() {
    let arg = std::env::args().nth(1);
    obs::install_collector();
    let registry = Arc::new(SchemaRegistry::with_corpus().expect("corpus schemas compile"));
    registry.get("purchase-order").unwrap().warm();
    registry.get("wml").unwrap().warm();

    match arg.as_deref() {
        Some("--self-test") => self_test(registry),
        addr => serve_until_stdin_eof(registry, addr.unwrap_or("127.0.0.1:8080")),
    }
}

fn serve_until_stdin_eof(registry: Arc<SchemaRegistry>, addr: &str) {
    let server =
        Server::start(registry, addr, ServerConfig::default()).expect("bind the service address");
    println!("xmlserved listening on http://{}", server.addr());
    println!("  POST /v1/validate/{{schema}}   POST /v1/batch/{{schema}}");
    println!("  PUT  /v1/schemas/{{name}}      GET /metrics  GET /healthz");
    println!("serving until stdin closes...");
    let mut sink = String::new();
    let stdin = std::io::stdin();
    loop {
        sink.clear();
        match stdin.lock().read_line(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    println!("stdin closed; draining in-flight requests");
    server.drain();
    println!("drained cleanly");
}

// --- the scripted sweep the verify gate runs -------------------------

fn request(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to own server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).expect("write request");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .expect("read status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
        .parse()
        .expect("numeric status");
    let mut len = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            len = v.trim().parse().expect("numeric content-length");
        }
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).expect("read body");
    (status, String::from_utf8_lossy(&body).into_owned())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: s\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn check(label: &str, want: u16, got: (u16, String)) {
    let (status, body) = got;
    if status != want {
        eprintln!("self-test FAILED: {label}: expected {want}, got {status}: {body}");
        std::process::exit(1);
    }
    println!("self-test ok: {label} -> {status}");
}

fn self_test(registry: Arc<SchemaRegistry>) {
    let server = Server::start(registry, "127.0.0.1:0", ServerConfig::default())
        .expect("bind ephemeral port");
    let addr = server.addr();
    println!("self-test server on http://{addr}");

    let valid = webgen::render_order_string(&webgen::generate_order(11, 4));
    check(
        "healthz",
        200,
        request(
            addr,
            b"GET /healthz HTTP/1.1\r\nHost: s\r\nConnection: close\r\n\r\n",
        ),
    );
    let (status, body) = post(addr, "/v1/validate/purchase-order", &valid);
    if !body.contains("\"valid\":true") {
        eprintln!("self-test FAILED: valid PO judged invalid: {body}");
        std::process::exit(1);
    }
    check("validate valid purchase order", 200, (status, body));
    let (status, body) = post(
        addr,
        "/v1/validate/purchase-order",
        "<order><junk/></order>",
    );
    if !body.contains("\"valid\":false") {
        eprintln!("self-test FAILED: invalid doc judged valid: {body}");
        std::process::exit(1);
    }
    check("validate invalid document", 200, (status, body));
    let hostile = format!("{}{}", "<d>".repeat(5_000), "</d>".repeat(5_000));
    let (status, body) = post(addr, "/v1/validate/purchase-order", &hostile);
    if !body.contains("\"resource\":\"DepthExceeded\"") {
        eprintln!("self-test FAILED: hostile doc not typed-rejected: {body}");
        std::process::exit(1);
    }
    check("hostile document typed rejection", 422, (status, body));
    check(
        "oversized declared length refused before read",
        413,
        request(
            addr,
            b"POST /v1/validate/purchase-order HTTP/1.1\r\nHost: s\r\nContent-Length: 104857600\r\nConnection: close\r\n\r\n",
        ),
    );
    check(
        "unknown schema",
        404,
        post(addr, "/v1/validate/nope", "<a/>"),
    );
    let mut batch = String::new();
    for seed in 0..4u64 {
        let doc = webgen::render_order_string(&webgen::generate_order(seed, 2));
        batch.push_str(&format!("{}\n{}", doc.len(), doc));
    }
    let (status, body) = post(addr, "/v1/batch/purchase-order", &batch);
    if !body.contains("\"docs\":4") {
        eprintln!("self-test FAILED: batch lost documents: {body}");
        std::process::exit(1);
    }
    check("batch of 4", 200, (status, body));
    check(
        "schema hot-swap",
        200,
        request(
            addr,
            format!(
                "PUT /v1/schemas/wml HTTP/1.1\r\nHost: s\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                schema::corpus::WML_XSD.len(),
                schema::corpus::WML_XSD
            )
            .as_bytes(),
        ),
    );
    check(
        "malformed request line",
        400,
        request(addr, b"NONSENSE\r\n\r\n"),
    );

    let (status, metrics) = request(
        addr,
        b"GET /metrics HTTP/1.1\r\nHost: s\r\nConnection: close\r\n\r\n",
    );
    check("metrics scrape", 200, (status, metrics.clone()));
    for needle in [
        "http_requests_total{code=\"200\"}",
        "http_requests_total{code=\"413\"}",
        "http_requests_total{code=\"422\"}",
        "http_connections_total",
        "http_request_seconds",
        "registry_validate_seconds",
        "limit_trips_total",
    ] {
        if !metrics.contains(needle) {
            eprintln!("self-test FAILED: /metrics is missing {needle}");
            std::process::exit(1);
        }
        println!("self-test ok: metrics export {needle}");
    }
    server.drain();
    println!("self-test ok: graceful drain");
    println!("xmlserved self-test OK");
}
