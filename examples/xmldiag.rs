//! xmldiag: per-document diagnosis with the flight recorder on.
//!
//! Where `xmlstat` shows the *aggregate* view (counters, histograms),
//! xmldiag answers the per-document questions: what did THIS document
//! cost, phase by phase, and why? It runs a document through tree
//! validation, streaming validation, chunked streaming, and an 8-thread
//! parallel batch with `obs::trace` recording, then prints the
//! document's wide-event records, the top-down phase breakdown, and
//! (with `--chrome PATH`) a Perfetto-loadable Chrome trace.
//!
//! ```text
//! cargo run -p examples --bin xmldiag -- [FILE] [--schema purchase-order|wml] [--chrome PATH]
//! ```
//!
//! With no FILE the paper's Fig. 1 purchase-order document is used.

use pool::ThreadPool;
use schema::corpus;
use webgen::SchemaRegistry;

fn main() {
    let mut file: Option<String> = None;
    let mut schema_name = "purchase-order".to_string();
    let mut chrome_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--schema" => schema_name = args.next().expect("--schema needs a value"),
            "--chrome" => chrome_path = Some(args.next().expect("--chrome needs a path")),
            "--help" | "-h" => {
                eprintln!("usage: xmldiag [FILE] [--schema purchase-order|wml] [--chrome PATH]");
                return;
            }
            other => file = Some(other.to_string()),
        }
    }
    let document = match &file {
        Some(path) => std::fs::read_to_string(path).expect("read input document"),
        None => corpus::PURCHASE_ORDER_XML.to_string(),
    };

    // Metrics aggregate; the flight recorder attributes. Both on.
    let _sink = obs::install_collector();
    obs::trace::start(65_536);

    let registry = SchemaRegistry::with_corpus().unwrap();
    let compiled = registry
        .get(&schema_name)
        .unwrap_or_else(|| panic!("no schema registered under {schema_name:?}"));

    // --- the document under diagnosis, tree path -------------------------
    match xmlparse::parse_document(&document) {
        Ok(doc) => {
            let errors = validator::validate_document(&compiled, &doc);
            println!("tree:   {} nodes, {} errors", doc.len(), errors.len());
        }
        Err(e) => println!("tree:   not well-formed: {e}"),
    }

    // --- streaming + chunked paths (each emits a wide event) -------------
    let errors = registry
        .validate_streaming(&schema_name, &document)
        .unwrap();
    println!("stream: {} bytes, {} errors", document.len(), errors.len());
    let errors = registry
        .validate_streaming_reader(&schema_name, document.as_bytes())
        .unwrap()
        .expect("in-memory reader cannot fail I/O");
    println!("read:   chunked over a reader, {} errors", errors.len());

    // --- an 8-thread parallel batch around the same document -------------
    // (plus an invalid mutant, so the tail sampler has a flagged doc to
    // always keep)
    let invalid = document
        .replace("<item", "<unexpected")
        .replace("</item>", "</unexpected>");
    let mut docs: Vec<&str> = Vec::new();
    for _ in 0..8 {
        docs.push(&document);
    }
    if invalid != document {
        docs.push(&invalid);
    }
    let pool = ThreadPool::new(8);
    let results = registry
        .validate_batch_streaming_parallel(&schema_name, &docs, &pool)
        .unwrap();
    let bad = results.iter().filter(|r| !r.is_empty()).count();
    println!(
        "batch:  {} documents across {} threads, {} with errors",
        results.len(),
        pool.threads(),
        bad
    );

    obs::trace::stop();

    // --- what the flight recorder saw ------------------------------------
    println!("\n=== wide events (tail-sampled) ===\n");
    for we in obs::trace::wide_events() {
        println!("{we}");
    }
    let stats = obs::trace::wide_stats();
    println!(
        "\n{} seen, {} kept, {} sampled out",
        stats.seen, stats.kept, stats.dropped
    );
    println!("\n=== per-phase breakdown ===\n");
    print!("{}", obs::trace::summary());

    if let Some(path) = chrome_path {
        let json = obs::trace::export_chrome_trace();
        // self-check before writing: the export must round-trip the
        // validator with strict nesting and no orphaned parent links
        let stats = obs::trace::validate_chrome_trace(&json).expect("exported trace is valid");
        assert_eq!(
            stats.orphan_parents, 0,
            "every span must parent to a span in the export"
        );
        std::fs::write(&path, &json).expect("write chrome trace");
        println!(
            "\nchrome trace OK: {path} ({} events, {} B/E pairs, {} threads)",
            stats.events, stats.begin_end_pairs, stats.threads
        );
        println!("open it at https://ui.perfetto.dev or chrome://tracing");
    }

    obs::shutdown();
}
