//! hardened_batch: resource-governed serving. A mixed batch — mostly
//! legitimate purchase orders, plus a few adversarial documents — goes
//! through the registry under `limits::Limits::default()`: the hostile
//! documents come back with *typed* `ResourceError`s (not crashes, not
//! unbounded work) while the clean ones validate byte-identically to an
//! ungoverned run. A second pass shows mid-batch cancellation: a
//! deadline expires while the pool is draining the queue, the remaining
//! documents are skipped with markers, and `batch_cancelled_total`
//! ticks.
//!
//! ```text
//! cargo run --release -p examples --bin hardened_batch -- [threads]
//! ```

use std::time::{Duration, Instant};

use limits::{CancelToken, Limits};
use pool::ThreadPool;
use validator::ValidationErrorKind;
use webgen::SchemaRegistry;

fn monster_depth() -> String {
    format!("{}{}", "<d>".repeat(50_000), "</d>".repeat(50_000))
}

fn monster_attrs() -> String {
    let mut doc = String::from("<purchaseOrder");
    for i in 0..100_000 {
        doc.push_str(&format!(" a{i}=\"x\""));
    }
    doc.push_str("/>");
    doc
}

fn monster_refs() -> String {
    format!("<purchaseOrder>{}</purchaseOrder>", "&amp;".repeat(50_000))
}

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("threads must be a number"))
        .unwrap_or(4);
    obs::install_collector();

    let registry = SchemaRegistry::with_corpus().unwrap();
    registry.get("purchase-order").unwrap().warm();
    let pool = ThreadPool::new(threads);

    // -- pass 1: hostile documents inside a legitimate batch ------------
    let clean: Vec<String> = (0..12)
        .map(|i| webgen::render_order_string(&webgen::generate_order(i, 20)))
        .collect();
    let monsters = [monster_depth(), monster_attrs(), monster_refs()];
    let mut batch: Vec<&str> = clean.iter().map(String::as_str).collect();
    for m in &monsters {
        batch.insert(4, m);
    }

    let start = Instant::now();
    let results = registry
        .validate_batch_streaming_parallel_with_limits(
            "purchase-order",
            &batch,
            &pool,
            &Limits::default(),
        )
        .unwrap();
    let elapsed = start.elapsed();

    let rejected: Vec<&str> = results
        .iter()
        .flatten()
        .filter_map(|e| match &e.kind {
            ValidationErrorKind::Resource(kind) => Some(kind.label()),
            _ => None,
        })
        .collect();
    let clean_ok = results.iter().filter(|errors| errors.is_empty()).count();
    println!(
        "pass 1: {} documents ({} hostile) in {elapsed:?} on {threads} threads",
        batch.len(),
        monsters.len()
    );
    println!("  valid: {clean_ok}, rejected with typed resource errors: {rejected:?}");
    assert_eq!(
        clean_ok,
        clean.len(),
        "governance must not touch clean documents"
    );
    assert_eq!(rejected.len(), monsters.len());

    // -- pass 2: a deadline expires mid-batch ---------------------------
    let big: Vec<String> = (0..256)
        .map(|i| webgen::render_order_string(&webgen::generate_order(i, 60)))
        .collect();
    let docs: Vec<&str> = big.iter().map(String::as_str).collect();
    // the clock starts at dispatch, not while the corpus renders
    let token = CancelToken::new();
    let budget = Limits::default()
        .with_deadline_in(Duration::from_millis(5))
        .with_cancel_token(&token);
    let results = registry
        .validate_batch_streaming_parallel_with_limits("purchase-order", &docs, &pool, &budget)
        .unwrap();
    let skipped = results
        .iter()
        .filter(|errors| {
            errors
                .iter()
                .any(|e| matches!(e.kind, ValidationErrorKind::Resource(_)))
        })
        .count();
    println!(
        "pass 2: 5ms deadline over {} documents -> {} validated, {skipped} skipped with markers",
        docs.len(),
        docs.len() - skipped
    );

    println!();
    println!("{}", obs::metrics().render_text());
}
