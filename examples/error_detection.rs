//! Demonstrates *where* each authoring style catches each class of
//! schema violation — the paper's core argument, and the workload behind
//! experiment B3.
//!
//! ```text
//! cargo run -p examples --bin error_detection
//! ```

use pxml::{check_template, Template, TypeEnv};
use schema::{corpus, CompiledSchema};

struct Case {
    label: &'static str,
    /// The faulty constructor, as a P-XML template.
    template: &'static str,
}

const CASES: &[Case] = &[
    Case {
        label: "wrong child order (billTo before shipTo)",
        template: "<purchaseOrder><billTo country=\"US\"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo></purchaseOrder>",
    },
    Case {
        label: "missing required child (items)",
        template: "<shipTo country=\"US\"><name>n</name><street>s</street><city>c</city></shipTo>",
    },
    Case {
        label: "undeclared element (telephone)",
        template: "<shipTo country=\"US\"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip><telephone>5551234</telephone></shipTo>",
    },
    Case {
        label: "missing required attribute (partNum)",
        template: "<item><productName>x</productName><quantity>1</quantity><USPrice>1.0</USPrice></item>",
    },
    Case {
        label: "bad literal attribute (SKU pattern)",
        template: "<item partNum=\"NOT-A-SKU\"><productName>x</productName><quantity>1</quantity><USPrice>1.0</USPrice></item>",
    },
    Case {
        label: "bad literal content (quantity ≥ 100)",
        template: "<item partNum=\"123-AB\"><productName>x</productName><quantity>150</quantity><USPrice>1.0</USPrice></item>",
    },
    Case {
        label: "text in element-only content",
        template: "<items>loose text</items>",
    },
    Case {
        label: "fixed attribute violated (country)",
        template: "<shipTo country=\"DE\"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>",
    },
];

fn main() {
    let compiled = CompiledSchema::parse(corpus::PURCHASE_ORDER_XSD).unwrap();
    let env = TypeEnv::new();

    println!("violation class                                 | string gen | DOM+validate | P-XML static");
    println!("------------------------------------------------+------------+--------------+-------------");
    let mut static_catches = 0;
    for case in CASES {
        // string generation: nothing ever complains at build time
        let string_catches = "runtime*";
        // DOM + validator: caught, but only when validation runs
        let doc = xmlparse::parse_document(case.template).expect("well-formed test input");
        let dom_errors = validator::validate_document(&compiled, &doc);
        let dom_catches = if dom_errors.is_empty() {
            "MISSED"
        } else {
            "runtime"
        };
        // P-XML: caught before the program runs
        let template = Template::parse(case.template).unwrap();
        let pxml_errors = check_template(&compiled, &template, &env);
        let pxml_catches = if pxml_errors.is_empty() {
            "missed"
        } else {
            static_catches += 1;
            "STATIC"
        };
        println!(
            "{:<48}| {:<11}| {:<13}| {}",
            case.label, string_catches, dom_catches, pxml_catches
        );
        if let Some(e) = pxml_errors.first() {
            println!("{:<48}|   → {}", "", e);
        }
    }
    println!(
        "\nP-XML caught {static_catches}/{} violation classes statically.",
        CASES.len()
    );
    println!("(*) string generation only ever fails when someone looks at the output.");
}
