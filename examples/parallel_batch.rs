//! parallel_batch: serve a heavy multi-document batch the way the
//! ROADMAP's serving story wants it served — one warmed, shared
//! `CompiledSchema` per corpus, a work-stealing thread pool, and
//! `SchemaRegistry::validate_batch_parallel` fanning the documents out
//! across the workers. Prints per-corpus timings (sequential vs
//! parallel) and the pool's per-worker metrics.
//!
//! ```text
//! cargo run --release -p examples --bin parallel_batch -- [threads]
//! ```
//!
//! `threads` defaults to 4; `scripts/verify.sh` runs a 32-thread smoke.

use std::time::Instant;

use pool::ThreadPool;
use webgen::{DirectoryPageData, SchemaRegistry};

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("threads must be a number"))
        .unwrap_or(4);
    obs::install_collector();

    let registry = SchemaRegistry::with_corpus().unwrap();
    // Warm before serving: every content-model DFA and attribute table
    // compiles now, not under the first unlucky request.
    let po_ready = registry.get("purchase-order").unwrap().warm();
    let wml_ready = registry.get("wml").unwrap().warm();
    println!(
        "warmed: purchase-order ({po_ready} types), wml ({wml_ready} types), \
         {} distinct DFAs interned",
        schema::interned_dfa_count()
    );

    let pool = ThreadPool::new(threads);
    let orders: Vec<String> = (0..64)
        .map(|i| webgen::render_order_string(&webgen::generate_order(i, 40)))
        .collect();
    let pages: Vec<String> = (0..64)
        .map(|i| {
            webgen::render_string(&DirectoryPageData {
                sub_dirs: (0..128).map(|d| format!("dir{i:03}-{d:04}")).collect(),
                current_dir: "/media/archive".into(),
                parent_dir: "/media".into(),
            })
        })
        .collect();

    for (schema, batch) in [("purchase-order", &orders), ("wml", &pages)] {
        let docs: Vec<&str> = batch.iter().map(String::as_str).collect();
        let bytes: usize = batch.iter().map(String::len).sum();

        let start = Instant::now();
        let sequential = registry.validate_batch_streaming(schema, &docs).unwrap();
        let seq_time = start.elapsed();

        let start = Instant::now();
        let parallel = registry
            .validate_batch_parallel(schema, &docs, &pool)
            .unwrap();
        let par_time = start.elapsed();

        assert_eq!(parallel, sequential, "parallel must equal sequential");
        let invalid = parallel.iter().filter(|e| !e.is_empty()).count();
        println!(
            "{schema}: {} documents ({bytes} bytes), {invalid} invalid, threads={threads}, \
             sequential {seq_time:?}, parallel {par_time:?} ({:.2}x)",
            docs.len(),
            seq_time.as_secs_f64() / par_time.as_secs_f64().max(1e-9),
        );
    }

    println!();
    println!("{}", obs::metrics().render_text());
}
