//! The paper's Sect. 3 schema-evolution argument, made executable: when
//! a choice group gains an alternative, inherited naming keeps every
//! generated name stable, while the rejected synthesized/union design
//! renames the group and breaks all client code (experiment B7).
//!
//! ```text
//! cargo run -p examples --bin schema_evolution
//! ```

use normalize::naming::{synthesized_choice_name, NamePath};
use schema::corpus::{CHOICE_PO_EVOLVED_XSD, CHOICE_PO_XSD};

fn names_of(xsd: &str) -> (Vec<String>, String) {
    let schema = schema::parse_schema(xsd).unwrap();
    let model = normalize::build_model(&schema).unwrap();
    let po = model.interface("PurchaseOrderTypeType").unwrap();
    let fields: Vec<String> = po
        .fields
        .iter()
        .map(|f| format!("{}: {}", f.name, f.ty.idl()))
        .collect();
    let alternatives = model
        .interface("PurchaseOrderTypeCC1Group")
        .map(|g| g.choice_alternatives.join(", "))
        .unwrap_or_default();
    (fields, alternatives)
}

fn main() {
    println!("=== before evolution (choice of singAddr | twoAddr) ===\n");
    let (before_fields, before_alts) = names_of(CHOICE_PO_XSD);
    for f in &before_fields {
        println!("  attribute {f};");
    }
    println!("  choice alternatives: {before_alts}");

    println!("\n=== after evolution (+ multAddr) ===\n");
    let (after_fields, after_alts) = names_of(CHOICE_PO_EVOLVED_XSD);
    for f in &after_fields {
        println!("  attribute {f};");
    }
    println!("  choice alternatives: {after_alts}");

    let stable = before_fields == after_fields;
    println!("\ninherited naming: field names/types stable across evolution? {stable}");
    assert!(stable, "inherited naming must keep names stable");

    // the rejected design: synthesized names for the same choice
    let old = synthesized_choice_name(&["singAddr".into(), "twoAddr".into()]);
    let new = synthesized_choice_name(&["singAddr".into(), "twoAddr".into(), "multAddr".into()]);
    println!("\nsynthesized (rejected) naming: {old} → {new}");
    println!("every client mention of `{old}` would need rewriting.");

    // and the inherited name, for contrast
    let inherited = NamePath::root("PurchaseOrderType")
        .child(1)
        .inherited_name();
    println!("inherited naming keeps: {inherited} (unchanged)");

    // union mode (Fig. 5) vs inheritance mode (Fig. 6) rendering
    let schema = schema::parse_schema(CHOICE_PO_XSD).unwrap();
    let model = normalize::build_model(&schema).unwrap();
    println!("\n=== Fig. 5: the rejected union-type interface ===\n");
    let union_idl = codegen::render_union_idl(&model);
    for line in union_idl
        .lines()
        .filter(|l| l.contains("Union") || l.contains("case "))
    {
        println!("{line}");
    }
    println!("\n=== Fig. 6: the inheritance interface the paper settles on ===\n");
    let idl = codegen::render_idl(&model);
    for line in idl
        .lines()
        .filter(|l| l.contains("PurchaseOrderTypeCC1") || l.contains("Element:"))
    {
        println!("{line}");
    }
}
