//! The full paper pipeline on the purchase-order schema: schema → V-DOM
//! interfaces (IDL, Appendix A) → generated Rust types → a document built
//! with them → parse → validate → typed DOM round trip.
//!
//! ```text
//! cargo run -p examples --bin purchase_order_pipeline
//! ```

use schema::{corpus, CompiledSchema};

fn main() {
    let schema = schema::parse_schema(corpus::PURCHASE_ORDER_XSD).unwrap();
    schema.check().unwrap();

    // --- paper Appendix A: the generated V-DOM interfaces, in IDL -------
    let model = normalize::build_model(&schema).unwrap();
    println!("=== generated V-DOM interfaces (IDL, Appendix A) ===\n");
    println!("{}", codegen::render_idl(&model));

    // --- the same model as Rust types ------------------------------------
    let rust = codegen::render_rust(
        &model,
        &codegen::RustGenOptions {
            schema_label: "purchase-order".to_string(),
        },
    );
    println!(
        "=== generated Rust module: {} lines (see crates/codegen/tests/generated_po.rs) ===\n",
        rust.lines().count()
    );

    // --- the paper's Fig. 1 document through parse + validate -----------
    let compiled = CompiledSchema::new(schema).unwrap();
    let doc = xmlparse::parse_document(corpus::PURCHASE_ORDER_XML).unwrap();
    let errors = validator::validate_document(&compiled, &doc);
    println!(
        "Fig. 1 document parsed: {} nodes, validator found {} errors",
        doc.len(),
        errors.len()
    );
    assert!(errors.is_empty());

    // --- Fig. 4 vs Fig. 7: generic DOM dump vs typed V-DOM dump ---------
    let root = doc.root_element().unwrap();
    let ship = doc.child_element_named(root, "shipTo").unwrap();
    println!("\n=== Fig. 4: the shipTo fragment in plain DOM ===\n");
    println!("{}", dom::dump_tree(&doc, ship).unwrap());

    let td = vdom::parse_typed(&compiled, corpus::PURCHASE_ORDER_XML).unwrap();
    let typed_root = td.dom().root_element().unwrap();
    let typed_ship = td.dom().child_element_named(typed_root, "shipTo").unwrap();
    println!("=== Fig. 7: the same fragment in V-DOM (typed interfaces) ===\n");
    let handle = td
        .typed_handle(typed_ship)
        .expect("imported element is typed");
    println!("{}", vdom::dump_typed(&td, handle).unwrap());
}
