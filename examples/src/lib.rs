//! Shared nothing: this package exists to host the runnable example
//! binaries in the repository root's `examples/` directory.
