//! The paper's Sect. 5 scenario end-to-end: a synthetic media archive
//! rendered as a WML directory page by all four authoring styles, plus
//! the P-XML preprocessor output for the page's template (Fig. 11).
//!
//! ```text
//! cargo run -p examples --bin media_archive_wml [seed]
//! ```

use pxml::{Template, TypeEnv};
use webgen::{DirectoryPageData, MediaArchive, PxmlDirectoryPage, SchemaRegistry};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let registry = SchemaRegistry::with_corpus().expect("corpus schemas compile");
    let wml = registry.get("wml").unwrap();

    let archive = MediaArchive::generate(seed, 4, 3);
    println!(
        "media archive (seed {seed}): {} directories\n",
        archive.len()
    );
    let cursor = archive.root().child(0).unwrap_or_else(|| archive.root());
    let data = DirectoryPageData::from_media(&cursor);
    println!(
        "current dir: {} ({} subdirectories)\n",
        data.current_dir,
        data.sub_dirs.len()
    );

    // four back ends, one page
    let s = webgen::render_string(&data);
    let d = webgen::render_dom(&wml, &data).expect("valid page");
    let v = webgen::render_vdom(&wml, &data).expect("valid page");
    let p = PxmlDirectoryPage::new(&wml)
        .expect("template checks statically")
        .render(&data)
        .expect("valid page");
    assert_eq!(s, d);
    assert_eq!(d, v);
    assert_eq!(v, p);
    println!("all four back ends agree; page:\n");
    let doc = xmlparse::parse_document(&v).unwrap();
    let root = doc.root_element().unwrap();
    println!("{}\n", dom::serialize_pretty(&doc, root).unwrap());

    // the Sect. 1 failure mode: the buggy JSP-style page
    let buggy = webgen::render_string_buggy(&data);
    match xmlparse::parse_document(&buggy) {
        Err(e) => {
            println!("buggy string generator produced broken markup, noticed only downstream: {e}")
        }
        Ok(_) => println!("buggy generator got lucky this time"),
    }

    // Fig. 11: what the preprocessor turns the option template into
    let template = Template::parse("<option value=\"$subDir$\">$label$</option>").unwrap();
    let env = TypeEnv::new().text("subDir").text("label");
    let code = pxml::emit_rust(&wml, &template, &env, "build_option").unwrap();
    println!("\n=== preprocessor output for the option template (Fig. 11) ===\n");
    println!("{code}");
}
