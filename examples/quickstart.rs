//! Quickstart: parse a schema, build a typed document that *cannot* go
//! invalid, watch a wrong construction fail at the call site, and
//! serialize the result.
//!
//! ```text
//! cargo run -p examples --bin quickstart
//! ```

use schema::{corpus, CompiledSchema};
use vdom::TypedDocument;

fn main() {
    // 1. Compile the paper's purchase-order schema (Figs. 2–3).
    let compiled =
        CompiledSchema::parse(corpus::PURCHASE_ORDER_XSD).expect("the bundled schema is valid");
    println!(
        "schema compiled: {} components",
        compiled.schema().component_count()
    );

    // 2. Build a purchase order through the typed API. Every append is
    //    checked against the content model as it happens.
    let mut td = TypedDocument::new(compiled.clone());
    let po = td.create_root("purchaseOrder").expect("declared element");
    td.set_attribute(po, "orderDate", "1999-10-20").unwrap();

    // A wrong construction fails *here*, not in a test run:
    match td.append_element(po, "items") {
        Err(e) => println!("rejected as expected: {e}"),
        Ok(_) => unreachable!("items cannot precede shipTo"),
    }

    for (tag, name) in [("shipTo", "Alice Smith"), ("billTo", "Robert Smith")] {
        let addr = td.append_element(po, tag).unwrap();
        td.set_attribute(addr, "country", "US").unwrap();
        for (child, value) in [
            ("name", name),
            ("street", "123 Maple Street"),
            ("city", "Mill Valley"),
            ("state", "CA"),
            ("zip", "90952"),
        ] {
            let el = td.append_element(addr, child).unwrap();
            td.append_text(el, value).unwrap();
        }
    }
    let items = td.append_element(po, "items").unwrap();
    let item = td.append_element(items, "item").unwrap();
    td.set_attribute(item, "partNum", "872-AA").unwrap();
    for (child, value) in [
        ("productName", "Lawnmower"),
        ("quantity", "1"),
        ("USPrice", "148.95"),
    ] {
        let el = td.append_element(item, child).unwrap();
        td.append_text(el, value).unwrap();
    }

    // 3. Seal: completeness + required attributes checked; the result is
    //    guaranteed valid.
    let doc = td.seal().expect("construction was complete");
    let root = doc.root_element().unwrap();
    println!("\n{}", dom::serialize_pretty(&doc, root).unwrap());

    // 4. Cross-check with the independent runtime validator (never
    //    needed in application code — shown for demonstration).
    let errors = validator::validate_document(&compiled, &doc);
    assert!(errors.is_empty());
    println!("\nindependent validator agrees: document is valid");

    // 5. The same check without ever building a tree: stream the
    //    serialized text through the event-based validator. This is the
    //    shape server pages use to check rendered output on its way out.
    let page = dom::serialize(&doc, root).unwrap();
    let errors = validator::validate_str_streaming(&compiled, &page);
    assert!(errors.is_empty());
    println!("streaming validator agrees: document is valid");

    let broken = page.replace("148.95", "a lot");
    for e in validator::validate_str_streaming(&compiled, &broken) {
        println!("streaming validator caught: {e}");
    }
}
