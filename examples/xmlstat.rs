//! xmlstat: run the paper's purchase-order and WML corpora through the
//! whole pipeline — parse, schema compile, tree validation, streaming
//! validation, P-XML templating, and the schema registry — with the
//! observability layer switched on, then print what the `obs` crate
//! collected in all three output formats: the span report, the
//! human-readable metrics report, and the Prometheus text exposition.
//!
//! ```text
//! cargo run -p examples --bin xmlstat
//! ```

use pxml::{Bindings, Template, TypeEnv};
use schema::{corpus, CompiledSchema};
use webgen::{DirectoryPageData, PxmlDirectoryPage, SchemaRegistry};

fn main() {
    // Installing a sink is the single switch: spans start flowing to the
    // collector and pipeline metrics start landing in `obs::metrics()`.
    let sink = obs::install_collector();

    // --- purchase-order corpus ------------------------------------------
    let po = CompiledSchema::parse(corpus::PURCHASE_ORDER_XSD).unwrap();
    let fig1 = xmlparse::parse_document(corpus::PURCHASE_ORDER_XML).unwrap();
    let tree_errors = validator::validate_document(&po, &fig1);
    println!(
        "purchase-order: Fig. 1 document, {} nodes, {} tree-validation errors",
        fig1.len(),
        tree_errors.len()
    );
    for n in [1usize, 10, 100] {
        let order = webgen::generate_order(17, n);
        let xml = webgen::render_order_string(&order);
        let errors = validator::validate_str_streaming(&po, &xml);
        println!(
            "purchase-order: {n:>3}-item order, {} bytes, {} streaming errors",
            xml.len(),
            errors.len()
        );
    }

    // --- WML corpus through the registry and P-XML ----------------------
    let registry = SchemaRegistry::with_corpus().unwrap();
    let wml = registry.get("wml").unwrap();
    let page = PxmlDirectoryPage::new(&wml).unwrap();
    for n in [4usize, 64] {
        let data = DirectoryPageData {
            sub_dirs: (0..n).map(|i| format!("dir{i:04}")).collect(),
            current_dir: "/media/archive".into(),
            parent_dir: "/media".into(),
        };
        let rendered = page.render(&data).unwrap();
        let errors = registry.validate_streaming("wml", &rendered).unwrap();
        println!(
            "wml: {n:>3}-entry directory page, {} bytes, {} validation errors",
            rendered.len(),
            errors.len()
        );
        // the Sect. 1 "Wrong Server Page": same data, buggy renderer
        let buggy = webgen::render_string_buggy(&data);
        let errors = registry.validate_streaming("wml", &buggy).unwrap();
        println!(
            "wml: buggy renderer on the same data, {} errors",
            errors.len()
        );
    }
    // a template the static checker must reject, so the reject counters move
    let bad = Template::parse("<option value=\"$v$\"><card/></option>").unwrap();
    let rejects = pxml::check_template(&wml, &bad, &TypeEnv::new().text("v"));
    println!(
        "pxml: statically rejected template, {} errors",
        rejects.len()
    );
    // and an instantiation-time reject: an unbound variable
    let good = Template::parse("<option value=\"$v$\">$v$</option>").unwrap();
    assert!(pxml::check_template(&wml, &good, &TypeEnv::new().text("v")).is_empty());
    assert!(pxml::instantiate(&wml, &good, &Bindings::new()).is_err());

    // --- what the observability layer saw -------------------------------
    println!("\n=== span report ===\n");
    print!("{}", sink.report());
    println!("=== metrics (text) ===\n");
    print!("{}", obs::metrics().render_text());
    println!("=== metrics (prometheus) ===\n");
    print!("{}", obs::metrics().render_prometheus());

    obs::shutdown();
}
