//! Content expressions: regular expressions over element names.

use std::fmt;

/// Maximum bounded occurrence that [`ContentExpr::expand_occurrences`]
/// will unroll; larger bounds should use the derivative matcher.
pub const EXPANSION_LIMIT: u32 = 4096;

/// A content model expression.
///
/// `Occur` nodes carry XML Schema `minOccurs`/`maxOccurs` (with `None`
/// for `unbounded`). The paper treats `all` groups as sequences (Sect. 3),
/// and so does this reproduction — the `schema` crate lowers `xsd:all`
/// into [`ContentExpr::Sequence`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ContentExpr {
    /// The empty content model (matches the empty child sequence only).
    Empty,
    /// A single element particle.
    Leaf(String),
    /// All parts in order.
    Sequence(Vec<ContentExpr>),
    /// Exactly one alternative.
    Choice(Vec<ContentExpr>),
    /// `inner` repeated between `min` and `max` times.
    Occur {
        /// Repeated expression.
        inner: Box<ContentExpr>,
        /// `minOccurs`.
        min: u32,
        /// `maxOccurs`; `None` = `unbounded`.
        max: Option<u32>,
    },
}

impl ContentExpr {
    /// A single element particle.
    pub fn leaf(name: impl Into<String>) -> Self {
        ContentExpr::Leaf(name.into())
    }

    /// A sequence group; flattens trivial cases.
    pub fn sequence(mut parts: Vec<ContentExpr>) -> Self {
        match parts.len() {
            0 => ContentExpr::Empty,
            1 => parts.pop().unwrap(),
            _ => ContentExpr::Sequence(parts),
        }
    }

    /// A choice group; flattens trivial cases.
    pub fn choice(mut parts: Vec<ContentExpr>) -> Self {
        match parts.len() {
            0 => ContentExpr::Empty,
            1 => parts.pop().unwrap(),
            _ => ContentExpr::Choice(parts),
        }
    }

    /// `inner?`.
    pub fn optional(inner: ContentExpr) -> Self {
        ContentExpr::Occur {
            inner: Box::new(inner),
            min: 0,
            max: Some(1),
        }
    }

    /// `inner*`.
    pub fn star(inner: ContentExpr) -> Self {
        ContentExpr::Occur {
            inner: Box::new(inner),
            min: 0,
            max: None,
        }
    }

    /// `inner{min, max}`.
    pub fn occur(inner: ContentExpr, min: u32, max: Option<u32>) -> Self {
        ContentExpr::Occur {
            inner: Box::new(inner),
            min,
            max,
        }
    }

    /// Whether the expression matches the empty sequence.
    pub fn nullable(&self) -> bool {
        match self {
            ContentExpr::Empty => true,
            ContentExpr::Leaf(_) => false,
            ContentExpr::Sequence(parts) => parts.iter().all(ContentExpr::nullable),
            ContentExpr::Choice(parts) => parts.iter().any(ContentExpr::nullable),
            ContentExpr::Occur { inner, min, .. } => *min == 0 || inner.nullable(),
        }
    }

    /// All distinct element names mentioned, in first-occurrence order.
    pub fn symbols(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut Vec<String>) {
        match self {
            ContentExpr::Empty => {}
            ContentExpr::Leaf(name) => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            ContentExpr::Sequence(parts) | ContentExpr::Choice(parts) => {
                for p in parts {
                    p.collect_symbols(out);
                }
            }
            ContentExpr::Occur { inner, .. } => inner.collect_symbols(out),
        }
    }

    /// Number of leaf particles (Glushkov positions after expansion).
    pub fn leaf_count(&self) -> usize {
        match self {
            ContentExpr::Empty => 0,
            ContentExpr::Leaf(_) => 1,
            ContentExpr::Sequence(parts) | ContentExpr::Choice(parts) => {
                parts.iter().map(ContentExpr::leaf_count).sum()
            }
            ContentExpr::Occur { inner, .. } => inner.leaf_count(),
        }
    }

    /// Rewrites every bounded `Occur` into explicit repetition so the
    /// result uses only `?`-, `*`-style occurrences that the Glushkov
    /// construction handles natively.
    ///
    /// `x{2,4}` becomes `x x x? x?`; `x{2,}` becomes `x x x*`. Returns
    /// `Err` with the offending bound when a finite bound exceeds
    /// [`EXPANSION_LIMIT`] (use [`crate::DerivMatcher`] instead).
    pub fn expand_occurrences(&self) -> Result<ContentExpr, u32> {
        Ok(match self {
            ContentExpr::Empty => ContentExpr::Empty,
            ContentExpr::Leaf(n) => ContentExpr::Leaf(n.clone()),
            ContentExpr::Sequence(parts) => ContentExpr::sequence(
                parts
                    .iter()
                    .map(ContentExpr::expand_occurrences)
                    .collect::<Result<_, _>>()?,
            ),
            ContentExpr::Choice(parts) => ContentExpr::choice(
                parts
                    .iter()
                    .map(ContentExpr::expand_occurrences)
                    .collect::<Result<_, _>>()?,
            ),
            ContentExpr::Occur { inner, min, max } => {
                let inner = inner.expand_occurrences()?;
                match max {
                    Some(max) => {
                        if *max > EXPANSION_LIMIT {
                            return Err(*max);
                        }
                        if *max == 0 {
                            return Ok(ContentExpr::Empty);
                        }
                        if (*min, *max) == (0, 1) || (*min, *max) == (1, 1) {
                            // native forms
                            return Ok(if *min == 0 {
                                ContentExpr::Occur {
                                    inner: Box::new(inner),
                                    min: 0,
                                    max: Some(1),
                                }
                            } else {
                                inner
                            });
                        }
                        let mut parts = Vec::with_capacity(*max as usize);
                        for _ in 0..*min {
                            parts.push(inner.clone());
                        }
                        for _ in *min..*max {
                            parts.push(ContentExpr::optional(inner.clone()));
                        }
                        ContentExpr::sequence(parts)
                    }
                    None => {
                        if *min == 0 {
                            ContentExpr::star(inner)
                        } else {
                            let mut parts = Vec::with_capacity(*min as usize + 1);
                            for _ in 0..*min {
                                parts.push(inner.clone());
                            }
                            parts.push(ContentExpr::star(inner));
                            ContentExpr::sequence(parts)
                        }
                    }
                }
            }
        })
    }
}

impl fmt::Display for ContentExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContentExpr::Empty => write!(f, "ε"),
            ContentExpr::Leaf(n) => write!(f, "{n}"),
            ContentExpr::Sequence(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            ContentExpr::Choice(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            ContentExpr::Occur { inner, min, max } => match (min, max) {
                (0, Some(1)) => write!(f, "{inner}?"),
                (0, None) => write!(f, "{inner}*"),
                (1, None) => write!(f, "{inner}+"),
                (min, Some(max)) => write!(f, "{inner}{{{min},{max}}}"),
                (min, None) => write!(f, "{inner}{{{min},}}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn po_model() -> ContentExpr {
        ContentExpr::sequence(vec![
            ContentExpr::leaf("shipTo"),
            ContentExpr::leaf("billTo"),
            ContentExpr::optional(ContentExpr::leaf("comment")),
            ContentExpr::leaf("items"),
        ])
    }

    #[test]
    fn nullable_rules() {
        assert!(ContentExpr::Empty.nullable());
        assert!(!ContentExpr::leaf("a").nullable());
        assert!(ContentExpr::optional(ContentExpr::leaf("a")).nullable());
        assert!(ContentExpr::star(ContentExpr::leaf("a")).nullable());
        assert!(!po_model().nullable());
        assert!(ContentExpr::choice(vec![ContentExpr::leaf("a"), ContentExpr::Empty]).nullable());
    }

    #[test]
    fn symbols_in_order() {
        assert_eq!(
            po_model().symbols(),
            ["shipTo", "billTo", "comment", "items"]
        );
    }

    #[test]
    fn expansion_of_bounded_counts() {
        let e = ContentExpr::occur(ContentExpr::leaf("x"), 2, Some(4));
        let expanded = e.expand_occurrences().unwrap();
        // x x x? x?
        match &expanded {
            ContentExpr::Sequence(parts) => {
                assert_eq!(parts.len(), 4);
                assert_eq!(parts[0], ContentExpr::leaf("x"));
                assert!(matches!(parts[2], ContentExpr::Occur { min: 0, .. }));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(expanded.leaf_count(), 4);
    }

    #[test]
    fn expansion_of_min_with_unbounded() {
        let e = ContentExpr::occur(ContentExpr::leaf("x"), 2, None);
        let expanded = e.expand_occurrences().unwrap();
        assert_eq!(expanded.leaf_count(), 3); // x x x*
        assert!(!expanded.nullable());
    }

    #[test]
    fn expansion_limit_enforced() {
        let e = ContentExpr::occur(ContentExpr::leaf("x"), 0, Some(EXPANSION_LIMIT + 1));
        assert_eq!(e.expand_occurrences(), Err(EXPANSION_LIMIT + 1));
    }

    #[test]
    fn max_zero_is_empty() {
        let e = ContentExpr::occur(ContentExpr::leaf("x"), 0, Some(0));
        assert_eq!(e.expand_occurrences().unwrap(), ContentExpr::Empty);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(po_model().to_string(), "(shipTo, billTo, comment?, items)");
        let c = ContentExpr::choice(vec![ContentExpr::leaf("a"), ContentExpr::leaf("b")]);
        assert_eq!(c.to_string(), "(a | b)");
        assert_eq!(
            ContentExpr::occur(ContentExpr::leaf("x"), 2, Some(5)).to_string(),
            "x{2,5}"
        );
    }

    #[test]
    fn constructors_flatten_trivial_groups() {
        assert_eq!(ContentExpr::sequence(vec![]), ContentExpr::Empty);
        assert_eq!(
            ContentExpr::sequence(vec![ContentExpr::leaf("a")]),
            ContentExpr::leaf("a")
        );
        assert_eq!(ContentExpr::choice(vec![]), ContentExpr::Empty);
    }
}
