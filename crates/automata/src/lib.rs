//! Content-model automata: the machinery behind both runtime validation
//! and the P-XML preprocessor (paper Sect. 6).
//!
//! An XML Schema content model — sequences, choices and occurrence
//! constraints over element particles — is a regular expression over
//! element names. The paper's implementation section says the generated
//! preprocessor grammar "is built by using an algorithm of
//! \[Aho–Sethi–Ullman\], which constructs deterministic finite automata
//! from regular expressions"; this crate implements exactly that:
//!
//! * [`expr`] — the content expression tree ([`ContentExpr`]) with
//!   occurrence rewriting (expansion of bounded counts);
//! * [`glushkov`] — the Glushkov/ASU position construction (`nullable`,
//!   `first`, `last`, `follow`) producing an ε-free NFA, plus the *unique
//!   particle attribution* (determinism) check XML Schema requires;
//! * [`dfa`] — subset construction to a symbol-keyed DFA with an
//!   incremental [`Matcher`] interface used by V-DOM's construction-time
//!   enforcement;
//! * [`deriv`] — a Brzozowski-derivative matcher that handles numeric
//!   occurrence bounds *without* expansion (the counter-automaton ablation
//!   of DESIGN.md experiment B5).
//!
//! # Example
//!
//! ```
//! use automata::{ContentExpr, ContentDfa, Matcher};
//!
//! // shipTo billTo comment? items   (the paper's PurchaseOrderType)
//! let model = ContentExpr::sequence(vec![
//!     ContentExpr::leaf("shipTo"),
//!     ContentExpr::leaf("billTo"),
//!     ContentExpr::optional(ContentExpr::leaf("comment")),
//!     ContentExpr::leaf("items"),
//! ]);
//! let dfa = ContentDfa::compile(&model).unwrap();
//! let mut m = dfa.start();
//! for child in ["shipTo", "billTo", "items"] {
//!     m.step(child).unwrap();
//! }
//! assert!(m.is_accepting());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deriv;
pub mod dfa;
pub mod expr;
pub mod glushkov;

pub use deriv::DerivMatcher;
pub use dfa::{ContentDfa, DfaMatcher, StepError};
pub use expr::ContentExpr;
pub use glushkov::{AmbiguityError, Glushkov};

/// Incremental matching interface shared by the DFA and derivative
/// engines: feed one child-element name at a time.
pub trait Matcher {
    /// Consumes one symbol; `Err` carries the set of symbols that would
    /// have been accepted instead.
    fn step(&mut self, symbol: &str) -> Result<(), StepError>;

    /// Whether the input consumed so far is a complete valid content.
    fn is_accepting(&self) -> bool;

    /// The symbols acceptable in the current state (sorted, deduplicated).
    fn expected(&self) -> Vec<String>;
}
