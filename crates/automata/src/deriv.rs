//! A Brzozowski-derivative matcher with native numeric occurrence
//! support — the "counter automaton" alternative to occurrence expansion
//! (DESIGN.md experiment B5).
//!
//! The derivative of `e{min,max}` by symbol `a` is
//! `∂a(e) · e{max(min−1,0), max−1}`, so bounds like `maxOccurs="100000"`
//! cost nothing at construction time; the price is paid per `step`, where
//! the expression is rewritten instead of a table lookup.

use crate::dfa::StepError;
use crate::expr::ContentExpr;
use crate::Matcher;

/// An incremental matcher that works directly on the expression.
///
/// As with the DFA matcher, a failed step leaves the matcher unchanged.
#[derive(Debug, Clone)]
pub struct DerivMatcher {
    /// Current residual expression.
    current: ContentExpr,
}

impl DerivMatcher {
    /// Creates a matcher for `expr` (no compilation step).
    pub fn new(expr: &ContentExpr) -> DerivMatcher {
        DerivMatcher {
            current: expr.clone(),
        }
    }

    /// Validates a complete child sequence in one call.
    pub fn accepts<'a>(expr: &ContentExpr, children: impl IntoIterator<Item = &'a str>) -> bool {
        let mut m = DerivMatcher::new(expr);
        for c in children {
            if m.step(c).is_err() {
                return false;
            }
        }
        m.is_accepting()
    }
}

impl Matcher for DerivMatcher {
    fn step(&mut self, symbol: &str) -> Result<(), StepError> {
        match derive(&self.current, symbol) {
            Some(next) => {
                self.current = next;
                Ok(())
            }
            None => Err(StepError {
                got: symbol.to_string(),
                expected: first_symbols(&self.current),
                could_end: self.current.nullable(),
            }),
        }
    }

    fn is_accepting(&self) -> bool {
        self.current.nullable()
    }

    fn expected(&self) -> Vec<String> {
        first_symbols(&self.current)
    }
}

/// The symbols that can begin a match of `expr` (sorted, deduplicated).
fn first_symbols(expr: &ContentExpr) -> Vec<String> {
    let mut out = Vec::new();
    collect_first(expr, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

fn collect_first(expr: &ContentExpr, out: &mut Vec<String>) {
    match expr {
        ContentExpr::Empty => {}
        ContentExpr::Leaf(n) => out.push(n.clone()),
        ContentExpr::Sequence(parts) => {
            for p in parts {
                collect_first(p, out);
                if !p.nullable() {
                    break;
                }
            }
        }
        ContentExpr::Choice(parts) => {
            for p in parts {
                collect_first(p, out);
            }
        }
        ContentExpr::Occur { inner, .. } => collect_first(inner, out),
    }
}

/// Computes the derivative of `expr` by `symbol`, or `None` if the
/// residual language is empty.
///
/// This implementation exploits the determinism (UPA) of schema content
/// models: at most one alternative can consume the symbol, so we take the
/// first branch that derives successfully rather than tracking a set of
/// residuals.
fn derive(expr: &ContentExpr, symbol: &str) -> Option<ContentExpr> {
    match expr {
        ContentExpr::Empty => None,
        ContentExpr::Leaf(n) => (n == symbol).then_some(ContentExpr::Empty),
        ContentExpr::Sequence(parts) => {
            // ∂(p0 p1 …) = ∂(p0) p1 …  |  (if p0 nullable) ∂(p1 …)
            for (i, part) in parts.iter().enumerate() {
                if let Some(d) = derive(part, symbol) {
                    let mut rest = Vec::with_capacity(parts.len() - i);
                    if d != ContentExpr::Empty {
                        rest.push(d);
                    }
                    rest.extend(parts[i + 1..].iter().cloned());
                    return Some(ContentExpr::sequence(rest));
                }
                if !part.nullable() {
                    return None;
                }
            }
            None
        }
        ContentExpr::Choice(parts) => parts.iter().find_map(|p| derive(p, symbol)),
        ContentExpr::Occur { inner, min, max } => {
            if *max == Some(0) {
                return None;
            }
            let d = derive(inner, symbol)?;
            let residual = ContentExpr::Occur {
                inner: inner.clone(),
                min: min.saturating_sub(1),
                max: max.map(|m| m - 1),
            };
            let mut parts = Vec::with_capacity(2);
            if d != ContentExpr::Empty {
                parts.push(d);
            }
            if !matches!(residual, ContentExpr::Occur { max: Some(0), .. }) {
                parts.push(residual);
            }
            Some(ContentExpr::sequence(parts))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::ContentDfa;

    fn po_model() -> ContentExpr {
        ContentExpr::sequence(vec![
            ContentExpr::leaf("shipTo"),
            ContentExpr::leaf("billTo"),
            ContentExpr::optional(ContentExpr::leaf("comment")),
            ContentExpr::leaf("items"),
        ])
    }

    #[test]
    fn agrees_with_dfa_on_purchase_order() {
        let dfa = ContentDfa::compile(&po_model()).unwrap();
        for children in [
            vec!["shipTo", "billTo", "comment", "items"],
            vec!["shipTo", "billTo", "items"],
            vec!["shipTo", "items"],
            vec![],
            vec!["shipTo", "billTo", "comment", "comment", "items"],
        ] {
            assert_eq!(
                DerivMatcher::accepts(&po_model(), children.iter().copied()),
                dfa.accepts(children.iter().copied()),
                "children {children:?}"
            );
        }
    }

    #[test]
    fn huge_max_occurs_without_expansion() {
        let model = ContentExpr::occur(ContentExpr::leaf("item"), 2, Some(1_000_000));
        // DFA compilation would refuse this bound; derivatives don't care.
        let mut m = DerivMatcher::new(&model);
        m.step("item").unwrap();
        assert!(!m.is_accepting());
        m.step("item").unwrap();
        assert!(m.is_accepting());
        for _ in 0..100 {
            m.step("item").unwrap();
        }
        assert!(m.is_accepting());
    }

    #[test]
    fn bounded_count_is_exact() {
        let model = ContentExpr::occur(ContentExpr::leaf("x"), 1, Some(3));
        assert!(!DerivMatcher::accepts(&model, []));
        assert!(DerivMatcher::accepts(&model, ["x"]));
        assert!(DerivMatcher::accepts(&model, ["x", "x", "x"]));
        assert!(!DerivMatcher::accepts(&model, ["x", "x", "x", "x"]));
    }

    #[test]
    fn expected_and_errors() {
        let mut m = DerivMatcher::new(&po_model());
        assert_eq!(m.expected(), ["shipTo"]);
        m.step("shipTo").unwrap();
        let err = m.step("zzz").unwrap_err();
        assert_eq!(err.expected, ["billTo"]);
        // recoverable: the matcher still expects billTo
        assert_eq!(m.expected(), ["billTo"]);
        assert!(!m.is_accepting());
    }

    #[test]
    fn optional_prefix_exposes_two_expectations() {
        let model = ContentExpr::sequence(vec![
            ContentExpr::optional(ContentExpr::leaf("a")),
            ContentExpr::leaf("b"),
        ]);
        let m = DerivMatcher::new(&model);
        assert_eq!(m.expected(), ["a", "b"]);
        assert!(DerivMatcher::accepts(&model, ["b"]));
        assert!(DerivMatcher::accepts(&model, ["a", "b"]));
        assert!(!DerivMatcher::accepts(&model, ["a"]));
    }

    #[test]
    fn nested_groups() {
        // (a (b | c)){2}
        let model = ContentExpr::occur(
            ContentExpr::sequence(vec![
                ContentExpr::leaf("a"),
                ContentExpr::choice(vec![ContentExpr::leaf("b"), ContentExpr::leaf("c")]),
            ]),
            2,
            Some(2),
        );
        assert!(DerivMatcher::accepts(&model, ["a", "b", "a", "c"]));
        assert!(!DerivMatcher::accepts(&model, ["a", "b"]));
        assert!(!DerivMatcher::accepts(
            &model,
            ["a", "b", "a", "c", "a", "b"]
        ));
    }
}
