//! The Glushkov (Aho–Sethi–Ullman "positions") construction.
//!
//! Every leaf particle of the content expression becomes a *position*;
//! the construction computes `nullable`, `first`, `last` and `follow`
//! sets, which together form an ε-free NFA whose states are positions.
//! XML Schema's *unique particle attribution* constraint is exactly the
//! statement that this NFA is deterministic — [`Glushkov::check_determinism`]
//! verifies it and reports the two competing particles otherwise.

use std::collections::BTreeSet;
use std::fmt;

use crate::expr::ContentExpr;

/// A position: the index of a leaf particle in left-to-right order.
pub type PositionId = usize;

/// The result of the Glushkov construction over an expression whose
/// occurrences have been reduced to `?`/`*`/`+` form (see
/// [`ContentExpr::expand_occurrences`]).
#[derive(Debug, Clone)]
pub struct Glushkov {
    /// Element name of each position.
    pub symbols: Vec<String>,
    /// Whether the whole expression is nullable.
    pub nullable: bool,
    /// Positions that can start a match.
    pub first: BTreeSet<PositionId>,
    /// Positions that can end a match.
    pub last: BTreeSet<PositionId>,
    /// `follow[p]` = positions that may follow position `p`.
    pub follow: Vec<BTreeSet<PositionId>>,
}

/// Two particles competing for the same element name — a violation of
/// XML Schema's unique-particle-attribution rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmbiguityError {
    /// The ambiguous element name.
    pub symbol: String,
    /// The two competing positions (leaf indices in document order).
    pub positions: (PositionId, PositionId),
}

impl fmt::Display for AmbiguityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "content model violates unique particle attribution: element {:?} is matched by competing particles #{} and #{}",
            self.symbol, self.positions.0, self.positions.1
        )
    }
}

impl std::error::Error for AmbiguityError {}

impl Glushkov {
    /// Runs the construction.
    ///
    /// The expression must already be in `?`/`*`/`+` occurrence form;
    /// bounded counts other than `{0,1}` are handled by expanding first.
    pub fn construct(expr: &ContentExpr) -> Glushkov {
        let mut symbols = Vec::new();
        let mut follow = Vec::new();
        let info = build_into(expr, &mut symbols, &mut follow);
        Glushkov {
            follow,
            symbols,
            nullable: info.nullable,
            first: info.first,
            last: info.last,
        }
    }

    /// Number of positions.
    pub fn position_count(&self) -> usize {
        self.symbols.len()
    }

    /// Checks unique particle attribution: from any state of the position
    /// NFA, at most one successor position per element name.
    pub fn check_determinism(&self) -> Result<(), AmbiguityError> {
        // start state: `first` must not contain two positions with the
        // same symbol; likewise each follow set.
        self.check_set(&self.first)?;
        for set in &self.follow {
            self.check_set(set)?;
        }
        Ok(())
    }

    fn check_set(&self, set: &BTreeSet<PositionId>) -> Result<(), AmbiguityError> {
        let mut seen: Vec<(usize, &str)> = Vec::new();
        for &p in set {
            let sym = self.symbols[p].as_str();
            if let Some(&(q, _)) = seen.iter().find(|&&(_, s)| s == sym) {
                return Err(AmbiguityError {
                    symbol: sym.to_string(),
                    positions: (q, p),
                });
            }
            seen.push((p, sym));
        }
        Ok(())
    }
}

struct Info {
    nullable: bool,
    first: BTreeSet<PositionId>,
    last: BTreeSet<PositionId>,
}

/// Builds `expr`, allocating positions into `symbols` and follow sets into
/// the global `follow` table (indexed by [`PositionId`]).
fn build_into(
    expr: &ContentExpr,
    symbols: &mut Vec<String>,
    follow: &mut Vec<BTreeSet<PositionId>>,
) -> Info {
    match expr {
        ContentExpr::Empty => Info {
            nullable: true,
            first: BTreeSet::new(),
            last: BTreeSet::new(),
        },
        ContentExpr::Leaf(name) => {
            let p = symbols.len();
            symbols.push(name.clone());
            follow.push(BTreeSet::new());
            Info {
                nullable: false,
                first: BTreeSet::from([p]),
                last: BTreeSet::from([p]),
            }
        }
        ContentExpr::Sequence(parts) => {
            let mut acc: Option<Info> = None;
            for part in parts {
                let rhs = build_into(part, symbols, follow);
                acc = Some(match acc {
                    None => rhs,
                    Some(lhs) => {
                        // every last(lhs) can be followed by first(rhs)
                        for &p in &lhs.last {
                            follow[p].extend(rhs.first.iter().copied());
                        }
                        let first = if lhs.nullable {
                            lhs.first.union(&rhs.first).copied().collect()
                        } else {
                            lhs.first
                        };
                        let last = if rhs.nullable {
                            lhs.last.union(&rhs.last).copied().collect()
                        } else {
                            rhs.last
                        };
                        Info {
                            nullable: lhs.nullable && rhs.nullable,
                            first,
                            last,
                        }
                    }
                });
            }
            acc.unwrap_or(Info {
                nullable: true,
                first: BTreeSet::new(),
                last: BTreeSet::new(),
            })
        }
        ContentExpr::Choice(parts) => {
            let mut nullable = false;
            let mut first = BTreeSet::new();
            let mut last = BTreeSet::new();
            for part in parts {
                let info = build_into(part, symbols, follow);
                nullable |= info.nullable;
                first.extend(info.first);
                last.extend(info.last);
            }
            Info {
                nullable,
                first,
                last,
            }
        }
        ContentExpr::Occur { inner, min, max } => {
            let mut info = build_into(inner, symbols, follow);
            let repeats = max.map(|m| m > 1).unwrap_or(true);
            if repeats {
                // last positions can loop back to first positions
                let firsts: Vec<_> = info.first.iter().copied().collect();
                for &p in &info.last {
                    follow[p].extend(firsts.iter().copied());
                }
            }
            if *min == 0 {
                info.nullable = true;
            }
            info
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(expr: &ContentExpr) -> Glushkov {
        Glushkov::construct(&expr.expand_occurrences().unwrap())
    }

    #[test]
    fn sequence_first_last_follow() {
        // a b c
        let e = ContentExpr::sequence(vec![
            ContentExpr::leaf("a"),
            ContentExpr::leaf("b"),
            ContentExpr::leaf("c"),
        ]);
        let gl = g(&e);
        assert_eq!(gl.position_count(), 3);
        assert!(!gl.nullable);
        assert_eq!(gl.first, BTreeSet::from([0]));
        assert_eq!(gl.last, BTreeSet::from([2]));
        assert_eq!(gl.follow[0], BTreeSet::from([1]));
        assert_eq!(gl.follow[1], BTreeSet::from([2]));
        assert!(gl.follow[2].is_empty());
    }

    #[test]
    fn optional_middle_element() {
        // a b? c  — follow(a) = {b, c}
        let e = ContentExpr::sequence(vec![
            ContentExpr::leaf("a"),
            ContentExpr::optional(ContentExpr::leaf("b")),
            ContentExpr::leaf("c"),
        ]);
        let gl = g(&e);
        assert_eq!(gl.follow[0], BTreeSet::from([1, 2]));
        assert_eq!(gl.follow[1], BTreeSet::from([2]));
    }

    #[test]
    fn star_loops_back() {
        let e = ContentExpr::star(ContentExpr::sequence(vec![
            ContentExpr::leaf("a"),
            ContentExpr::leaf("b"),
        ]));
        let gl = g(&e);
        assert!(gl.nullable);
        assert_eq!(gl.follow[1], BTreeSet::from([0])); // b loops to a
    }

    #[test]
    fn dragon_book_abb() {
        // (a|b)* a b b
        let e = ContentExpr::sequence(vec![
            ContentExpr::star(ContentExpr::choice(vec![
                ContentExpr::leaf("a"),
                ContentExpr::leaf("b"),
            ])),
            ContentExpr::leaf("a"),
            ContentExpr::leaf("b"),
            ContentExpr::leaf("b"),
        ]);
        let gl = g(&e);
        assert_eq!(gl.position_count(), 5);
        assert_eq!(gl.first, BTreeSet::from([0, 1, 2]));
        assert_eq!(gl.last, BTreeSet::from([4]));
        // follow(position 1 = 'b' in the loop) = {0, 1, 2}
        assert_eq!(gl.follow[1], BTreeSet::from([0, 1, 2]));
        assert_eq!(gl.follow[3], BTreeSet::from([4]));
    }

    #[test]
    fn deterministic_model_passes_upa() {
        let e = ContentExpr::sequence(vec![
            ContentExpr::leaf("shipTo"),
            ContentExpr::leaf("billTo"),
            ContentExpr::optional(ContentExpr::leaf("comment")),
            ContentExpr::leaf("items"),
        ]);
        assert!(g(&e).check_determinism().is_ok());
    }

    #[test]
    fn ambiguous_model_fails_upa() {
        // (a, b?) | (a, c) — two 'a' particles compete at the start
        let e = ContentExpr::choice(vec![
            ContentExpr::sequence(vec![
                ContentExpr::leaf("a"),
                ContentExpr::optional(ContentExpr::leaf("b")),
            ]),
            ContentExpr::sequence(vec![ContentExpr::leaf("a"), ContentExpr::leaf("c")]),
        ]);
        let err = g(&e).check_determinism().unwrap_err();
        assert_eq!(err.symbol, "a");
    }

    #[test]
    fn classic_upa_violation_optional_then_same() {
        // (a?, a) is the textbook non-deterministic model
        let e = ContentExpr::sequence(vec![
            ContentExpr::optional(ContentExpr::leaf("a")),
            ContentExpr::leaf("a"),
        ]);
        assert!(g(&e).check_determinism().is_err());
    }

    #[test]
    fn same_symbol_in_unambiguous_places_is_fine() {
        // (a, b, a) — both 'a's are uniquely attributed
        let e = ContentExpr::sequence(vec![
            ContentExpr::leaf("a"),
            ContentExpr::leaf("b"),
            ContentExpr::leaf("a"),
        ]);
        assert!(g(&e).check_determinism().is_ok());
    }
}
