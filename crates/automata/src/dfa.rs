//! Symbol-keyed DFA over element names, built from the Glushkov NFA by
//! subset construction (Aho–Sethi–Ullman Algorithm 3.5), with the
//! incremental [`Matcher`] interface V-DOM uses to enforce content models
//! as children are appended.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use symbols::Sym;

use crate::expr::ContentExpr;
use crate::glushkov::{Glushkov, PositionId};
use crate::Matcher;

/// A step rejected by the automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepError {
    /// The symbol that was fed.
    pub got: String,
    /// The symbols that would have been accepted.
    pub expected: Vec<String>,
    /// Whether stopping (no further children) would have been valid.
    pub could_end: bool,
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unexpected element <{}>; expected ", self.got)?;
        if self.expected.is_empty() {
            write!(f, "no further elements")?;
        } else {
            write!(f, "one of: {}", self.expected.join(", "))?;
            if self.could_end {
                write!(f, " (or end of content)")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for StepError {}

/// Errors from [`ContentDfa::compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A bounded occurrence exceeded [`crate::expr::EXPANSION_LIMIT`].
    OccurrenceTooLarge(u32),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::OccurrenceTooLarge(n) => write!(
                f,
                "maxOccurs={n} exceeds the DFA expansion limit; use DerivMatcher"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// A compiled, deterministic content-model automaton.
///
/// States are sets of Glushkov positions; transitions are keyed by
/// element name. The automaton is cheap to share (`Arc` internally), so
/// one compiled model serves every element instance of a type.
#[derive(Debug, Clone)]
pub struct ContentDfa {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    /// transitions[state] maps symbol → next state.
    transitions: Vec<HashMap<String, usize>>,
    /// The same transition function keyed by interned symbol, sorted by
    /// `Sym` for binary search — the zero-allocation hot path. Built
    /// alongside `transitions`, so the two tables are always equivalent.
    sym_transitions: Vec<Vec<(Sym, u32)>>,
    accepting: Vec<bool>,
}

impl ContentDfa {
    /// Compiles a content expression: expand occurrences → Glushkov →
    /// subset construction.
    pub fn compile(expr: &ContentExpr) -> Result<ContentDfa, CompileError> {
        let expanded = expr
            .expand_occurrences()
            .map_err(CompileError::OccurrenceTooLarge)?;
        let glushkov = Glushkov::construct(&expanded);
        Ok(ContentDfa::from_glushkov(&glushkov))
    }

    /// Subset construction from an already-built Glushkov NFA.
    ///
    /// The Glushkov NFA's states are the positions plus an initial state
    /// `q0`; a DFA state is the set of NFA states the automaton can be in
    /// after the input consumed so far (i.e. the set of positions just
    /// matched). Acceptance is `nullable` for the start state and
    /// "contains a `last` position" for every other state.
    pub fn from_glushkov(g: &Glushkov) -> ContentDfa {
        // Candidate positions that may be consumed next from a state.
        let candidates = |consumed: &BTreeSet<PositionId>, is_start: bool| {
            let mut out: BTreeSet<PositionId> = BTreeSet::new();
            if is_start {
                out.extend(g.first.iter().copied());
            } else {
                for &p in consumed {
                    out.extend(g.follow[p].iter().copied());
                }
            }
            out
        };

        // State 0 is the distinguished start state ({q0}); all others are
        // keyed by their set of consumed positions.
        let mut index: HashMap<BTreeSet<PositionId>, usize> = HashMap::new();
        let mut worklist: Vec<BTreeSet<PositionId>> = vec![BTreeSet::new()];
        let mut transitions: Vec<HashMap<String, usize>> = vec![HashMap::new()];
        let mut sym_transitions: Vec<Vec<(Sym, u32)>> = vec![Vec::new()];
        let mut accepting = vec![g.nullable];
        let mut processed = 0;

        while processed < worklist.len() {
            let consumed = worklist[processed].clone();
            let current_id = processed;
            let is_start = current_id == 0;
            // group candidate next positions by symbol
            let mut by_symbol: HashMap<&str, BTreeSet<PositionId>> = HashMap::new();
            for p in candidates(&consumed, is_start) {
                by_symbol
                    .entry(g.symbols[p].as_str())
                    .or_default()
                    .insert(p);
            }
            // deterministic iteration order for reproducible state ids
            let mut symbols: Vec<&str> = by_symbol.keys().copied().collect();
            symbols.sort_unstable();
            for sym in symbols {
                let next = by_symbol[sym].clone();
                let next_id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = worklist.len();
                        index.insert(next.clone(), id);
                        accepting.push(next.iter().any(|p| g.last.contains(p)));
                        worklist.push(next);
                        transitions.push(HashMap::new());
                        sym_transitions.push(Vec::new());
                        id
                    }
                };
                transitions[current_id].insert(sym.to_string(), next_id);
                sym_transitions[current_id].push((symbols::intern(sym), next_id as u32));
            }
            processed += 1;
        }

        for row in &mut sym_transitions {
            row.sort_unstable_by_key(|&(s, _)| s);
        }

        ContentDfa {
            inner: Arc::new(Inner {
                transitions,
                sym_transitions,
                accepting,
            }),
        }
    }

    /// Whether two handles share one underlying automaton — the cheap
    /// "same compiled model" check the schema layer's intern table is
    /// built around.
    pub fn ptr_eq(&self, other: &ContentDfa) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Number of DFA states (bench metric).
    pub fn state_count(&self) -> usize {
        self.inner.transitions.len()
    }

    /// Total number of transitions across all states (bench metric).
    pub fn transition_count(&self) -> usize {
        self.inner.transitions.iter().map(HashMap::len).sum()
    }

    /// A fresh matcher positioned at the start state.
    pub fn start(&self) -> DfaMatcher {
        DfaMatcher {
            dfa: self.clone(),
            state: 0,
        }
    }

    /// A matcher resumed at a previously observed state (see
    /// [`DfaMatcher::state`]). Compiled P-XML templates use this to
    /// restart content matching at a hole's entry state — the static
    /// prefix of children was verified at plan time, so only the spliced
    /// suffix needs stepping at render time.
    ///
    /// The incremental revalidator (`validator::patch`) resumes from
    /// *arbitrary* mid-sibling positions, including positions reached
    /// after an optional-particle prefix (`comment?` consumed or
    /// skipped). That is sound because the subset construction makes
    /// this automaton deterministic: the state after a prefix is a pure
    /// function of the prefix, so stepping the suffix from a snapshotted
    /// state is indistinguishable from stepping the whole list from
    /// state 0 — same states, same accept/reject verdicts, same
    /// [`expected`](DfaMatcher::expected) sets. The `resume_audit`
    /// integration battery pins this over every corpus content model at
    /// every split point.
    ///
    /// # Panics
    ///
    /// Panics if `state` is not a state id of this automaton.
    pub fn resume(&self, state: usize) -> DfaMatcher {
        assert!(
            state < self.inner.transitions.len(),
            "resume state {state} out of range"
        );
        DfaMatcher {
            dfa: self.clone(),
            state,
        }
    }

    /// Validates a complete child sequence in one call.
    pub fn accepts<'a>(&self, children: impl IntoIterator<Item = &'a str>) -> bool {
        let mut m = self.start();
        for c in children {
            if m.step(c).is_err() {
                return false;
            }
        }
        m.is_accepting()
    }

    fn expected_in(&self, state: usize) -> Vec<String> {
        let mut v: Vec<String> = self.inner.transitions[state].keys().cloned().collect();
        v.sort_unstable();
        v
    }
}

/// An incremental matcher over a [`ContentDfa`].
///
/// A failed [`Matcher::step`] leaves the matcher unchanged, so callers
/// (V-DOM in particular) can reject an operation and continue — the
/// document stays a valid prefix.
#[derive(Debug, Clone)]
pub struct DfaMatcher {
    dfa: ContentDfa,
    state: usize,
}

impl DfaMatcher {
    /// The current DFA state id (used by V-DOM to snapshot progress).
    pub fn state(&self) -> usize {
        self.state
    }

    /// Steps on an interned symbol without allocating. Returns `false`
    /// (matcher unchanged) when the symbol has no transition; callers
    /// wanting the rich [`StepError`] then re-step via [`Matcher::step`]
    /// with the string name — valid because both tables are built from
    /// the same construction and a failed step does not move the state.
    #[inline]
    pub fn try_step_sym(&mut self, sym: Sym) -> bool {
        let row = &self.dfa.inner.sym_transitions[self.state];
        match row.binary_search_by_key(&sym, |&(s, _)| s) {
            Ok(i) => {
                self.state = row[i].1 as usize;
                true
            }
            Err(_) => false,
        }
    }
}

impl Matcher for DfaMatcher {
    fn step(&mut self, symbol: &str) -> Result<(), StepError> {
        match self.dfa.inner.transitions[self.state].get(symbol) {
            Some(&next) => {
                self.state = next;
                Ok(())
            }
            None => Err(StepError {
                got: symbol.to_string(),
                expected: self.dfa.expected_in(self.state),
                could_end: self.dfa.inner.accepting[self.state],
            }),
        }
    }

    fn is_accepting(&self) -> bool {
        self.dfa.inner.accepting[self.state]
    }

    fn expected(&self) -> Vec<String> {
        self.dfa.expected_in(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn po_model() -> ContentExpr {
        ContentExpr::sequence(vec![
            ContentExpr::leaf("shipTo"),
            ContentExpr::leaf("billTo"),
            ContentExpr::optional(ContentExpr::leaf("comment")),
            ContentExpr::leaf("items"),
        ])
    }

    #[test]
    fn purchase_order_content_model() {
        let dfa = ContentDfa::compile(&po_model()).unwrap();
        assert!(dfa.accepts(["shipTo", "billTo", "comment", "items"]));
        assert!(dfa.accepts(["shipTo", "billTo", "items"]));
        assert!(!dfa.accepts(["shipTo", "items"]));
        assert!(!dfa.accepts(["billTo", "shipTo", "items"]));
        assert!(!dfa.accepts(["shipTo", "billTo", "items", "items"]));
        assert!(!dfa.accepts([]));
    }

    #[test]
    fn step_error_reports_expectations() {
        let dfa = ContentDfa::compile(&po_model()).unwrap();
        let mut m = dfa.start();
        m.step("shipTo").unwrap();
        let err = m.step("items").unwrap_err();
        assert_eq!(err.got, "items");
        assert_eq!(err.expected, ["billTo"]);
        assert!(!err.could_end);
        // a failed step is recoverable: the matcher is unchanged
        m.step("billTo").unwrap();
        assert_eq!(m.expected(), ["comment", "items"]);
    }

    #[test]
    fn expected_mid_sequence() {
        let dfa = ContentDfa::compile(&po_model()).unwrap();
        let mut m = dfa.start();
        m.step("shipTo").unwrap();
        m.step("billTo").unwrap();
        assert_eq!(m.expected(), ["comment", "items"]);
        assert!(!m.is_accepting());
    }

    #[test]
    fn star_and_choice() {
        // (option)* under select, from the WML example
        let model = ContentExpr::star(ContentExpr::choice(vec![
            ContentExpr::leaf("optgroup"),
            ContentExpr::leaf("option"),
        ]));
        let dfa = ContentDfa::compile(&model).unwrap();
        assert!(dfa.accepts([]));
        assert!(dfa.accepts(["option", "option", "optgroup"]));
        assert!(!dfa.accepts(["option", "p"]));
    }

    #[test]
    fn bounded_occurrence_via_expansion() {
        let model = ContentExpr::occur(ContentExpr::leaf("item"), 2, Some(3));
        let dfa = ContentDfa::compile(&model).unwrap();
        assert!(!dfa.accepts(["item"]));
        assert!(dfa.accepts(["item", "item"]));
        assert!(dfa.accepts(["item", "item", "item"]));
        assert!(!dfa.accepts(["item", "item", "item", "item"]));
    }

    #[test]
    fn too_large_occurrence_rejected() {
        let model = ContentExpr::occur(ContentExpr::leaf("x"), 0, Some(1_000_000));
        assert!(matches!(
            ContentDfa::compile(&model),
            Err(CompileError::OccurrenceTooLarge(1_000_000))
        ));
    }

    #[test]
    fn dfa_is_shared_cheaply() {
        let dfa = ContentDfa::compile(&po_model()).unwrap();
        let d2 = dfa.clone();
        assert_eq!(dfa.state_count(), d2.state_count());
    }

    #[test]
    fn empty_model_accepts_only_empty() {
        let dfa = ContentDfa::compile(&ContentExpr::Empty).unwrap();
        assert!(dfa.accepts([]));
        assert!(!dfa.accepts(["x"]));
    }

    #[test]
    fn sym_steps_agree_with_string_steps() {
        let dfa = ContentDfa::compile(&po_model()).unwrap();
        let mut by_str = dfa.start();
        let mut by_sym = dfa.start();
        for step in ["shipTo", "billTo", "items", "comment", "items"] {
            let str_ok = by_str.step(step).is_ok();
            let sym_ok = by_sym.try_step_sym(symbols::intern(step));
            assert_eq!(str_ok, sym_ok, "divergence on {step}");
            assert_eq!(by_str.state(), by_sym.state());
        }
        // a symbol never seen by any content model has no transition
        let mut m = dfa.start();
        let before = m.state();
        assert!(!m.try_step_sym(symbols::intern("symtest-dfa-unknown")));
        assert_eq!(m.state(), before);
    }

    #[test]
    fn resume_continues_from_a_snapshotted_state() {
        let dfa = ContentDfa::compile(&po_model()).unwrap();
        let mut m = dfa.start();
        m.step("shipTo").unwrap();
        m.step("billTo").unwrap();
        let snapshot = m.state();
        // a resumed matcher behaves exactly like the original
        let mut r = dfa.resume(snapshot);
        assert_eq!(r.expected(), ["comment", "items"]);
        r.step("items").unwrap();
        assert!(r.is_accepting());
        // the original is unaffected by the resumed copy
        m.step("comment").unwrap();
        m.step("items").unwrap();
        assert!(m.is_accepting());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn resume_rejects_foreign_states() {
        let dfa = ContentDfa::compile(&po_model()).unwrap();
        let _ = dfa.resume(usize::MAX);
    }

    #[test]
    fn dragon_book_language() {
        // (a|b)* a b b
        let e = ContentExpr::sequence(vec![
            ContentExpr::star(ContentExpr::choice(vec![
                ContentExpr::leaf("a"),
                ContentExpr::leaf("b"),
            ])),
            ContentExpr::leaf("a"),
            ContentExpr::leaf("b"),
            ContentExpr::leaf("b"),
        ]);
        let dfa = ContentDfa::compile(&e).unwrap();
        assert!(dfa.accepts(["a", "b", "b"]));
        assert!(dfa.accepts(["b", "a", "b", "a", "b", "b"]));
        assert!(!dfa.accepts(["a", "b"]));
        // The minimal DFA has 4 states; unminimized subset construction
        // over Glushkov positions yields 5 (the start state duplicates
        // the "just consumed the looping b" state).
        assert_eq!(dfa.state_count(), 5);
    }
}
