//! Property tests: the expansion-based DFA and the derivative matcher
//! must define the same language, and both must respect basic regular
//! identities.

use automata::{ContentDfa, ContentExpr, DerivMatcher, Matcher};
use proptest::prelude::*;

/// Random content expressions over a tiny alphabet.
fn arb_expr() -> impl Strategy<Value = ContentExpr> {
    let leaf = prop_oneof![
        Just(ContentExpr::leaf("a")),
        Just(ContentExpr::leaf("b")),
        Just(ContentExpr::leaf("c")),
        Just(ContentExpr::Empty),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(ContentExpr::sequence),
            prop::collection::vec(inner.clone(), 1..4).prop_map(ContentExpr::choice),
            (inner.clone(), 0u32..3, 0u32..3).prop_map(|(e, min, extra)| ContentExpr::occur(
                e,
                min,
                Some(min + extra)
            )),
            (inner, 0u32..2).prop_map(|(e, min)| ContentExpr::occur(e, min, None)),
        ]
    })
}

fn arb_input() -> impl Strategy<Value = Vec<&'static str>> {
    prop::collection::vec(
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")],
        0..10,
    )
}

proptest! {
    #[test]
    fn dfa_and_derivatives_agree(expr in arb_expr(), input in arb_input()) {
        let dfa = ContentDfa::compile(&expr).expect("small bounds always compile");
        let dfa_result = dfa.accepts(input.iter().copied());
        let deriv_result = DerivMatcher::accepts(&expr, input.iter().copied());
        prop_assert_eq!(dfa_result, deriv_result,
            "expr {} input {:?}", expr, input);
    }

    #[test]
    fn nullable_iff_accepts_empty(expr in arb_expr()) {
        let dfa = ContentDfa::compile(&expr).unwrap();
        prop_assert_eq!(expr.nullable(), dfa.accepts([]));
    }

    #[test]
    fn expected_is_sound(expr in arb_expr(), input in arb_input()) {
        // every symbol reported by expected() must be steppable
        let dfa = ContentDfa::compile(&expr).unwrap();
        let mut m = dfa.start();
        for sym in input {
            let expected = m.expected();
            let mut probe = m.clone();
            let ok = probe.step(sym).is_ok();
            prop_assert_eq!(ok, expected.iter().any(|e| e == sym));
            if ok {
                m = probe;
            } else {
                break;
            }
        }
    }

    #[test]
    fn star_accepts_repetitions(n in 0usize..6) {
        let expr = ContentExpr::star(ContentExpr::leaf("a"));
        let dfa = ContentDfa::compile(&expr).unwrap();
        let input = vec!["a"; n];
        prop_assert!(dfa.accepts(input.iter().copied()));
    }

    #[test]
    fn bounded_occurrence_counts_exactly(min in 0u32..4, extra in 0u32..4, n in 0u32..10) {
        let max = min + extra;
        let expr = ContentExpr::occur(ContentExpr::leaf("x"), min, Some(max));
        let dfa = ContentDfa::compile(&expr).unwrap();
        let input = vec!["x"; n as usize];
        let should = n >= min && n <= max;
        prop_assert_eq!(dfa.accepts(input.iter().copied()), should);
        prop_assert_eq!(DerivMatcher::accepts(&expr, input.iter().copied()), should);
    }
}
