//! Counters, gauges, fixed-bucket histograms, and the registry that
//! renders them as a text report or in Prometheus text format.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.inc_by(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn inc_by(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram with Prometheus semantics: a bucket counts
/// observations `v <= bound` (non-cumulative internally, rendered
/// cumulatively), plus a running sum and count.
#[derive(Debug)]
pub struct Histogram {
    /// Ascending, finite upper bounds; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// One slot per bound plus the `+Inf` slot.
    buckets: Vec<AtomicU64>,
    /// Sum of observations, stored as `f64` bits (CAS-updated).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (+Inf is implicit)"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|bound| v <= *bound)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Records a duration in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Cumulative bucket counts as `(upper bound, count of v <= bound)`;
    /// the final entry is `(f64::INFINITY, total count)`.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut running = 0;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, slot) in self.buckets.iter().enumerate() {
            running += slot.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, running));
        }
        out
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the bucket containing the target rank — the same estimate
    /// `histogram_quantile` makes in PromQL, with the same caveat: the
    /// answer is bucket-resolution, not exact. Observations landing in
    /// the `+Inf` bucket clamp to the largest finite bound. Returns 0.0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let buckets = self.cumulative_buckets();
        let total = buckets.last().map(|&(_, c)| c).unwrap_or(0);
        if total == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut prev_bound = 0.0;
        let mut prev_count = 0u64;
        for &(bound, count) in &buckets {
            if (count as f64) >= rank {
                if bound.is_infinite() {
                    // no upper edge to interpolate toward; clamp
                    return prev_bound;
                }
                let in_bucket = (count - prev_count) as f64;
                if in_bucket == 0.0 {
                    return bound;
                }
                let frac = (rank - prev_count as f64) / in_bucket;
                return prev_bound + (bound - prev_bound) * frac.clamp(0.0, 1.0);
            }
            prev_bound = bound;
            prev_count = count;
        }
        prev_bound
    }
}

/// Canonical label key: pairs sorted by label name.
type LabelSet = Vec<(String, String)>;

fn canonical(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    set.sort();
    set
}

enum FamilyKind {
    Counter(BTreeMap<LabelSet, Arc<Counter>>),
    Gauge(BTreeMap<LabelSet, Arc<Gauge>>),
    Histogram {
        bounds: Vec<f64>,
        series: BTreeMap<LabelSet, Arc<Histogram>>,
    },
}

impl FamilyKind {
    fn type_name(&self) -> &'static str {
        match self {
            FamilyKind::Counter(_) => "counter",
            FamilyKind::Gauge(_) => "gauge",
            FamilyKind::Histogram { .. } => "histogram",
        }
    }
}

struct Family {
    help: &'static str,
    kind: FamilyKind,
}

/// A metric registry: families keyed by metric name, each holding one
/// series per label set. [`crate::metrics()`] is the process-global
/// instance the pipeline records into; tests may build private ones.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter `name` with no labels, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// The counter `name` with the given labels, registering on first
    /// use. Label order does not matter; `help` is kept from the first
    /// registration.
    pub fn counter_with(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        let mut families = self.families.lock().expect("metric registry lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help,
            kind: FamilyKind::Counter(BTreeMap::new()),
        });
        match &mut family.kind {
            FamilyKind::Counter(series) => series.entry(canonical(labels)).or_default().clone(),
            other => panic!(
                "metric {name} already registered as a {}, not a counter",
                other.type_name()
            ),
        }
    }

    /// The gauge `name` with no labels, registering it on first use.
    pub fn gauge(&self, name: &str, help: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// The gauge `name` with the given labels, registering on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn gauge_with(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        let mut families = self.families.lock().expect("metric registry lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help,
            kind: FamilyKind::Gauge(BTreeMap::new()),
        });
        match &mut family.kind {
            FamilyKind::Gauge(series) => series.entry(canonical(labels)).or_default().clone(),
            other => panic!(
                "metric {name} already registered as a {}, not a gauge",
                other.type_name()
            ),
        }
    }

    /// The histogram `name` with no labels, registering it on first use
    /// with `bounds` (ascending, finite; `+Inf` is implicit). Later
    /// callers share the first registration's bounds.
    pub fn histogram(&self, name: &str, help: &'static str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, help, &[], bounds)
    }

    /// The histogram `name` with the given labels, registering on first
    /// use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        let mut families = self.families.lock().expect("metric registry lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help,
            kind: FamilyKind::Histogram {
                bounds: bounds.to_vec(),
                series: BTreeMap::new(),
            },
        });
        match &mut family.kind {
            FamilyKind::Histogram { bounds, series } => series
                .entry(canonical(labels))
                .or_insert_with(|| Arc::new(Histogram::new(bounds)))
                .clone(),
            other => panic!(
                "metric {name} already registered as a {}, not a histogram",
                other.type_name()
            ),
        }
    }

    /// Drops every registered family. Existing handles keep working but
    /// are no longer rendered — meant for tests and repeated reports.
    pub fn reset(&self) {
        self.families.lock().expect("metric registry lock").clear();
    }

    /// Renders every family in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, cumulative `_bucket`/`_sum`/`_count`
    /// series for histograms), suitable for a `/metrics` page.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("metric registry lock");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.type_name());
            match &family.kind {
                FamilyKind::Counter(series) => {
                    for (labels, counter) in series {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels), counter.get());
                    }
                }
                FamilyKind::Gauge(series) => {
                    for (labels, gauge) in series {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels), gauge.get());
                    }
                }
                FamilyKind::Histogram { series, .. } => {
                    for (labels, histogram) in series {
                        for (bound, cumulative) in histogram.cumulative_buckets() {
                            let le = if bound.is_infinite() {
                                "+Inf".to_string()
                            } else {
                                format_f64(bound)
                            };
                            let mut with_le = labels.clone();
                            with_le.push(("le".to_string(), le));
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                render_labels(&with_le)
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            render_labels(labels),
                            format_f64(histogram.sum())
                        );
                        let _ = writeln!(
                            out,
                            "{name}_count{} {}",
                            render_labels(labels),
                            histogram.count()
                        );
                    }
                }
            }
        }
        out
    }

    /// Renders a human-readable report: one aligned line per series,
    /// histograms summarized as count/sum/mean. Durations (metrics named
    /// `*_seconds`) are scaled to ns/µs/ms for reading.
    pub fn render_text(&self) -> String {
        let families = self.families.lock().expect("metric registry lock");
        let mut out = String::from("== metrics ==\n");
        if families.is_empty() {
            out.push_str("(none recorded)\n");
            return out;
        }
        for (name, family) in families.iter() {
            match &family.kind {
                FamilyKind::Counter(series) => {
                    for (labels, counter) in series {
                        let _ = writeln!(
                            out,
                            "counter   {name}{} = {}",
                            render_labels(labels),
                            counter.get()
                        );
                    }
                }
                FamilyKind::Gauge(series) => {
                    for (labels, gauge) in series {
                        let _ = writeln!(
                            out,
                            "gauge     {name}{} = {}",
                            render_labels(labels),
                            gauge.get()
                        );
                    }
                }
                FamilyKind::Histogram { series, .. } => {
                    let seconds = name.ends_with("_seconds");
                    for (labels, histogram) in series {
                        let count = histogram.count();
                        let sum = histogram.sum();
                        let mean = if count == 0 { 0.0 } else { sum / count as f64 };
                        let (sum, mean) = if seconds {
                            (fmt_seconds(sum), fmt_seconds(mean))
                        } else {
                            (format_f64(sum), format_f64(mean))
                        };
                        let _ = writeln!(
                            out,
                            "histogram {name}{} count={count} sum={sum} mean={mean}",
                            render_labels(labels),
                        );
                    }
                }
            }
        }
        out
    }

    /// Renders p50/p90/p99 estimates for every histogram series, derived
    /// from the fixed bucket counts ([`Histogram::quantile`]). Duration
    /// histograms (`*_seconds`) are scaled for reading; empty when no
    /// histograms have observations.
    pub fn render_quantiles(&self) -> String {
        let families = self.families.lock().expect("metric registry lock");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let FamilyKind::Histogram { series, .. } = &family.kind else {
                continue;
            };
            let seconds = name.ends_with("_seconds");
            for (labels, histogram) in series {
                if histogram.count() == 0 {
                    continue;
                }
                if out.is_empty() {
                    out.push_str("== quantile estimates (from histogram buckets) ==\n");
                }
                let fmt = |v: f64| {
                    if seconds {
                        fmt_seconds(v)
                    } else {
                        format!("{v:.1}")
                    }
                };
                let _ = writeln!(
                    out,
                    "{name}{} p50≈{} p90≈{} p99≈{} (n={})",
                    render_labels(labels),
                    fmt(histogram.quantile(0.50)),
                    fmt(histogram.quantile(0.90)),
                    fmt(histogram.quantile(0.99)),
                    histogram.count(),
                );
            }
        }
        out
    }
}

/// `{k="v",…}` with Prometheus label-value escaping; empty for no labels.
fn render_labels(labels: &LabelSet) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Prometheus label-value escaping: backslash, double quote, newline.
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Prometheus HELP escaping: backslash and newline (quotes are fine).
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// `f64` in the shortest round-trippable decimal form Rust offers —
/// Prometheus parsers accept plain decimal and scientific notation.
fn format_f64(v: f64) -> String {
    format!("{v}")
}

/// Scales a duration in seconds to ns / µs / ms / s for human output.
pub fn fmt_seconds(seconds: f64) -> String {
    if seconds == 0.0 {
        "0s".to_string()
    } else if seconds < 1e-6 {
        format!("{:.0}ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.0}µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2}ms", seconds * 1e3)
    } else {
        format!("{seconds:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics_and_labels() {
        let reg = Registry::new();
        let plain = reg.counter("hits_total", "Hits.");
        plain.inc();
        plain.inc_by(4);
        assert_eq!(plain.get(), 5);
        // same name + same labels (any order) → the same series
        let a = reg.counter_with("by_kind_total", "By kind.", &[("a", "1"), ("b", "2")]);
        let b = reg.counter_with("by_kind_total", "By kind.", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        // different labels → a different series
        let c = reg.counter_with("by_kind_total", "By kind.", &[("a", "other")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn concurrent_counter_increments_from_multiple_threads() {
        let reg = Arc::new(Registry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let counter = reg.counter("racy_total", "Contended counter.");
                    for _ in 0..10_000 {
                        counter.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            reg.counter("racy_total", "Contended counter.").get(),
            80_000
        );
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = Registry::new();
        let g = reg.gauge("depth", "Depth.");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive() {
        // Prometheus semantics: a bucket counts v <= bound.
        let reg = Registry::new();
        let h = reg.histogram("h", "Edges.", &[1.0, 2.0, 4.0]);
        h.observe(1.0); // exactly on a bound → that bucket
        h.observe(1.0000001); // just over → next bucket
        h.observe(4.0); // top finite bound
        h.observe(99.0); // overflow → +Inf only
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 105.0000001).abs() < 1e-6);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!((buckets[0].0, buckets[0].1), (1.0, 1));
        assert_eq!((buckets[1].0, buckets[1].1), (2.0, 2));
        assert_eq!((buckets[2].0, buckets[2].1), (4.0, 3));
        assert!(buckets[3].0.is_infinite());
        assert_eq!(buckets[3].1, 4, "+Inf bucket equals total count");
    }

    #[test]
    fn concurrent_histogram_observations() {
        let reg = Arc::new(Registry::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let h = reg.histogram("conc", "Concurrent.", &[10.0]);
                    for _ in 0..5_000 {
                        h.observe(t as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let h = reg.histogram("conc", "Concurrent.", &[10.0]);
        assert_eq!(h.count(), 20_000);
        // sum = 5000 * (0 + 1 + 2 + 3); f64 CAS additions of small
        // integers are exact
        assert_eq!(h.sum(), 30_000.0);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("twice", "First as counter.");
        reg.gauge("twice", "Then as gauge.");
    }

    #[test]
    fn prometheus_output_escaping() {
        let reg = Registry::new();
        reg.counter_with(
            "esc_total",
            "Help with \\ and\nnewline.",
            &[("path", "a\"b\\c\nd")],
        )
        .inc();
        let out = reg.render_prometheus();
        assert!(
            out.contains(r#"esc_total{path="a\"b\\c\nd"} 1"#),
            "label value must escape quote, backslash, newline:\n{out}"
        );
        assert!(
            out.contains("# HELP esc_total Help with \\\\ and\\nnewline."),
            "help must escape backslash and newline:\n{out}"
        );
        assert!(out.contains("# TYPE esc_total counter"), "{out}");
    }

    #[test]
    fn prometheus_escaping_survives_hostile_label_values() {
        // Order of operations matters: backslash must be escaped first,
        // or the backslashes introduced by the quote/newline escapes get
        // double-escaped. These values are chosen to catch that.
        let reg = Registry::new();
        for (i, (value, expected)) in [
            // a value that is nothing but a newline
            ("\n", r"\n"),
            // trailing backslash — must not eat the closing quote
            ("end\\", r"end\\"),
            // literal backslash-n sequence must stay distinguishable
            // from a real newline: \ + n → \\ + n, not \n
            ("a\\nb", r"a\\nb"),
            // quote + backslash + newline stacked together
            ("\"\\\n", r#"\"\\\n"#),
            // escape-order trap: backslash followed by a real quote
            ("\\\"", r#"\\\""#),
        ]
        .iter()
        .enumerate()
        {
            let name = format!("hostile_{i}_total");
            reg.counter_with(&name, "Hostile.", &[("v", value)]).inc();
            let out = reg.render_prometheus();
            // the sample must render as exactly this complete line — a
            // raw newline or eaten quote would split or corrupt it
            let want = format!("{name}{{v=\"{expected}\"}} 1");
            assert!(
                out.lines().any(|l| l == want),
                "for {value:?} wanted line {want:?} in:\n{out}"
            );
        }
    }

    #[test]
    fn prometheus_help_escaping_hostile_values() {
        // HELP text escapes backslash and newline only — double quotes
        // are legal there and must pass through raw.
        let reg = Registry::new();
        reg.counter("h1_total", "Say \"hi\" with\na \\ backslash.")
            .inc();
        let out = reg.render_prometheus();
        assert!(
            out.contains("# HELP h1_total Say \"hi\" with\\na \\\\ backslash."),
            "{out}"
        );
        assert_eq!(
            out.lines()
                .filter(|l| l.starts_with("# HELP h1_total"))
                .count(),
            1,
            "help must render as exactly one line:\n{out}"
        );
    }

    #[test]
    fn quantile_estimates_interpolate_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("q", "Q.", &[1.0, 2.0, 4.0]);
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram → 0");
        // 10 observations in (1, 2]: all quantiles land in that bucket
        for _ in 0..10 {
            h.observe(1.5);
        }
        let p50 = h.quantile(0.5);
        assert!((1.0..=2.0).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 <= 2.0 && p99 >= p50, "p99={p99}");
        // an overflow observation lives in +Inf → clamps to top bound
        h.observe(100.0);
        assert_eq!(h.quantile(1.0), 4.0, "+Inf clamps to largest finite bound");
    }

    #[test]
    fn render_quantiles_lists_active_histograms_only() {
        let reg = Registry::new();
        reg.counter("not_a_histogram_total", "C.").inc();
        reg.histogram("empty_seconds", "Never observed.", &[0.5]);
        assert_eq!(reg.render_quantiles(), "", "nothing to estimate yet");
        reg.histogram_with("lat_seconds", "L.", &[("op", "x")], &[0.001, 0.01])
            .observe(0.005);
        let out = reg.render_quantiles();
        assert!(out.contains("lat_seconds{op=\"x\"} p50≈"), "{out}");
        assert!(out.contains("(n=1)"), "{out}");
        assert!(!out.contains("empty_seconds"), "{out}");
        assert!(!out.contains("not_a_histogram"), "{out}");
    }

    #[test]
    fn prometheus_histogram_rendering() {
        let reg = Registry::new();
        let h = reg.histogram_with("lat_seconds", "Latency.", &[("op", "get")], &[0.5, 1.0]);
        h.observe(0.25);
        h.observe(0.75);
        h.observe(2.0);
        let out = reg.render_prometheus();
        for line in [
            "# TYPE lat_seconds histogram",
            r#"lat_seconds_bucket{op="get",le="0.5"} 1"#,
            r#"lat_seconds_bucket{op="get",le="1"} 2"#,
            r#"lat_seconds_bucket{op="get",le="+Inf"} 3"#,
            r#"lat_seconds_sum{op="get"} 3"#,
            r#"lat_seconds_count{op="get"} 3"#,
        ] {
            assert!(out.contains(line), "missing {line:?} in:\n{out}");
        }
    }

    #[test]
    fn text_report_renders_all_kinds() {
        let reg = Registry::new();
        reg.counter("c_total", "C.").inc_by(3);
        reg.gauge_with("g", "G.", &[("x", "y")]).set(-4);
        reg.histogram("t_seconds", "T.", crate::DURATION_BUCKETS)
            .observe(0.002);
        let out = reg.render_text();
        assert!(out.contains("counter   c_total = 3"), "{out}");
        assert!(out.contains(r#"gauge     g{x="y"} = -4"#), "{out}");
        assert!(out.contains("histogram t_seconds count=1"), "{out}");
        assert!(out.contains("mean=2.00ms"), "{out}");
        reg.reset();
        assert!(reg.render_text().contains("(none recorded)"));
    }

    #[test]
    fn fmt_seconds_scales() {
        assert_eq!(fmt_seconds(0.0), "0s");
        assert_eq!(fmt_seconds(2.5e-7), "250ns");
        assert_eq!(fmt_seconds(1.5e-5), "15µs");
        assert_eq!(fmt_seconds(0.0035), "3.50ms");
        assert_eq!(fmt_seconds(2.0), "2.000s");
    }
}
