//! The flight recorder: hierarchical tracing over per-thread ring
//! buffers, per-document wide events with tail sampling, and two
//! exporters — Chrome trace-event JSON (loadable in Perfetto /
//! `chrome://tracing`) and a top-down text phase summary.
//!
//! Aggregated metrics ([`crate::metrics()`]) can say *that* validation
//! is slow; the recorder says *which document*, *which phase*, and
//! *which pool worker* made it slow. Every [`crate::span!`] site doubles
//! as a trace span when recording is on: span begin/end records (u64
//! span ids, parent ids, monotonic timestamps) land in a fixed-capacity
//! ring buffer owned by the recording thread, so the hot path never
//! contends on a global lock and an unbounded run can only ever hold
//! `threads × capacity` records — the oldest are overwritten, flight
//! recorder style.
//!
//! Causality across threads is explicit: [`TraceCtx::current`] captures
//! the open span on the submitting thread, travels with the job (it is
//! `Copy + Send`), and [`TraceCtx::attach`] re-parents the worker's
//! spans under it — `pool::ThreadPool` does exactly this, so a worker's
//! queue-wait and run spans link back to the batch span that submitted
//! them.
//!
//! # Quickstart
//!
//! ```
//! obs::trace::start(4096);
//! {
//!     let _phase = obs::span!("demo.phase");
//!     // ... traced work ...
//! }
//! obs::trace::stop();
//! let json = obs::trace::export_chrome_trace();
//! let stats = obs::trace::validate_chrome_trace(&json).unwrap();
//! assert_eq!(stats.begin_end_pairs, 1);
//! println!("{}", obs::trace::summary());
//! ```
//!
//! Recording costs one relaxed atomic load per probe site when off, and
//! one uncontended mutex lock plus a ring write when on; bench B13
//! (`crates/bench/benches/trace_overhead.rs`) measures both.

use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Whether trace recording is on — the single hot-path check, distinct
/// from the metrics/span-sink flag so tracing can run with or without
/// the aggregation layer.
static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Bumped by every [`start`]; thread-locals compare against it to know
/// their cached ring belongs to the current recorder.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// Span ids are process-unique and never reused (0 = "no span").
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// The installed recorder. Kept after [`stop`] so the flight can be
/// exported post-mortem; replaced wholesale by the next [`start`].
static RECORDER: RwLock<Option<Arc<Recorder>>> = RwLock::new(None);

/// Default number of slowest wide events kept by the tail sampler.
const DEFAULT_KEEP_SLOWEST: usize = 64;

/// Ceiling on kept errored/limit-tripped wide events, so a hostile
/// error flood cannot grow the sampler without bound.
const MAX_FLAGGED: usize = 1024;

/// What a ring slot records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecKind {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A complete interval recorded after the fact (e.g. queue wait).
    Complete,
}

/// One fixed-size trace record. Records are written whole under the
/// ring's mutex, so a reader can never observe a torn record.
#[derive(Debug, Clone, Copy)]
struct Rec {
    kind: RecKind,
    name: &'static str,
    /// The span this record belongs to.
    span: u64,
    /// The parent span at the time of recording (0 = root).
    parent: u64,
    /// Nanoseconds since the recorder's epoch.
    ts: u64,
    /// Interval length in nanoseconds ([`RecKind::Complete`] only).
    dur: u64,
}

/// A fixed-capacity ring of trace records: when full, the oldest record
/// is dropped (and counted) to admit the newest.
struct Ring {
    buf: VecDeque<Rec>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    fn push(&mut self, rec: Rec) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }
}

/// One recording thread's identity and ring, registered lazily on the
/// thread's first record.
struct ThreadBuf {
    tid: u64,
    name: String,
    ring: Arc<Mutex<Ring>>,
}

/// The flight recorder shared state.
struct Recorder {
    epoch: Instant,
    capacity: usize,
    generation: u64,
    next_tid: AtomicU64,
    threads: Mutex<Vec<ThreadBuf>>,
    wide: Mutex<WideSampler>,
}

struct Local {
    generation: u64,
    epoch: Instant,
    ring: Option<Arc<Mutex<Ring>>>,
    /// The innermost open span on this thread (0 = none).
    parent: u64,
}

thread_local! {
    static LOCAL: std::cell::RefCell<Local> = std::cell::RefCell::new(Local {
        generation: 0,
        epoch: Instant::now(),
        ring: None,
        parent: 0,
    });
}

/// Whether trace recording is on. This is the only cost probe sites pay
/// when it is off: one relaxed atomic load and a branch.
#[inline]
pub fn enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Starts a fresh flight: installs a new recorder whose per-thread ring
/// buffers hold `capacity_per_thread` records each, with the default
/// wide-event tail sampler (always keep errored/limit-tripped documents,
/// plus the 64 slowest), and enables recording. Any previous flight's
/// data is discarded.
pub fn start(capacity_per_thread: usize) {
    start_with_sampling(capacity_per_thread, DEFAULT_KEEP_SLOWEST);
}

/// [`start`] with an explicit tail-sampler width: `keep_slowest` is how
/// many of the slowest non-errored wide events are retained (errored and
/// limit-tripped documents are always kept, up to an internal flood cap).
pub fn start_with_sampling(capacity_per_thread: usize, keep_slowest: usize) {
    let generation = GENERATION.fetch_add(1, Ordering::Relaxed) + 1;
    let recorder = Arc::new(Recorder {
        epoch: Instant::now(),
        capacity: capacity_per_thread.max(2),
        generation,
        next_tid: AtomicU64::new(1),
        threads: Mutex::new(Vec::new()),
        wide: Mutex::new(WideSampler::new(keep_slowest, MAX_FLAGGED)),
    });
    *RECORDER.write().expect("trace recorder lock") = Some(recorder);
    TRACE_ENABLED.store(true, Ordering::Relaxed);
}

/// Stops recording. The flight's data stays available to the exporters
/// ([`export_chrome_trace`], [`summary`], [`wide_events`]) until the
/// next [`start`].
pub fn stop() {
    TRACE_ENABLED.store(false, Ordering::Relaxed);
}

/// Runs `f` with this thread's registered ring state, registering with
/// the current recorder first if needed. Returns `None` when no
/// recorder is installed.
fn with_local<T>(f: impl FnOnce(&mut Local) -> T) -> Option<T> {
    LOCAL.with(|cell| {
        let mut local = cell.borrow_mut();
        let generation = GENERATION.load(Ordering::Relaxed);
        if local.generation != generation || local.ring.is_none() {
            let recorder = RECORDER.read().expect("trace recorder lock").clone()?;
            let tid = recorder.next_tid.fetch_add(1, Ordering::Relaxed);
            let ring = Arc::new(Mutex::new(Ring::new(recorder.capacity)));
            recorder
                .threads
                .lock()
                .expect("trace threads lock")
                .push(ThreadBuf {
                    tid,
                    name: std::thread::current()
                        .name()
                        .unwrap_or("unnamed")
                        .to_string(),
                    ring: ring.clone(),
                });
            local.generation = recorder.generation;
            local.epoch = recorder.epoch;
            local.ring = Some(ring);
            local.parent = 0;
        }
        Some(f(&mut local))
    })
}

fn ns_since(epoch: Instant, at: Instant) -> u64 {
    at.saturating_duration_since(epoch).as_nanos() as u64
}

impl Local {
    fn push(&mut self, rec: Rec) {
        if let Some(ring) = &self.ring {
            ring.lock().expect("trace ring lock").push(rec);
        }
    }
}

/// The recorder-side half of an open span, held by
/// [`crate::SpanGuard`]: what it needs to close the span and restore the
/// thread's parent pointer.
#[derive(Debug)]
pub(crate) struct SpanHandle {
    span: u64,
    prev: u64,
}

/// Records a span begin at `at` and makes the new span the thread's
/// current parent. Returns `None` when recording is off.
pub(crate) fn begin_span(name: &'static str, at: Instant) -> Option<SpanHandle> {
    if !enabled() {
        return None;
    }
    with_local(|local| {
        let span = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let prev = local.parent;
        local.parent = span;
        let ts = ns_since(local.epoch, at);
        local.push(Rec {
            kind: RecKind::Begin,
            name,
            span,
            parent: prev,
            ts,
            dur: 0,
        });
        SpanHandle { span, prev }
    })
}

/// Records the span end at `at` and restores the thread's previous
/// parent. The restore happens even if recording stopped mid-span, so
/// the parent chain cannot wedge.
pub(crate) fn end_span(name: &'static str, handle: SpanHandle, at: Instant) {
    LOCAL.with(|cell| {
        let mut local = cell.borrow_mut();
        local.parent = handle.prev;
        if enabled() && local.generation == GENERATION.load(Ordering::Relaxed) {
            let ts = ns_since(local.epoch, at);
            local.push(Rec {
                kind: RecKind::End,
                name,
                span: handle.span,
                parent: handle.prev,
                ts,
                dur: 0,
            });
        }
    });
}

/// Records a completed interval from `start` to now, parented to the
/// thread's current span — how the pool records a job's queue wait,
/// whose begin happened on another thread's clock but the same process
/// monotonic timeline.
pub fn complete_from(name: &'static str, start: Instant) {
    if !enabled() {
        return;
    }
    let end = Instant::now();
    with_local(|local| {
        let span = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let ts0 = ns_since(local.epoch, start);
        let ts1 = ns_since(local.epoch, end);
        local.push(Rec {
            kind: RecKind::Complete,
            name,
            span,
            parent: local.parent,
            ts: ts0,
            dur: ts1.saturating_sub(ts0),
        });
    });
}

/// Total records evicted from ring buffers by wraparound, across all
/// recording threads of the current flight.
pub fn dropped_records() -> u64 {
    let Some(recorder) = RECORDER.read().expect("trace recorder lock").clone() else {
        return 0;
    };
    let threads = recorder.threads.lock().expect("trace threads lock");
    threads
        .iter()
        .map(|t| t.ring.lock().expect("trace ring lock").dropped)
        .sum()
}

/// A captured trace context: the identity of the span that was current
/// on some thread, ready to travel to another thread and re-parent its
/// spans. `Copy + Send`, and inert (all zeros) when captured with
/// recording off.
#[derive(Debug, Clone, Copy)]
pub struct TraceCtx {
    parent: u64,
}

impl TraceCtx {
    /// The current thread's innermost open span, as a portable context.
    pub fn current() -> TraceCtx {
        if !enabled() {
            return TraceCtx { parent: 0 };
        }
        let parent = LOCAL.with(|c| {
            let local = c.borrow();
            // a parent left over from an earlier flight is not ours
            if local.generation == GENERATION.load(Ordering::Relaxed) {
                local.parent
            } else {
                0
            }
        });
        TraceCtx { parent }
    }

    /// Makes this context the current parent on *this* thread until the
    /// returned guard drops — every span opened in between is a child of
    /// the captured span, whatever thread it runs on.
    pub fn attach(&self) -> CtxGuard {
        if !enabled() || self.parent == 0 {
            return CtxGuard { prev: None };
        }
        // register with the recorder first: lazy registration resets the
        // thread's parent, so attaching before it would be overwritten
        let prev = with_local(|local| {
            let prev = local.parent;
            local.parent = self.parent;
            prev
        });
        CtxGuard { prev }
    }
}

/// Restores the thread's previous parent span when dropped; returned by
/// [`TraceCtx::attach`].
#[must_use = "the context is only attached while the guard lives"]
pub struct CtxGuard {
    prev: Option<u64>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev {
            LOCAL.with(|c| c.borrow_mut().parent = prev);
        }
    }
}

// ---------------------------------------------------------------------
// Wide events
// ---------------------------------------------------------------------

/// How a document's validation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// No violations.
    Valid,
    /// Schema violations, but well-formed and within budget.
    Invalid,
    /// Rejected as not well-formed.
    Malformed,
    /// A resource budget tripped before the document finished.
    ResourceTripped,
}

impl Outcome {
    /// Stable lowercase label (`valid` / `invalid` / `malformed` /
    /// `resource`).
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Valid => "valid",
            Outcome::Invalid => "invalid",
            Outcome::Malformed => "malformed",
            Outcome::ResourceTripped => "resource",
        }
    }
}

/// One per-document wide event: everything the pipeline knew about a
/// document's trip through parse + validate, in a single record —
/// the unit the tail sampler keeps or drops.
#[derive(Debug, Clone)]
pub struct WideEvent {
    /// Which pipeline entry point produced it (`stream`,
    /// `stream.chunks`, `stream.read`).
    pub entry: &'static str,
    /// Source bytes consumed.
    pub bytes: u64,
    /// Parser events produced.
    pub events: u64,
    /// Deepest element nesting.
    pub max_depth: u64,
    /// Events whose strings were all zero-copy slices of the source.
    pub borrowed_events: u64,
    /// Events that needed an owned copy (entity expansion, attribute or
    /// EOL normalization).
    pub owned_events: u64,
    /// Validation errors reported (resource markers included).
    pub error_count: u64,
    /// Resource-budget trips among those errors.
    pub limit_trips: u64,
    /// How the document's validation ended.
    pub outcome: Outcome,
    /// Per-phase wall time, in pipeline order.
    pub phases: Vec<(&'static str, Duration)>,
    /// End-to-end wall time.
    pub total: Duration,
    /// Free-form context attributes beyond the fixed pipeline counters —
    /// an HTTP front end records `method`/`path`/`status`/`tenant` here,
    /// so one record still tells the whole story of a request. Empty for
    /// the library entry points.
    pub attrs: Vec<(&'static str, String)>,
}

impl fmt::Display for WideEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wide event: entry={} outcome={} bytes={} events={} max_depth={} \
             borrowed={} owned={} errors={} limit_trips={} total={}",
            self.entry,
            self.outcome.label(),
            self.bytes,
            self.events,
            self.max_depth,
            self.borrowed_events,
            self.owned_events,
            self.error_count,
            self.limit_trips,
            crate::metrics::fmt_seconds(self.total.as_secs_f64()),
        )?;
        for (name, d) in &self.phases {
            write!(
                f,
                " {}={}",
                name,
                crate::metrics::fmt_seconds(d.as_secs_f64())
            )?;
        }
        for (name, value) in &self.attrs {
            write!(f, " {name}={value}")?;
        }
        Ok(())
    }
}

/// Tail-sampling totals for the current flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideStats {
    /// Wide events offered to the sampler.
    pub seen: u64,
    /// Currently retained (flagged + slowest).
    pub kept: u64,
    /// Discarded by sampling (healthy and not among the slowest, or
    /// flagged beyond the flood cap).
    pub dropped: u64,
}

/// The tail sampler: always keeps errored / limit-tripped / non-valid
/// documents (up to a flood cap), plus the N slowest healthy ones.
struct WideSampler {
    keep_slowest: usize,
    max_flagged: usize,
    slowest: Vec<WideEvent>,
    flagged: Vec<WideEvent>,
    seen: u64,
    dropped: u64,
}

impl WideSampler {
    fn new(keep_slowest: usize, max_flagged: usize) -> WideSampler {
        WideSampler {
            keep_slowest,
            max_flagged,
            slowest: Vec::new(),
            flagged: Vec::new(),
            seen: 0,
            dropped: 0,
        }
    }

    fn offer(&mut self, we: WideEvent) {
        self.seen += 1;
        let flagged =
            we.error_count > 0 || we.limit_trips > 0 || !matches!(we.outcome, Outcome::Valid);
        if flagged {
            if self.flagged.len() < self.max_flagged {
                self.flagged.push(we);
            } else {
                self.dropped += 1;
            }
            return;
        }
        if self.slowest.len() < self.keep_slowest {
            self.slowest.push(we);
            return;
        }
        // full: replace the fastest kept event if this one is slower
        match self
            .slowest
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.total)
            .map(|(i, e)| (i, e.total))
        {
            Some((i, fastest)) if we.total > fastest => {
                self.slowest[i] = we;
                self.dropped += 1; // the evicted one
            }
            _ => self.dropped += 1,
        }
    }
}

/// Offers a per-document wide event to the tail sampler. A no-op when
/// recording is off.
pub fn record_wide_event(we: WideEvent) {
    if !enabled() {
        return;
    }
    let Some(recorder) = RECORDER.read().expect("trace recorder lock").clone() else {
        return;
    };
    recorder.wide.lock().expect("wide sampler lock").offer(we);
}

/// The retained wide events: flagged documents first (arrival order),
/// then the kept slowest, slowest first.
pub fn wide_events() -> Vec<WideEvent> {
    let Some(recorder) = RECORDER.read().expect("trace recorder lock").clone() else {
        return Vec::new();
    };
    let sampler = recorder.wide.lock().expect("wide sampler lock");
    let mut out = sampler.flagged.clone();
    let mut slow = sampler.slowest.clone();
    slow.sort_by_key(|we| std::cmp::Reverse(we.total));
    out.extend(slow);
    out
}

/// Tail-sampling totals for the current flight.
pub fn wide_stats() -> WideStats {
    let Some(recorder) = RECORDER.read().expect("trace recorder lock").clone() else {
        return WideStats {
            seen: 0,
            kept: 0,
            dropped: 0,
        };
    };
    let sampler = recorder.wide.lock().expect("wide sampler lock");
    WideStats {
        seen: sampler.seen,
        kept: (sampler.flagged.len() + sampler.slowest.len()) as u64,
        dropped: sampler.dropped,
    }
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

/// A point-in-time copy of every thread's records.
fn snapshot() -> Vec<(u64, String, Vec<Rec>, u64)> {
    let Some(recorder) = RECORDER.read().expect("trace recorder lock").clone() else {
        return Vec::new();
    };
    let threads = recorder.threads.lock().expect("trace threads lock");
    threads
        .iter()
        .map(|t| {
            let ring = t.ring.lock().expect("trace ring lock");
            (
                t.tid,
                t.name.clone(),
                ring.buf.iter().copied().collect(),
                ring.dropped,
            )
        })
        .collect()
}

/// The span ids of this thread's records whose Begin *and* End both
/// survived the ring — the set whose emission is guaranteed strictly
/// nested (per-thread spans close LIFO, and eviction only ever removes
/// a prefix of the timeline).
fn matched_spans(recs: &[Rec]) -> std::collections::HashSet<u64> {
    let mut stack: Vec<u64> = Vec::new();
    let mut matched = std::collections::HashSet::new();
    for rec in recs {
        match rec.kind {
            RecKind::Begin => stack.push(rec.span),
            RecKind::End => {
                // only the top can match: spans are LIFO per thread, so a
                // mismatch means this End's Begin was evicted — skip it
                if stack.last() == Some(&rec.span) {
                    stack.pop();
                    matched.insert(rec.span);
                }
            }
            RecKind::Complete => {
                matched.insert(rec.span);
            }
        }
    }
    // spans still open at export (Begin without End) are not emitted
    matched
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with sub-µs precision, the trace-event `ts`/`dur` unit.
fn micros(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

/// Exports the current flight as Chrome trace-event JSON — an object
/// with a `traceEvents` array of `B`/`E` span pairs, `X` complete
/// intervals, and `M` thread-name metadata, loadable in Perfetto or
/// `chrome://tracing`. Only spans whose begin *and* end survived ring
/// wraparound are emitted, so every thread's `B`/`E` stream is strictly
/// nested; each `B`/`X` event carries its span and parent ids in
/// `args`.
pub fn export_chrome_trace() -> String {
    let threads = snapshot();
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, ev: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&ev);
    };
    for (tid, name, recs, _dropped) in &threads {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(name)
            ),
        );
        let matched = matched_spans(recs);
        for rec in recs {
            if !matched.contains(&rec.span) {
                continue;
            }
            let ev = match rec.kind {
                RecKind::Begin => format!(
                    "{{\"ph\":\"B\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"name\":\"{}\",\
                     \"args\":{{\"span\":{},\"parent\":{}}}}}",
                    micros(rec.ts),
                    json_escape(rec.name),
                    rec.span,
                    rec.parent
                ),
                RecKind::End => format!(
                    "{{\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"name\":\"{}\"}}",
                    micros(rec.ts),
                    json_escape(rec.name)
                ),
                RecKind::Complete => format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{},\
                     \"name\":\"{}\",\"args\":{{\"span\":{},\"parent\":{}}}}}",
                    micros(rec.ts),
                    micros(rec.dur),
                    json_escape(rec.name),
                    rec.span,
                    rec.parent
                ),
            };
            push(&mut out, &mut first, ev);
        }
    }
    out.push_str("]}");
    out
}

/// A top-down text summary of the flight: span aggregates grouped by
/// name path (parent/child nesting as recorded), merged across threads,
/// followed by quantile estimates derived from the duration histograms
/// in the global metrics registry.
pub fn summary() -> String {
    use std::collections::BTreeMap;
    // path -> (count, total ns)
    let mut agg: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    let threads = snapshot();
    let mut dropped_total = 0u64;
    for (_tid, _name, recs, dropped) in &threads {
        dropped_total += dropped;
        let matched = matched_spans(recs);
        // replay: stack of (span, name, begin ts) for nesting paths
        let mut stack: Vec<(u64, &'static str, u64)> = Vec::new();
        let path_of = |stack: &[(u64, &'static str, u64)], name: &str| {
            let mut p = String::new();
            for (_, n, _) in stack {
                p.push_str(n);
                p.push('/');
            }
            p.push_str(name);
            p
        };
        for rec in recs {
            if !matched.contains(&rec.span) {
                continue;
            }
            match rec.kind {
                RecKind::Begin => stack.push((rec.span, rec.name, rec.ts)),
                RecKind::End => {
                    if let Some((span, name, begin)) = stack.pop() {
                        debug_assert_eq!(span, rec.span);
                        let path = path_of(&stack, name);
                        let slot = agg.entry(path).or_insert((0, 0));
                        slot.0 += 1;
                        slot.1 += rec.ts.saturating_sub(begin);
                    }
                }
                RecKind::Complete => {
                    let path = path_of(&stack, rec.name);
                    let slot = agg.entry(path).or_insert((0, 0));
                    slot.0 += 1;
                    slot.1 += rec.dur;
                }
            }
        }
    }
    let mut out = String::from("== trace phases (top-down) ==\n");
    if agg.is_empty() {
        out.push_str("(no complete spans recorded)\n");
    }
    for (path, (count, total_ns)) in &agg {
        let depth = path.matches('/').count();
        let leaf = path.rsplit('/').next().unwrap_or(path);
        let total = *total_ns as f64 / 1e9;
        let mean = total / *count as f64;
        let _ = writeln!(
            out,
            "{:indent$}{leaf:24} count={count:<7} total={:<10} mean={}",
            "",
            crate::metrics::fmt_seconds(total),
            crate::metrics::fmt_seconds(mean),
            indent = depth * 2,
        );
    }
    if dropped_total > 0 {
        let _ = writeln!(out, "({dropped_total} records lost to ring wraparound)");
    }
    let stats = wide_stats();
    if stats.seen > 0 {
        let _ = writeln!(
            out,
            "wide events: seen={} kept={} sampled_out={}",
            stats.seen, stats.kept, stats.dropped
        );
    }
    out.push_str(&crate::metrics().render_quantiles());
    out
}

// ---------------------------------------------------------------------
// Chrome trace validation (the golden-check half of the exporter)
// ---------------------------------------------------------------------

/// One event parsed back out of exported Chrome trace JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Phase: `B`, `E`, `X`, or `M`.
    pub ph: char,
    /// Process id.
    pub pid: u64,
    /// Thread id.
    pub tid: u64,
    /// Event name.
    pub name: String,
    /// Timestamp in microseconds (0 for metadata).
    pub ts: f64,
    /// Duration in microseconds (`X` only).
    pub dur: f64,
    /// Span id from `args` (0 when absent).
    pub span: u64,
    /// Parent span id from `args` (0 when absent/root).
    pub parent: u64,
}

/// What [`validate_chrome_trace`] measured about a well-formed export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeStats {
    /// Total events, metadata included.
    pub events: usize,
    /// Matched `B`/`E` pairs.
    pub begin_end_pairs: usize,
    /// `X` complete events.
    pub completes: usize,
    /// Distinct `(pid, tid)` rows.
    pub threads: usize,
    /// Events whose `parent` id names no span in the export (expected 0
    /// unless wraparound evicted ancestors).
    pub orphan_parents: usize,
}

/// Minimal JSON value for trace validation — std-only, just enough for
/// the format [`export_chrome_trace`] emits (and any other spec-valid
/// trace JSON).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(src: &'a str) -> JsonParser<'a> {
        JsonParser {
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> String {
        format!("JSON error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word}")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| self.error(&format!("bad number {text:?}: {e}")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            // surrogate pairs don't appear in our output;
                            // map unpaired surrogates to the replacement char
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 character
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing data"));
        }
        Ok(v)
    }
}

/// Parses Chrome trace-event JSON back into its event list. Accepts the
/// object form (`{"traceEvents": [...]}`) this crate exports.
pub fn parse_chrome_trace(json: &str) -> Result<Vec<ChromeEvent>, String> {
    let root = JsonParser::new(json).parse()?;
    let events = root.get("traceEvents").ok_or("missing traceEvents field")?;
    let Json::Arr(items) = events else {
        return Err("traceEvents is not an array".to_string());
    };
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let field_u64 = |key: &str| {
            item.get(key)
                .and_then(Json::as_f64)
                .map(|n| n as u64)
                .unwrap_or(0)
        };
        let ph = item
            .get("ph")
            .and_then(Json::as_str)
            .and_then(|s| s.chars().next())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let name = item
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?
            .to_string();
        if item.get("pid").and_then(Json::as_f64).is_none() {
            return Err(format!("event {i}: missing pid"));
        }
        if item.get("tid").and_then(Json::as_f64).is_none() {
            return Err(format!("event {i}: missing tid"));
        }
        let ts = match item.get("ts").and_then(Json::as_f64) {
            Some(ts) => ts,
            None if ph == 'M' => 0.0,
            None => return Err(format!("event {i}: missing ts")),
        };
        let dur = item.get("dur").and_then(Json::as_f64).unwrap_or(0.0);
        if ph == 'X' && item.get("dur").is_none() {
            return Err(format!("event {i}: X event missing dur"));
        }
        let args = item.get("args");
        let arg_u64 = |key: &str| {
            args.and_then(|a| a.get(key))
                .and_then(Json::as_f64)
                .map(|n| n as u64)
                .unwrap_or(0)
        };
        out.push(ChromeEvent {
            ph,
            pid: field_u64("pid"),
            tid: field_u64("tid"),
            name,
            ts,
            dur,
            span: arg_u64("span"),
            parent: arg_u64("parent"),
        });
    }
    Ok(out)
}

/// Validates an exported Chrome trace: well-formed JSON, the required
/// `ph`/`ts`/`pid`/`tid` fields on every event, and strictly nested
/// begin/end pairs per `(pid, tid)` row (every `E` closes the most
/// recent open `B` of the same name; nothing is left open). Returns
/// structural statistics on success.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeStats, String> {
    let events = parse_chrome_trace(json)?;
    let mut stacks: std::collections::HashMap<(u64, u64), Vec<String>> =
        std::collections::HashMap::new();
    let mut spans: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut threads: std::collections::HashSet<(u64, u64)> = std::collections::HashSet::new();
    let mut pairs = 0;
    let mut completes = 0;
    for (i, ev) in events.iter().enumerate() {
        threads.insert((ev.pid, ev.tid));
        if ev.span != 0 {
            spans.insert(ev.span);
        }
        match ev.ph {
            'B' => stacks
                .entry((ev.pid, ev.tid))
                .or_default()
                .push(ev.name.clone()),
            'E' => {
                let stack = stacks.entry((ev.pid, ev.tid)).or_default();
                match stack.pop() {
                    Some(open) if open == ev.name => pairs += 1,
                    Some(open) => {
                        return Err(format!(
                            "event {i}: E {:?} does not close the open span {:?} \
                             on tid {} — begin/end not strictly nested",
                            ev.name, open, ev.tid
                        ));
                    }
                    None => {
                        return Err(format!(
                            "event {i}: E {:?} on tid {} with no open span",
                            ev.name, ev.tid
                        ));
                    }
                }
            }
            'X' => completes += 1,
            'M' => {}
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }
    for ((_pid, tid), stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid}: {} span(s) left open at end of trace: {:?}",
                stack.len(),
                stack
            ));
        }
    }
    let orphan_parents = events
        .iter()
        .filter(|e| e.parent != 0 && !spans.contains(&e.parent))
        .count();
    Ok(ChromeStats {
        events: events.len(),
        begin_end_pairs: pairs,
        completes,
        threads: threads.len(),
        orphan_parents,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global; tests that flip it serialize with
    // every other global-flipping obs test.
    use crate::GLOBAL_TEST_LOCK as TRACE_LOCK;

    fn wide(entry: &'static str, outcome: Outcome, errors: u64, total_us: u64) -> WideEvent {
        WideEvent {
            entry,
            bytes: 100,
            events: 10,
            max_depth: 3,
            borrowed_events: 10,
            owned_events: 0,
            error_count: errors,
            limit_trips: 0,
            outcome,
            phases: vec![(entry, Duration::from_micros(total_us))],
            total: Duration::from_micros(total_us),
            attrs: Vec::new(),
        }
    }

    #[test]
    fn disabled_recording_is_inert() {
        let _guard = TRACE_LOCK.lock().unwrap();
        stop();
        assert!(!enabled());
        assert!(begin_span("t", Instant::now()).is_none());
        complete_from("t", Instant::now());
        record_wide_event(wide("t", Outcome::Valid, 0, 1));
        let ctx = TraceCtx::current();
        assert_eq!(ctx.parent, 0);
        drop(ctx.attach());
    }

    #[test]
    fn spans_nest_and_export_strictly() {
        let _guard = TRACE_LOCK.lock().unwrap();
        start(1024);
        let now = Instant::now();
        let outer = begin_span("outer", now).unwrap();
        let inner = begin_span("inner", Instant::now()).unwrap();
        complete_from("interval", now);
        end_span("inner", inner, Instant::now());
        end_span("outer", outer, Instant::now());
        stop();
        let json = export_chrome_trace();
        let stats = validate_chrome_trace(&json).unwrap();
        assert_eq!(stats.begin_end_pairs, 2, "{json}");
        assert_eq!(stats.completes, 1);
        assert_eq!(stats.orphan_parents, 0, "{json}");
        let events = parse_chrome_trace(&json).unwrap();
        let inner_b = events
            .iter()
            .find(|e| e.ph == 'B' && e.name == "inner")
            .unwrap();
        let outer_b = events
            .iter()
            .find(|e| e.ph == 'B' && e.name == "outer")
            .unwrap();
        assert_eq!(inner_b.parent, outer_b.span, "inner parents to outer");
        assert_eq!(outer_b.parent, 0, "outer is a root span");
        let summary = summary();
        assert!(summary.contains("outer"), "{summary}");
        assert!(summary.contains("inner"), "{summary}");
    }

    #[test]
    fn ring_wraparound_drops_oldest_never_torn() {
        let _guard = TRACE_LOCK.lock().unwrap();
        start(8);
        for i in 0..100u32 {
            let name = if i % 2 == 0 { "even" } else { "odd" };
            let h = begin_span(name, Instant::now()).unwrap();
            end_span(name, h, Instant::now());
        }
        stop();
        assert!(dropped_records() > 0, "wraparound must have evicted");
        // everything that survived still validates: no torn records, no
        // unmatched pairs, strict nesting
        let stats = validate_chrome_trace(&export_chrome_trace()).unwrap();
        assert!(stats.begin_end_pairs > 0);
        assert!(stats.begin_end_pairs <= 4, "ring of 8 holds ≤4 pairs");
    }

    #[test]
    fn ctx_attach_reparents_across_threads() {
        let _guard = TRACE_LOCK.lock().unwrap();
        start(1024);
        let batch = begin_span("batch", Instant::now()).unwrap();
        let batch_id = batch.span;
        let ctx = TraceCtx::current();
        let handle = std::thread::spawn(move || {
            let _attach = ctx.attach();
            let h = begin_span("worker", Instant::now()).unwrap();
            end_span("worker", h, Instant::now());
        });
        handle.join().unwrap();
        end_span("batch", batch, Instant::now());
        stop();
        let events = parse_chrome_trace(&export_chrome_trace()).unwrap();
        let worker = events
            .iter()
            .find(|e| e.ph == 'B' && e.name == "worker")
            .unwrap();
        assert_eq!(worker.parent, batch_id);
        let batch_ev = events
            .iter()
            .find(|e| e.ph == 'B' && e.name == "batch")
            .unwrap();
        assert_ne!(worker.tid, batch_ev.tid, "worker ran on its own thread");
        assert_eq!(
            validate_chrome_trace(&export_chrome_trace())
                .unwrap()
                .orphan_parents,
            0
        );
    }

    #[test]
    fn wide_event_tail_sampling() {
        let _guard = TRACE_LOCK.lock().unwrap();
        start_with_sampling(64, 2);
        // 5 healthy events of increasing latency; keep_slowest = 2
        for us in [10, 50, 30, 90, 20] {
            record_wide_event(wide("stream", Outcome::Valid, 0, us));
        }
        // errored events are always kept
        record_wide_event(wide("stream", Outcome::Invalid, 3, 1));
        record_wide_event(wide("stream", Outcome::Malformed, 1, 2));
        stop();
        let kept = wide_events();
        let stats = wide_stats();
        assert_eq!(stats.seen, 7);
        assert_eq!(stats.kept, 4, "{kept:#?}");
        assert_eq!(stats.dropped, 3);
        // flagged first (arrival order), then slowest-first
        assert_eq!(kept[0].outcome, Outcome::Invalid);
        assert_eq!(kept[1].outcome, Outcome::Malformed);
        assert_eq!(kept[2].total, Duration::from_micros(90));
        assert_eq!(kept[3].total, Duration::from_micros(50));
        let line = kept[0].to_string();
        assert!(line.contains("wide event:"), "{line}");
        assert!(line.contains("outcome=invalid"), "{line}");
        assert!(line.contains("errors=3"), "{line}");
    }

    #[test]
    fn restart_discards_the_previous_flight() {
        let _guard = TRACE_LOCK.lock().unwrap();
        start(1024);
        let h = begin_span("old", Instant::now()).unwrap();
        end_span("old", h, Instant::now());
        start(1024);
        let h = begin_span("new", Instant::now()).unwrap();
        end_span("new", h, Instant::now());
        stop();
        let json = export_chrome_trace();
        assert!(!json.contains("\"old\""), "{json}");
        assert!(json.contains("\"new\""), "{json}");
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":3}").is_err());
        // E without B
        let bad = r#"{"traceEvents":[{"ph":"E","pid":1,"tid":1,"ts":1.0,"name":"x"}]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("no open span"));
        // interleaved, not nested
        let bad = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":1,"ts":1.0,"name":"a"},
            {"ph":"B","pid":1,"tid":1,"ts":2.0,"name":"b"},
            {"ph":"E","pid":1,"tid":1,"ts":3.0,"name":"a"},
            {"ph":"E","pid":1,"tid":1,"ts":4.0,"name":"b"}]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("not strictly nested"));
        // left open
        let bad = r#"{"traceEvents":[{"ph":"B","pid":1,"tid":1,"ts":1.0,"name":"a"}]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("left open"));
        // missing ts on a B event
        let bad = r#"{"traceEvents":[{"ph":"B","pid":1,"tid":1,"name":"a"}]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("missing ts"));
        // missing tid
        let bad = r#"{"traceEvents":[{"ph":"B","pid":1,"ts":1.0,"name":"a"}]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("missing tid"));
    }

    #[test]
    fn json_parser_handles_escapes_and_unicode() {
        let json = r#"{"traceEvents":[{"ph":"M","pid":1,"tid":1,
            "name":"thread_name","args":{"name":"wörk\"er\\1\n"}}]}"#;
        let events = parse_chrome_trace(json).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].ph, 'M');
        let stats = validate_chrome_trace(json).unwrap();
        assert_eq!(stats.events, 1);
    }
}
