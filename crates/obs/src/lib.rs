//! Pipeline observability: structured spans and a process-global metrics
//! registry, with a human-readable text report and a Prometheus
//! text-format exporter.
//!
//! The paper moves validity checking into the build pipeline
//! (preprocessor → V-DOM → generator, Fig. 9); this crate makes that
//! pipeline *visible* at runtime — per-phase wall time, event and byte
//! throughput, DFA sizes, cache hit rates, error populations — so the
//! perf work the ROADMAP asks for can target measured hot paths instead
//! of guesses.
//!
//! # Gating
//!
//! Everything is off by default. Until [`install`] (or
//! [`install_collector`]) is called, every instrumented call site in the
//! pipeline pays exactly **one relaxed atomic load** ([`enabled`]) and
//! branches past the recording code; `crates/bench/benches/obs_overhead.rs`
//! measures the residue. Installing a [`SpanSink`] turns on both span
//! recording and metric updates; [`shutdown`] turns both off again.
//!
//! # Quickstart
//!
//! ```
//! // 1. install a sink (turns instrumentation on)
//! let sink = obs::install_collector();
//!
//! // 2. run instrumented code — spans time a scope, metrics accumulate
//! {
//!     let _span = obs::span!("demo.phase", corpus = "po");
//!     obs::metrics()
//!         .counter("demo_documents_total", "Documents processed.")
//!         .inc();
//! }
//!
//! // 3. render: per-span timings, then both metric exporters
//! println!("{}", sink.report());
//! println!("{}", obs::metrics().render_text());
//! println!("{}", obs::metrics().render_prometheus());
//! # assert!(obs::metrics().render_prometheus().contains("demo_documents_total 1"));
//! obs::shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod span;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use span::{CollectingSink, SpanRecord, SpanSink};

/// Whether a sink is installed — the single hot-path check. Relaxed is
/// enough: instrumentation is advisory, not synchronization.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed span sink, if any.
static SINK: RwLock<Option<Arc<dyn SpanSink>>> = RwLock::new(None);

/// The process-global metrics registry.
static GLOBAL_METRICS: OnceLock<Registry> = OnceLock::new();

/// Histogram bounds (seconds) for pipeline phase latencies: 1 µs – 1 s,
/// roughly quarter-decade steps.
pub const DURATION_BUCKETS: &[f64] = &[
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
    5e-2, 0.1, 0.25, 0.5, 1.0,
];

/// Histogram bounds for small structural counts (element depth, DFA
/// sizes): powers of two up to 256.
pub const DEPTH_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// Whether instrumentation is on (a sink is installed).
///
/// This is the only cost instrumented call sites pay when observability
/// is off: one relaxed atomic load and a branch.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether [`span!`] sites should arm: true when either the metrics/sink
/// layer ([`enabled`]) or the flight recorder ([`trace::enabled`]) is on.
/// Two relaxed loads when everything is off.
#[inline]
pub fn span_enabled() -> bool {
    enabled() || trace::enabled()
}

/// Installs `sink` as the process-wide span sink and enables
/// instrumentation (spans *and* metrics). Replaces any previous sink.
pub fn install(sink: Arc<dyn SpanSink>) {
    *SINK.write().expect("span sink lock") = Some(sink);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Installs a fresh [`CollectingSink`] and returns a handle to it — the
/// one-line setup used by `xmlstat` and the tests.
pub fn install_collector() -> Arc<CollectingSink> {
    let sink = Arc::new(CollectingSink::new());
    install(sink.clone());
    sink
}

/// Disables instrumentation and drops the installed sink. Metrics
/// already accumulated in [`metrics()`] are kept (they are monotonic
/// process totals); use [`Registry::reset`] to clear them.
pub fn shutdown() {
    ENABLED.store(false, Ordering::Relaxed);
    *SINK.write().expect("span sink lock") = None;
}

/// The process-global metrics registry.
pub fn metrics() -> &'static Registry {
    GLOBAL_METRICS.get_or_init(Registry::new)
}

/// Delivers a finished span to the installed sink, if any.
fn record_span(record: SpanRecord) {
    if let Some(sink) = SINK.read().expect("span sink lock").as_ref() {
        sink.record(record);
    }
}

/// A live span: records its wall time to the installed sink — and a
/// begin/end pair to the flight recorder ([`trace`]) when one is flying —
/// when dropped. Construct via [`span!`](crate::span!); a guard created
/// while instrumentation is off is inert and free to drop.
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    fields: Vec<(&'static str, String)>,
    start: Instant,
    trace: Option<trace::SpanHandle>,
}

impl SpanGuard {
    /// An armed guard; the clock starts now (one read, shared with the
    /// trace begin record). Prefer [`span!`](crate::span!).
    pub fn enter(name: &'static str, fields: Vec<(&'static str, String)>) -> SpanGuard {
        let start = Instant::now();
        let trace = trace::begin_span(name, start);
        SpanGuard {
            active: Some(ActiveSpan {
                name,
                fields,
                start,
                trace,
            }),
        }
    }

    /// An inert guard (instrumentation off).
    pub fn noop() -> SpanGuard {
        SpanGuard { active: None }
    }

    /// Closes the span and returns its wall time — from **one** end-of-
    /// scope clock read shared by the trace end record, the sink record,
    /// and the returned duration, so a histogram fed from the return
    /// value can never disagree with the trace about a phase's length.
    /// Returns `None` for an inert guard.
    pub fn finish(mut self) -> Option<Duration> {
        self.active.take().map(Self::close)
    }

    fn close(active: ActiveSpan) -> Duration {
        let end = Instant::now();
        if let Some(handle) = active.trace {
            trace::end_span(active.name, handle, end);
        }
        let duration = end.saturating_duration_since(active.start);
        record_span(SpanRecord {
            name: active.name,
            fields: active.fields,
            duration,
        });
        duration
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            Self::close(active);
        }
    }
}

/// Opens a structured span over the enclosing scope.
///
/// ```
/// # let _sink = obs::install_collector();
/// let schema_name = "purchase-order";
/// let _span = obs::span!("validate.stream", schema = schema_name);
/// // ... timed work ...
/// # drop(_span);
/// # obs::shutdown();
/// ```
///
/// Field values are captured with `ToString` **only when instrumentation
/// is enabled** (sink or flight recorder); when everything is off the
/// whole expansion is two relaxed atomic loads.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::span_enabled() {
            $crate::SpanGuard::enter(
                $name,
                ::std::vec![$((stringify!($key), ::std::string::ToString::to_string(&$value))),*],
            )
        } else {
            $crate::SpanGuard::noop()
        }
    };
}

/// A gated stopwatch for feeding latency histograms: free when
/// instrumentation is off.
///
/// ```
/// let timer = obs::Timer::start();
/// // ... work ...
/// if let Some(elapsed) = timer.stop() {
///     obs::metrics()
///         .histogram("work_seconds", "Work latency.", obs::DURATION_BUCKETS)
///         .observe_duration(elapsed);
/// }
/// ```
#[must_use = "a timer that is never stopped measures nothing"]
pub struct Timer(Option<Instant>);

impl Timer {
    /// Starts timing — or does nothing at all when instrumentation is
    /// off.
    pub fn start() -> Timer {
        Timer(enabled().then(Instant::now))
    }

    /// The elapsed time, or `None` when the timer was started with
    /// instrumentation off.
    pub fn stop(self) -> Option<Duration> {
        self.0.map(|start| start.elapsed())
    }
}

/// Serializes every test that flips process-global observability state
/// (the sink flag or the flight recorder): a `span!` fired by one test
/// while another test is recording would pollute that test's rings.
#[cfg(test)]
pub(crate) static GLOBAL_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    use crate::GLOBAL_TEST_LOCK as INSTALL_LOCK;

    #[test]
    fn disabled_by_default_and_span_is_inert() {
        let _guard = INSTALL_LOCK.lock().unwrap();
        shutdown();
        assert!(!enabled());
        let span = span!("test.noop", ignored = "value");
        drop(span);
        assert!(Timer::start().stop().is_none());
    }

    #[test]
    fn install_enables_and_spans_reach_the_sink() {
        let _guard = INSTALL_LOCK.lock().unwrap();
        let sink = install_collector();
        assert!(enabled());
        {
            let _span = span!("test.phase", corpus = "po", n = 3);
        }
        let spans = sink.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "test.phase");
        assert_eq!(
            spans[0].fields,
            vec![("corpus", "po".to_string()), ("n", "3".to_string())]
        );
        assert!(Timer::start().stop().is_some());
        shutdown();
        assert!(!enabled());
        {
            let _span = span!("test.after-shutdown");
        }
        assert_eq!(sink.spans().len(), 1, "sink must not grow after shutdown");
    }
}
