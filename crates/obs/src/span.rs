//! Span records, the sink trait, and the default collecting sink.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Duration;

/// One finished span: a named, timed scope plus its structured fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span name, e.g. `"validate.stream"`.
    pub name: &'static str,
    /// Structured fields captured at span open, in declaration order.
    pub fields: Vec<(&'static str, String)>,
    /// Monotonic wall time between span open and close.
    pub duration: Duration,
}

/// Receives finished spans. Implementations must be thread-safe: spans
/// close on whatever thread ran the instrumented scope.
pub trait SpanSink: Send + Sync {
    /// Delivers one finished span.
    fn record(&self, span: SpanRecord);
}

/// The batteries-included sink: buffers every span in memory and renders
/// an aggregated per-name report.
#[derive(Debug, Default)]
pub struct CollectingSink {
    spans: Mutex<Vec<SpanRecord>>,
}

impl CollectingSink {
    /// An empty sink.
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// A copy of every span recorded so far, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("span buffer lock").clone()
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("span buffer lock").len()
    }

    /// Whether no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all buffered spans.
    pub fn clear(&self) {
        self.spans.lock().expect("span buffer lock").clear();
    }

    /// Total recorded duration of all spans named `name`.
    pub fn total(&self, name: &str) -> Duration {
        self.spans
            .lock()
            .expect("span buffer lock")
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.duration)
            .sum()
    }

    /// Number of spans named `name`.
    pub fn count(&self, name: &str) -> usize {
        self.spans
            .lock()
            .expect("span buffer lock")
            .iter()
            .filter(|s| s.name == name)
            .count()
    }

    /// A human-readable per-span-name summary: count, total, mean, max.
    pub fn report(&self) -> String {
        let spans = self.spans.lock().expect("span buffer lock");
        let mut by_name: BTreeMap<&'static str, (usize, Duration, Duration)> = BTreeMap::new();
        for span in spans.iter() {
            let entry = by_name
                .entry(span.name)
                .or_insert((0, Duration::ZERO, Duration::ZERO));
            entry.0 += 1;
            entry.1 += span.duration;
            entry.2 = entry.2.max(span.duration);
        }
        let mut out = String::from("== spans ==\n");
        if by_name.is_empty() {
            out.push_str("(none recorded)\n");
            return out;
        }
        let width = by_name.keys().map(|n| n.len()).max().unwrap_or(0);
        for (name, (count, total, max)) in by_name {
            let mean = total / count as u32;
            let _ = writeln!(
                out,
                "{name:width$}  count={count:<6} total={:<10} mean={:<10} max={}",
                crate::metrics::fmt_seconds(total.as_secs_f64()),
                crate::metrics::fmt_seconds(mean.as_secs_f64()),
                crate::metrics::fmt_seconds(max.as_secs_f64()),
            );
        }
        out
    }
}

impl SpanSink for CollectingSink {
    fn record(&self, span: SpanRecord) {
        self.spans.lock().expect("span buffer lock").push(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &'static str, micros: u64) -> SpanRecord {
        SpanRecord {
            name,
            fields: Vec::new(),
            duration: Duration::from_micros(micros),
        }
    }

    #[test]
    fn collects_and_aggregates() {
        let sink = CollectingSink::new();
        assert!(sink.is_empty());
        sink.record(record("parse", 100));
        sink.record(record("parse", 300));
        sink.record(record("validate", 50));
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.count("parse"), 2);
        assert_eq!(sink.total("parse"), Duration::from_micros(400));
        let report = sink.report();
        assert!(report.contains("parse"), "{report}");
        assert!(report.contains("count=2"), "{report}");
        assert!(report.contains("mean=200µs"), "{report}");
        sink.clear();
        assert!(sink.is_empty());
        assert!(sink.report().contains("(none recorded)"));
    }

    #[test]
    fn sink_is_shareable_across_threads() {
        let sink = std::sync::Arc::new(CollectingSink::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let sink = sink.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        sink.record(record("t", 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sink.count("t"), 400);
    }
}
