//! A process-wide registry of compiled schemas, shared by server pages:
//! schemas compile once and every page handler clones a cheap handle
//! (`CompiledSchema` is `Arc`-backed).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use limits::{Limits, ResourceErrorKind};
use parking_lot::RwLock;
use pool::ThreadPool;
use pxml::{Bindings, CompiledTemplate, InstantiateError, Template, TypeEnv, VarType};
use schema::{CompiledSchema, SchemaError};
use validator::{ValidationError, ValidationErrorKind};

/// Why [`SchemaRegistry::try_register`] refused a registration.
#[derive(Debug)]
pub enum RegisterError {
    /// A schema is already registered under this name; the existing
    /// registration is untouched.
    Duplicate(String),
    /// The schema text failed to compile.
    Schema(SchemaError),
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterError::Duplicate(name) => {
                write!(f, "a schema is already registered under {name:?}")
            }
            RegisterError::Schema(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegisterError {}

impl From<SchemaError> for RegisterError {
    fn from(e: SchemaError) -> Self {
        RegisterError::Schema(e)
    }
}

/// Why [`SchemaRegistry::compile_template`] refused a template.
#[derive(Debug)]
pub enum TemplateError {
    /// No schema is registered under the name.
    UnknownSchema(String),
    /// The template failed to parse or to check against the schema.
    Check(Vec<pxml::PxmlError>),
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::UnknownSchema(name) => {
                write!(f, "no schema registered under {name:?}")
            }
            TemplateError::Check(errors) => {
                write!(f, "template rejected with {} error(s)", errors.len())?;
                if let Some(first) = errors.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for TemplateError {}

/// Why [`SchemaRegistry::render_page`] failed: compilation or the
/// value-level runtime residue.
#[derive(Debug)]
pub enum PageError {
    /// The template did not compile (unknown schema, parse, or check).
    Template(TemplateError),
    /// The compiled template rejected the bindings at render time.
    Render(InstantiateError),
}

impl fmt::Display for PageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageError::Template(e) => write!(f, "{e}"),
            PageError::Render(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PageError {}

impl From<TemplateError> for PageError {
    fn from(e: TemplateError) -> Self {
        PageError::Template(e)
    }
}

impl From<InstantiateError> for PageError {
    fn from(e: InstantiateError) -> Self {
        PageError::Render(e)
    }
}

/// Cache key for compiled templates: schema name, template source, and
/// a canonical rendering of the type environment (BTreeMap order).
fn env_signature(env: &TypeEnv) -> String {
    let mut sig = String::new();
    for (name, ty) in env.iter() {
        sig.push_str(name);
        match ty {
            VarType::Text => sig.push_str(":text;"),
            VarType::Element(tag) => {
                sig.push(':');
                sig.push_str(tag);
                sig.push(';');
            }
        }
    }
    sig
}

/// A named registry of compiled schemas.
#[derive(Default)]
pub struct SchemaRegistry {
    schemas: RwLock<HashMap<String, CompiledSchema>>,
    templates: RwLock<HashMap<(String, String, String), Arc<CompiledTemplate>>>,
}

impl SchemaRegistry {
    /// Creates an empty registry.
    pub fn new() -> SchemaRegistry {
        SchemaRegistry::default()
    }

    /// A registry preloaded with the paper's corpus schemas
    /// (`purchase-order`, `wml`).
    pub fn with_corpus() -> Result<SchemaRegistry, SchemaError> {
        let reg = SchemaRegistry::new();
        reg.register("purchase-order", schema::corpus::PURCHASE_ORDER_XSD)?;
        reg.register("wml", schema::corpus::WML_XSD)?;
        reg.register("xhtml", schema::corpus::XHTML_XSD)?;
        Ok(reg)
    }

    /// Compiles and registers a schema under `name`, **replacing** any
    /// existing registration. The replaced schema is returned (`None`
    /// for a first registration), so an overwrite is always visible to
    /// the caller — it can be logged, diffed, or treated as a rollout.
    /// Use [`try_register`](Self::try_register) when a duplicate name
    /// should be an error instead.
    pub fn register(&self, name: &str, xsd: &str) -> Result<Option<CompiledSchema>, SchemaError> {
        let compiled = CompiledSchema::parse(xsd)?;
        let previous = self.schemas.write().insert(name.to_string(), compiled);
        if previous.is_some() {
            // compiled templates were planned against the replaced
            // schema — drop them so the next render recompiles
            self.templates.write().retain(|key, _| key.0 != name);
        }
        if obs::enabled() {
            obs::metrics()
                .counter_with(
                    "registry_register_total",
                    "Schema registrations, by outcome.",
                    &[(
                        "outcome",
                        if previous.is_some() { "replace" } else { "new" },
                    )],
                )
                .inc();
        }
        Ok(previous)
    }

    /// Compiles and registers a schema under `name`, erroring with
    /// [`RegisterError::Duplicate`] if the name is already taken (the
    /// existing registration stays in place). The duplicate check is
    /// re-run under the write lock, so two racing `try_register` calls
    /// cannot both succeed.
    pub fn try_register(&self, name: &str, xsd: &str) -> Result<CompiledSchema, RegisterError> {
        // fast fail before paying for compilation
        if self.schemas.read().contains_key(name) {
            return Err(RegisterError::Duplicate(name.to_string()));
        }
        let compiled = CompiledSchema::parse(xsd)?;
        let mut schemas = self.schemas.write();
        if schemas.contains_key(name) {
            return Err(RegisterError::Duplicate(name.to_string()));
        }
        schemas.insert(name.to_string(), compiled.clone());
        drop(schemas);
        if obs::enabled() {
            obs::metrics()
                .counter_with(
                    "registry_register_total",
                    "Schema registrations, by outcome.",
                    &[("outcome", "new")],
                )
                .inc();
        }
        Ok(compiled)
    }

    /// Fetches a registered schema.
    pub fn get(&self, name: &str) -> Option<CompiledSchema> {
        let found = self.schemas.read().get(name).cloned();
        if obs::enabled() {
            obs::metrics()
                .counter_with(
                    "registry_get_total",
                    "Registry lookups, by result.",
                    &[("result", if found.is_some() { "hit" } else { "miss" })],
                )
                .inc();
        }
        found
    }

    /// Compiles a P-XML template against the schema registered under
    /// `schema_name`, caching the lowered plan: the first call per
    /// (schema, source, environment) pays parse + check + lowering,
    /// every later call returns the shared [`CompiledTemplate`] handle.
    pub fn compile_template(
        &self,
        schema_name: &str,
        source: &str,
        env: &TypeEnv,
    ) -> Result<Arc<CompiledTemplate>, TemplateError> {
        let key = (
            schema_name.to_string(),
            source.to_string(),
            env_signature(env),
        );
        if let Some(hit) = self.templates.read().get(&key) {
            Self::count_template("hit");
            return Ok(hit.clone());
        }
        match self.compile_template_uncached(schema_name, source, env) {
            Ok(plan) => {
                Self::count_template("miss");
                // a racing miss may have inserted first; keep whichever
                // landed so every caller shares one plan
                let mut templates = self.templates.write();
                Ok(templates.entry(key).or_insert_with(|| plan).clone())
            }
            Err(e) => {
                Self::count_template("error");
                Err(e)
            }
        }
    }

    fn compile_template_uncached(
        &self,
        schema_name: &str,
        source: &str,
        env: &TypeEnv,
    ) -> Result<Arc<CompiledTemplate>, TemplateError> {
        let compiled = self
            .get(schema_name)
            .ok_or_else(|| TemplateError::UnknownSchema(schema_name.to_string()))?;
        let template = Template::parse(source).map_err(|e| TemplateError::Check(vec![e]))?;
        let plan = pxml::plan(&compiled, &template, env).map_err(TemplateError::Check)?;
        Ok(Arc::new(plan))
    }

    fn count_template(outcome: &str) {
        if obs::enabled() {
            obs::metrics()
                .counter_with(
                    "registry_template_total",
                    "Template compilations through the registry, by outcome.",
                    &[("outcome", outcome)],
                )
                .inc();
        }
    }

    /// Number of compiled templates currently cached.
    pub fn cached_templates(&self) -> usize {
        self.templates.read().len()
    }

    /// Renders one page through the compiled-template cache: compiles
    /// (or reuses) the plan for `source` under `schema_name`, then
    /// renders `bindings` — the serving-path entry point where only the
    /// value-level runtime residue can reject.
    pub fn render_page(
        &self,
        schema_name: &str,
        source: &str,
        env: &TypeEnv,
        bindings: &Bindings,
    ) -> Result<String, PageError> {
        let plan = self.compile_template(schema_name, source, env)?;
        Ok(plan.render_to_string(bindings)?)
    }

    /// Number of registered schemas.
    pub fn len(&self) -> usize {
        self.schemas.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.schemas.read().is_empty()
    }

    /// Streaming-validates one rendered page against the schema
    /// registered under `schema_name`, without building a DOM; `None`
    /// when no such schema is registered. An empty error list means the
    /// page is valid. Runs under [`Limits::default`] — see
    /// [`validate_streaming_with_limits`](Self::validate_streaming_with_limits)
    /// to tune the budget.
    pub fn validate_streaming(
        &self,
        schema_name: &str,
        document: &str,
    ) -> Option<Vec<ValidationError>> {
        self.validate_streaming_with_limits(schema_name, document, &Limits::default())
    }

    /// [`validate_streaming`](Self::validate_streaming) under an explicit
    /// resource budget; a tripped budget ends the error list with a
    /// typed [`ValidationErrorKind::Resource`] marker.
    pub fn validate_streaming_with_limits(
        &self,
        schema_name: &str,
        document: &str,
        limits: &Limits,
    ) -> Option<Vec<ValidationError>> {
        let compiled = self.get(schema_name)?;
        Some(Self::validate_one(schema_name, &compiled, document, limits))
    }

    /// Streaming-validates a byte stream pulled from `input` against the
    /// schema registered under `schema_name`, in O(depth) memory — the
    /// serving-path entry point for documents too large to hold resident
    /// (spooled uploads, proxied bodies). `None` when no such schema is
    /// registered; I/O errors propagate, validation problems come back
    /// in the error list.
    pub fn validate_streaming_reader<R: std::io::Read>(
        &self,
        schema_name: &str,
        input: R,
    ) -> Option<std::io::Result<Vec<ValidationError>>> {
        self.validate_streaming_reader_with_limits(schema_name, input, &Limits::default())
    }

    /// [`validate_streaming_reader`](Self::validate_streaming_reader)
    /// under an explicit resource budget; `max_input_bytes` caps the
    /// cumulative bytes read, so an unbounded stream cannot run away.
    pub fn validate_streaming_reader_with_limits<R: std::io::Read>(
        &self,
        schema_name: &str,
        input: R,
        limits: &Limits,
    ) -> Option<std::io::Result<Vec<ValidationError>>> {
        let compiled = self.get(schema_name)?;
        let span = obs::span!("registry.validate_reader", schema = schema_name);
        let result = validator::validate_read_streaming_with_limits(&compiled, input, limits);
        // one clock read shared by the trace record and the histogram
        let elapsed = span.finish();
        if obs::enabled() {
            if let Some(elapsed) = elapsed {
                obs::metrics()
                    .histogram_with(
                        "registry_validate_seconds",
                        "Streaming validation latency through the registry, per schema.",
                        &[("schema", schema_name)],
                        obs::DURATION_BUCKETS,
                    )
                    .observe_duration(elapsed);
            }
        }
        Some(result)
    }

    /// One timed streaming validation, feeding the per-schema latency
    /// histogram.
    fn validate_one(
        schema_name: &str,
        compiled: &CompiledSchema,
        document: &str,
        limits: &Limits,
    ) -> Vec<ValidationError> {
        let span = obs::span!("registry.validate", schema = schema_name);
        let errors = validator::validate_str_streaming_with_limits(compiled, document, limits);
        // one clock read shared by the trace record and the histogram
        let elapsed = span.finish();
        if obs::enabled() {
            if let Some(elapsed) = elapsed {
                obs::metrics()
                    .histogram_with(
                        "registry_validate_seconds",
                        "Streaming validation latency through the registry, per schema.",
                        &[("schema", schema_name)],
                        obs::DURATION_BUCKETS,
                    )
                    .observe_duration(elapsed);
            }
        }
        errors
    }

    /// The error list a document skipped by an expired budget reports:
    /// one position-free typed marker. Counts the trip and the rejection;
    /// the caller counts the batch abort once.
    fn skip_marker(limits: &Limits) -> Vec<ValidationError> {
        // sticky by construction (cancellation latches, deadlines stay
        // passed), but a racing clock could in principle disagree — fall
        // back to Cancelled rather than panic
        let kind = limits
            .expired_kind()
            .unwrap_or(ResourceErrorKind::Cancelled);
        limits::record_trip(&kind);
        limits::record_rejected();
        vec![ValidationError {
            kind: ValidationErrorKind::Resource(kind),
            span: None,
        }]
    }

    /// Batch form of [`validate_streaming`](Self::validate_streaming) for
    /// page handlers that flush several rendered documents at once: one
    /// error list per document, in order. The schema handle is fetched
    /// once for the whole batch.
    pub fn validate_batch_streaming(
        &self,
        schema_name: &str,
        documents: &[&str],
    ) -> Option<Vec<Vec<ValidationError>>> {
        self.validate_batch_streaming_with_limits(schema_name, documents, &Limits::default())
    }

    /// [`validate_batch_streaming`](Self::validate_batch_streaming) under
    /// an explicit resource budget. The deadline/cancellation state is
    /// re-checked **between documents**: once it expires, every remaining
    /// document is skipped with a one-element
    /// [`ValidationErrorKind::Resource`] list instead of being validated,
    /// and the abort is counted once in `batch_cancelled_total`.
    pub fn validate_batch_streaming_with_limits(
        &self,
        schema_name: &str,
        documents: &[&str],
        limits: &Limits,
    ) -> Option<Vec<Vec<ValidationError>>> {
        let compiled = self.get(schema_name)?;
        let mut cut = false;
        let results = documents
            .iter()
            .map(|doc| {
                if cut || limits.expired_kind().is_some() {
                    cut = true;
                    Self::skip_marker(limits)
                } else {
                    Self::validate_one(schema_name, &compiled, doc, limits)
                }
            })
            .collect();
        if cut {
            limits::record_batch_cancelled();
        }
        Some(results)
    }

    /// Parallel form of
    /// [`validate_batch_streaming`](Self::validate_batch_streaming): fans
    /// the documents out across `pool`'s workers and returns one error
    /// list per document, **in input order** — kinds, spans, and order
    /// are identical to the sequential path at any thread count (each
    /// document is validated by the same pure per-document routine; only
    /// the scheduling differs).
    pub fn validate_batch_streaming_parallel(
        &self,
        schema_name: &str,
        documents: &[&str],
        pool: &ThreadPool,
    ) -> Option<Vec<Vec<ValidationError>>> {
        self.validate_batch_streaming_parallel_with_limits(
            schema_name,
            documents,
            pool,
            &Limits::default(),
        )
    }

    /// [`validate_batch_streaming_parallel`](Self::validate_batch_streaming_parallel)
    /// under an explicit resource budget. Workers check the
    /// deadline/cancellation state **between documents**
    /// ([`ThreadPool::map_cancellable`]): documents already in flight
    /// when the budget expires finish normally, every document not yet
    /// started is skipped with a one-element
    /// [`ValidationErrorKind::Resource`] list, and the abort is counted
    /// once in `batch_cancelled_total`.
    pub fn validate_batch_streaming_parallel_with_limits(
        &self,
        schema_name: &str,
        documents: &[&str],
        pool: &ThreadPool,
        limits: &Limits,
    ) -> Option<Vec<Vec<ValidationError>>> {
        let compiled = self.get(schema_name)?;
        Some(Self::batch_parallel(
            schema_name,
            &compiled,
            documents,
            pool,
            limits,
        ))
    }

    /// The serving-path batch entry point: warms the schema (every
    /// content-model DFA, attribute table, and child-type entry compiled
    /// up front, see [`CompiledSchema::warm`]) and then validates the
    /// batch in parallel. Output is identical to
    /// [`validate_batch_streaming`](Self::validate_batch_streaming);
    /// warming only moves compilation cost out of the first documents.
    pub fn validate_batch_parallel(
        &self,
        schema_name: &str,
        documents: &[&str],
        pool: &ThreadPool,
    ) -> Option<Vec<Vec<ValidationError>>> {
        self.validate_batch_parallel_with_limits(schema_name, documents, pool, &Limits::default())
    }

    /// [`validate_batch_parallel`](Self::validate_batch_parallel) under
    /// an explicit resource budget, with the same between-documents
    /// cancellation semantics as
    /// [`validate_batch_streaming_parallel_with_limits`](Self::validate_batch_streaming_parallel_with_limits).
    pub fn validate_batch_parallel_with_limits(
        &self,
        schema_name: &str,
        documents: &[&str],
        pool: &ThreadPool,
        limits: &Limits,
    ) -> Option<Vec<Vec<ValidationError>>> {
        let compiled = self.get(schema_name)?;
        compiled.warm();
        Some(Self::batch_parallel(
            schema_name,
            &compiled,
            documents,
            pool,
            limits,
        ))
    }

    /// Shared parallel fan-out. Documents are copied once into `Arc<str>`
    /// jobs (the pool needs `'static` payloads); per-document latency is
    /// still recorded by [`validate_one`](Self::validate_one) on the
    /// worker, and the pool flushes its per-worker queue-wait/steal
    /// metrics once when the batch completes. Budget expiry is observed
    /// between documents via the pool's cancellation predicate.
    fn batch_parallel(
        schema_name: &str,
        compiled: &CompiledSchema,
        documents: &[&str],
        pool: &ThreadPool,
        limits: &Limits,
    ) -> Vec<Vec<ValidationError>> {
        let _span = obs::span!(
            "registry.validate_batch_parallel",
            schema = schema_name,
            docs = documents.len(),
            threads = pool.threads()
        );
        let name: Arc<str> = Arc::from(schema_name);
        let compiled = compiled.clone();
        let docs: Vec<Arc<str>> = documents.iter().map(|d| Arc::from(*d)).collect();
        let clock = limits.clone();
        let worker_limits = limits.clone();
        let results = pool.map_cancellable(
            docs,
            move || clock.expired_kind().is_some(),
            move |doc| Self::validate_one(&name, &compiled, &doc, &worker_limits),
        );
        let mut cancelled = false;
        let out = results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| {
                    cancelled = true;
                    Self::skip_marker(limits)
                })
            })
            .collect();
        if cancelled {
            limits::record_batch_cancelled();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_registry() {
        let reg = SchemaRegistry::with_corpus().unwrap();
        assert_eq!(reg.len(), 3);
        assert!(reg.get("wml").is_some());
        assert!(reg.get("purchase-order").is_some());
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn reader_validation_matches_in_memory() {
        let reg = SchemaRegistry::with_corpus().unwrap();
        let page = crate::render_order_string(&crate::generate_order(7, 40));
        let whole = reg.validate_streaming("purchase-order", &page).unwrap();
        let via_reader = reg
            .validate_streaming_reader("purchase-order", page.as_bytes())
            .unwrap()
            .unwrap();
        assert_eq!(via_reader, whole);
        assert!(reg
            .validate_streaming_reader("nope", page.as_bytes())
            .is_none());
    }

    #[test]
    fn reader_validation_enforces_cumulative_input_budget() {
        let reg = SchemaRegistry::with_corpus().unwrap();
        let page = crate::render_order_string(&crate::generate_order(7, 40));
        let errors = reg
            .validate_streaming_reader_with_limits(
                "purchase-order",
                page.as_bytes(),
                &Limits::default().with_max_input_bytes(64),
            )
            .unwrap()
            .unwrap();
        assert!(
            matches!(
                errors.last().unwrap().kind,
                validator::ValidationErrorKind::Resource(
                    limits::ResourceErrorKind::InputTooLarge { limit: 64, .. }
                )
            ),
            "{errors:#?}"
        );
    }

    #[test]
    fn registration_replaces_and_returns_the_previous_schema() {
        let reg = SchemaRegistry::new();
        assert!(reg.is_empty());
        let first = reg.register("wml", schema::corpus::WML_XSD).unwrap();
        assert!(first.is_none(), "first registration replaces nothing");
        let replaced = reg.register("wml", schema::corpus::WML_XSD).unwrap();
        let replaced = replaced.expect("second registration returns the replaced schema");
        assert!(replaced.schema().element("wml").is_some());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn try_register_rejects_duplicates_and_keeps_the_original() {
        let reg = SchemaRegistry::new();
        reg.try_register("wml", schema::corpus::WML_XSD).unwrap();
        let err = reg
            .try_register("wml", schema::corpus::PURCHASE_ORDER_XSD)
            .unwrap_err();
        assert!(
            matches!(&err, RegisterError::Duplicate(name) if name == "wml"),
            "{err}"
        );
        // the original registration is untouched
        let kept = reg.get("wml").unwrap();
        assert!(kept.schema().element("wml").is_some());
        assert!(kept.schema().element("purchaseOrder").is_none());
        // bad schema text surfaces as a schema error, not a duplicate
        assert!(matches!(
            reg.try_register("broken", "<not-a-schema/>"),
            Err(RegisterError::Schema(_))
        ));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn streaming_validation_through_registry() {
        let reg = SchemaRegistry::with_corpus().unwrap();
        let data = crate::DirectoryPageData {
            sub_dirs: vec!["music".into(), "video".into()],
            current_dir: "/media".into(),
            parent_dir: "/".into(),
        };
        let good = crate::render_string(&data);
        let bad = crate::render_string_buggy(&data);
        let results = reg
            .validate_batch_streaming("wml", &[good.as_str(), bad.as_str()])
            .unwrap();
        assert_eq!(results.len(), 2);
        assert!(results[0].is_empty(), "{:#?}", results[0]);
        assert!(!results[1].is_empty());
        assert!(reg.validate_streaming("wml", &good).unwrap().is_empty());
        assert!(reg.validate_batch_streaming("nope", &[]).is_none());
    }

    #[test]
    fn parallel_batches_match_the_sequential_path() {
        let reg = SchemaRegistry::with_corpus().unwrap();
        let data = crate::DirectoryPageData {
            sub_dirs: (0..12).map(|i| format!("dir{i}")).collect(),
            current_dir: "/media".into(),
            parent_dir: "/".into(),
        };
        let good = crate::render_string(&data);
        let bad = crate::render_string_buggy(&data);
        let malformed = "<wml><card>"; // not well-formed
        let docs: Vec<&str> = vec![&good, &bad, malformed, &good, &bad];
        let sequential = reg.validate_batch_streaming("wml", &docs).unwrap();
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let streamed = reg
                .validate_batch_streaming_parallel("wml", &docs, &pool)
                .unwrap();
            assert_eq!(
                streamed, sequential,
                "streaming parallel at {threads} threads"
            );
            let warmed = reg.validate_batch_parallel("wml", &docs, &pool).unwrap();
            assert_eq!(warmed, sequential, "warmed parallel at {threads} threads");
        }
        let pool = ThreadPool::new(2);
        assert!(reg.validate_batch_parallel("nope", &docs, &pool).is_none());
        assert_eq!(
            reg.validate_batch_parallel("wml", &[], &pool).unwrap(),
            Vec::<Vec<ValidationError>>::new()
        );
    }

    #[test]
    fn expired_budget_skips_batches_with_typed_markers() {
        let reg = SchemaRegistry::with_corpus().unwrap();
        let data = crate::DirectoryPageData {
            sub_dirs: vec!["music".into()],
            current_dir: "/media".into(),
            parent_dir: "/".into(),
        };
        let good = crate::render_string(&data);
        let docs: Vec<&str> = vec![&good, &good, &good];
        let token = limits::CancelToken::new();
        token.cancel();
        let budget = Limits::default().with_cancel_token(&token);
        let sequential = reg
            .validate_batch_streaming_with_limits("wml", &docs, &budget)
            .unwrap();
        assert_eq!(sequential.len(), 3);
        for errors in &sequential {
            assert_eq!(errors.len(), 1, "{errors:#?}");
            assert!(matches!(
                errors[0].kind,
                ValidationErrorKind::Resource(ResourceErrorKind::Cancelled)
            ));
            assert_eq!(errors[0].span, None);
        }
        let pool = ThreadPool::new(2);
        let parallel = reg
            .validate_batch_streaming_parallel_with_limits("wml", &docs, &pool, &budget)
            .unwrap();
        assert_eq!(parallel, sequential);
        let warmed = reg
            .validate_batch_parallel_with_limits("wml", &docs, &pool, &budget)
            .unwrap();
        assert_eq!(warmed, sequential);
    }

    #[test]
    fn unexpired_budget_leaves_batches_untouched() {
        let reg = SchemaRegistry::with_corpus().unwrap();
        let data = crate::DirectoryPageData {
            sub_dirs: vec!["music".into()],
            current_dir: "/media".into(),
            parent_dir: "/".into(),
        };
        let good = crate::render_string(&data);
        let bad = crate::render_string_buggy(&data);
        let docs: Vec<&str> = vec![&good, &bad];
        let pool = ThreadPool::new(2);
        let baseline = reg.validate_batch_parallel("wml", &docs, &pool).unwrap();
        let unbounded = reg
            .validate_batch_parallel_with_limits("wml", &docs, &pool, &Limits::unbounded())
            .unwrap();
        assert_eq!(baseline, unbounded);
        let live_token = limits::CancelToken::new();
        let governed = reg
            .validate_batch_parallel_with_limits(
                "wml",
                &docs,
                &pool,
                &Limits::default().with_cancel_token(&live_token),
            )
            .unwrap();
        assert_eq!(baseline, governed);
    }

    #[test]
    fn template_cache_compiles_once_and_renders_pages() {
        let reg = SchemaRegistry::with_corpus().unwrap();
        let env = TypeEnv::new().text("subDir").text("label");
        let src = crate::directory_page::DIRECTORY_OPTION_TEMPLATE;
        let first = reg.compile_template("wml", src, &env).unwrap();
        let second = reg.compile_template("wml", src, &env).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "second call must be a cache hit"
        );
        assert_eq!(reg.cached_templates(), 1);
        // same source under a different environment is a distinct plan
        let env2 = TypeEnv::new().text("subDir").text("label").text("unused");
        let third = reg.compile_template("wml", src, &env2).unwrap();
        assert!(!Arc::ptr_eq(&first, &third));
        assert_eq!(reg.cached_templates(), 2);

        let page = reg
            .render_page(
                "wml",
                src,
                &env,
                &Bindings::new()
                    .text("subDir", "/media/a b")
                    .text("label", "a<b"),
            )
            .unwrap();
        assert_eq!(page, "<option value=\"/media/a b\">a&lt;b</option>");
    }

    #[test]
    fn template_cache_reports_typed_failures() {
        let reg = SchemaRegistry::with_corpus().unwrap();
        let env = TypeEnv::new();
        let err = reg
            .compile_template("nope", "<option value=\"x\">y</option>", &env)
            .unwrap_err();
        assert!(
            matches!(err, TemplateError::UnknownSchema(ref n) if n == "nope"),
            "{err}"
        );
        let err = reg
            .compile_template("wml", "<option value=\"x\">$y$</option>", &env)
            .unwrap_err();
        assert!(matches!(err, TemplateError::Check(_)), "{err}");
        // failures are not cached
        assert_eq!(reg.cached_templates(), 0);
        // runtime residue comes back as a render error, not a compile one
        let err = reg
            .render_page(
                "purchase-order",
                "<comment>$text$</comment>",
                &TypeEnv::new().text("text"),
                &Bindings::new(),
            )
            .unwrap_err();
        assert!(matches!(err, PageError::Render(_)), "{err}");
    }

    #[test]
    fn re_registration_drops_stale_template_plans() {
        let reg = SchemaRegistry::new();
        reg.register("wml", schema::corpus::WML_XSD).unwrap();
        let env = TypeEnv::new().text("subDir").text("label");
        let src = crate::directory_page::DIRECTORY_OPTION_TEMPLATE;
        reg.compile_template("wml", src, &env).unwrap();
        assert_eq!(reg.cached_templates(), 1);
        reg.register("wml", schema::corpus::WML_XSD).unwrap();
        assert_eq!(reg.cached_templates(), 0, "replacement invalidates plans");
    }

    #[test]
    fn shared_across_threads() {
        let reg = std::sync::Arc::new(SchemaRegistry::with_corpus().unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let c = reg.get("wml").unwrap();
                    assert!(c.schema().element("wml").is_some());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
