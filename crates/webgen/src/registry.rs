//! A process-wide registry of compiled schemas, shared by server pages:
//! schemas compile once and every page handler clones a cheap handle
//! (`CompiledSchema` is `Arc`-backed).

use std::collections::HashMap;

use parking_lot::RwLock;
use schema::{CompiledSchema, SchemaError};
use validator::ValidationError;

/// A named registry of compiled schemas.
#[derive(Default)]
pub struct SchemaRegistry {
    schemas: RwLock<HashMap<String, CompiledSchema>>,
}

impl SchemaRegistry {
    /// Creates an empty registry.
    pub fn new() -> SchemaRegistry {
        SchemaRegistry::default()
    }

    /// A registry preloaded with the paper's corpus schemas
    /// (`purchase-order`, `wml`).
    pub fn with_corpus() -> Result<SchemaRegistry, SchemaError> {
        let reg = SchemaRegistry::new();
        reg.register("purchase-order", schema::corpus::PURCHASE_ORDER_XSD)?;
        reg.register("wml", schema::corpus::WML_XSD)?;
        reg.register("xhtml", schema::corpus::XHTML_XSD)?;
        Ok(reg)
    }

    /// Compiles and registers a schema under `name`.
    pub fn register(&self, name: &str, xsd: &str) -> Result<CompiledSchema, SchemaError> {
        let compiled = CompiledSchema::parse(xsd)?;
        self.schemas
            .write()
            .insert(name.to_string(), compiled.clone());
        Ok(compiled)
    }

    /// Fetches a registered schema.
    pub fn get(&self, name: &str) -> Option<CompiledSchema> {
        self.schemas.read().get(name).cloned()
    }

    /// Number of registered schemas.
    pub fn len(&self) -> usize {
        self.schemas.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.schemas.read().is_empty()
    }

    /// Streaming-validates one rendered page against the schema
    /// registered under `schema_name`, without building a DOM; `None`
    /// when no such schema is registered. An empty error list means the
    /// page is valid.
    pub fn validate_streaming(
        &self,
        schema_name: &str,
        document: &str,
    ) -> Option<Vec<ValidationError>> {
        let compiled = self.get(schema_name)?;
        Some(validator::validate_str_streaming(&compiled, document))
    }

    /// Batch form of [`validate_streaming`](Self::validate_streaming) for
    /// page handlers that flush several rendered documents at once: one
    /// error list per document, in order. The schema handle is fetched
    /// once for the whole batch.
    pub fn validate_batch_streaming(
        &self,
        schema_name: &str,
        documents: &[&str],
    ) -> Option<Vec<Vec<ValidationError>>> {
        let compiled = self.get(schema_name)?;
        Some(
            documents
                .iter()
                .map(|doc| validator::validate_str_streaming(&compiled, doc))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_registry() {
        let reg = SchemaRegistry::with_corpus().unwrap();
        assert_eq!(reg.len(), 3);
        assert!(reg.get("wml").is_some());
        assert!(reg.get("purchase-order").is_some());
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn registration_replaces() {
        let reg = SchemaRegistry::new();
        assert!(reg.is_empty());
        reg.register("wml", schema::corpus::WML_XSD).unwrap();
        reg.register("wml", schema::corpus::WML_XSD).unwrap();
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn streaming_validation_through_registry() {
        let reg = SchemaRegistry::with_corpus().unwrap();
        let data = crate::DirectoryPageData {
            sub_dirs: vec!["music".into(), "video".into()],
            current_dir: "/media".into(),
            parent_dir: "/".into(),
        };
        let good = crate::render_string(&data);
        let bad = crate::render_string_buggy(&data);
        let results = reg
            .validate_batch_streaming("wml", &[good.as_str(), bad.as_str()])
            .unwrap();
        assert_eq!(results.len(), 2);
        assert!(results[0].is_empty(), "{:#?}", results[0]);
        assert!(!results[1].is_empty());
        assert!(reg.validate_streaming("wml", &good).unwrap().is_empty());
        assert!(reg.validate_batch_streaming("nope", &[]).is_none());
    }

    #[test]
    fn shared_across_threads() {
        let reg = std::sync::Arc::new(SchemaRegistry::with_corpus().unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let c = reg.get("wml").unwrap();
                    assert!(c.schema().element("wml").is_some());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
