//! A process-wide registry of compiled schemas, shared by server pages:
//! schemas compile once and every page handler clones a cheap handle
//! (`CompiledSchema` is `Arc`-backed).

use std::collections::HashMap;

use parking_lot::RwLock;
use schema::{CompiledSchema, SchemaError};

/// A named registry of compiled schemas.
#[derive(Default)]
pub struct SchemaRegistry {
    schemas: RwLock<HashMap<String, CompiledSchema>>,
}

impl SchemaRegistry {
    /// Creates an empty registry.
    pub fn new() -> SchemaRegistry {
        SchemaRegistry::default()
    }

    /// A registry preloaded with the paper's corpus schemas
    /// (`purchase-order`, `wml`).
    pub fn with_corpus() -> Result<SchemaRegistry, SchemaError> {
        let reg = SchemaRegistry::new();
        reg.register("purchase-order", schema::corpus::PURCHASE_ORDER_XSD)?;
        reg.register("wml", schema::corpus::WML_XSD)?;
        reg.register("xhtml", schema::corpus::XHTML_XSD)?;
        Ok(reg)
    }

    /// Compiles and registers a schema under `name`.
    pub fn register(&self, name: &str, xsd: &str) -> Result<CompiledSchema, SchemaError> {
        let compiled = CompiledSchema::parse(xsd)?;
        self.schemas
            .write()
            .insert(name.to_string(), compiled.clone());
        Ok(compiled)
    }

    /// Fetches a registered schema.
    pub fn get(&self, name: &str) -> Option<CompiledSchema> {
        self.schemas.read().get(name).cloned()
    }

    /// Number of registered schemas.
    pub fn len(&self) -> usize {
        self.schemas.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.schemas.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_registry() {
        let reg = SchemaRegistry::with_corpus().unwrap();
        assert_eq!(reg.len(), 3);
        assert!(reg.get("wml").is_some());
        assert!(reg.get("purchase-order").is_some());
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn registration_replaces() {
        let reg = SchemaRegistry::new();
        assert!(reg.is_empty());
        reg.register("wml", schema::corpus::WML_XSD).unwrap();
        reg.register("wml", schema::corpus::WML_XSD).unwrap();
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn shared_across_threads() {
        let reg = std::sync::Arc::new(SchemaRegistry::with_corpus().unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let c = reg.get("wml").unwrap();
                    assert!(c.schema().element("wml").is_some());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
