//! Patchable validated-document sessions: the serving-side handle over
//! [`validator::IncrementalValidator`].
//!
//! A [`DocSession`] is opened from the [`SchemaRegistry`] with a full
//! validation pass and thereafter stays valid by construction — each
//! [`DomPatch`] either commits after an O(affected-siblings) recheck or
//! is rejected with the errors a full pass would report. The session
//! layer adds the observability the server needs: a `session.patch`
//! span per patch, `patch_applied_total` / `patch_rejected_total`
//! counters, a `patch_revalidate_seconds` latency histogram, and a wide
//! event per patch carrying `nodes_rechecked` next to the document size
//! (the locality ratio B16 reports).

use limits::Limits;
use schema::CompiledSchema;
use validator::{DomPatch, IncrementalValidator, PatchError, ValidationError};

use crate::registry::SchemaRegistry;

/// Why [`SchemaRegistry::open_session`] refused to open.
#[derive(Debug)]
pub enum SessionError {
    /// No schema is registered under the name.
    UnknownSchema(String),
    /// The document is not well-formed or not valid; the list is what a
    /// full validation pass reported (a parse failure comes back as one
    /// `NotWellFormed` entry, mirroring the streaming validator).
    Invalid(Vec<ValidationError>),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownSchema(name) => {
                write!(f, "no schema registered under {name:?}")
            }
            SessionError::Invalid(errors) => {
                write!(f, "document rejected with {} error(s)", errors.len())?;
                if let Some(first) = errors.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// A live patchable document, proven valid at open and after every
/// committed patch.
#[derive(Debug)]
pub struct DocSession {
    schema_name: String,
    inner: IncrementalValidator,
}

impl DocSession {
    /// Opens a session directly over a compiled schema (the registry
    /// entry point [`SchemaRegistry::open_session`] resolves the name
    /// first). The initial full pass runs under `limits`.
    pub fn open(
        schema_name: &str,
        compiled: CompiledSchema,
        document: &str,
        limits: Limits,
    ) -> Result<DocSession, Vec<ValidationError>> {
        let doc = match xmlparse::parse_document_with_limits(document, &limits) {
            Ok(doc) => doc,
            Err(e) => {
                // mirror the streaming validator's shape: parse failures
                // are a typed error list, not a separate channel
                let kind = match e.kind {
                    xmlparse::ParseErrorKind::Resource(kind) => {
                        validator::ValidationErrorKind::Resource(kind)
                    }
                    _ => validator::ValidationErrorKind::NotWellFormed(e.to_string()),
                };
                return Err(vec![ValidationError { kind, span: None }]);
            }
        };
        let inner = IncrementalValidator::with_limits(compiled, doc, limits)?;
        Ok(DocSession {
            schema_name: schema_name.to_string(),
            inner,
        })
    }

    /// The schema name the session validates against.
    pub fn schema_name(&self) -> &str {
        &self.schema_name
    }

    /// The underlying incremental validator (document access, counters).
    pub fn validator(&self) -> &IncrementalValidator {
        &self.inner
    }

    /// Applies one patch with full observability: a `session.patch`
    /// span, outcome counters, the revalidation-latency histogram, and
    /// a wide event recording how local the recheck was.
    pub fn apply(&mut self, patch: &DomPatch) -> Result<(), PatchError> {
        let span = obs::span!(
            "session.patch",
            schema = self.schema_name.as_str(),
            op = patch.op_name()
        );
        let result = self.inner.apply(patch);
        let elapsed = span.finish();
        if obs::enabled() {
            let metrics = obs::metrics();
            let op = patch.op_name();
            match &result {
                Ok(()) => metrics
                    .counter_with(
                        "patch_applied_total",
                        "Patches committed to a validated session, by operation.",
                        &[("op", op)],
                    )
                    .inc(),
                Err(e) => metrics
                    .counter_with(
                        "patch_rejected_total",
                        "Patches rejected by a validated session, by operation and why.",
                        &[("op", op), ("reason", rejection_label(e))],
                    )
                    .inc(),
            }
            if let Some(elapsed) = elapsed {
                metrics
                    .histogram_with(
                        "patch_revalidate_seconds",
                        "Incremental revalidation latency per patch, by operation.",
                        &[("op", op)],
                        obs::DURATION_BUCKETS,
                    )
                    .observe_duration(elapsed);
                let (outcome, error_count, limit_trips) = match &result {
                    Ok(()) => (obs::trace::Outcome::Valid, 0, 0),
                    Err(PatchError::Invalid(errors)) => {
                        (obs::trace::Outcome::Invalid, errors.len() as u64, 0)
                    }
                    Err(PatchError::Resource(_)) => (obs::trace::Outcome::ResourceTripped, 1, 1),
                    Err(_) => (obs::trace::Outcome::Malformed, 1, 0),
                };
                obs::trace::record_wide_event(obs::trace::WideEvent {
                    entry: "session.patch",
                    bytes: patch.payload_bytes() as u64,
                    events: 0,
                    max_depth: 0,
                    borrowed_events: 0,
                    owned_events: 0,
                    error_count,
                    limit_trips,
                    outcome,
                    phases: vec![("revalidate", elapsed)],
                    total: elapsed,
                    attrs: vec![
                        ("schema", self.schema_name.clone()),
                        ("op", op.to_string()),
                        ("nodes_rechecked", self.inner.nodes_rechecked().to_string()),
                        ("doc_nodes", self.inner.node_count().to_string()),
                    ],
                });
            }
        }
        result
    }

    /// Serializes the current (always valid) document compactly.
    pub fn to_xml(&self) -> String {
        let doc = self.inner.document();
        dom::serialize(doc, doc.document_node()).expect("session document serializes")
    }
}

fn rejection_label(e: &PatchError) -> &'static str {
    match e {
        PatchError::Invalid(_) => "invalid",
        PatchError::Structure(_) => "structure",
        PatchError::Fragment(_) => "fragment",
        PatchError::Resource(_) => "resource",
    }
}

impl SchemaRegistry {
    /// Opens a patchable validated-document session against the schema
    /// registered under `schema_name`: parses and fully validates
    /// `document` under `limits`, then hands back a [`DocSession`] whose
    /// every subsequent patch revalidates incrementally.
    pub fn open_session(
        &self,
        schema_name: &str,
        document: &str,
        limits: Limits,
    ) -> Result<DocSession, SessionError> {
        let compiled = self
            .get(schema_name)
            .ok_or_else(|| SessionError::UnknownSchema(schema_name.to_string()))?;
        DocSession::open(schema_name, compiled, document, limits).map_err(SessionError::Invalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use validator::NewNode;

    #[test]
    fn open_patch_serialize_round_trip() {
        let reg = SchemaRegistry::with_corpus().unwrap();
        let order = crate::render_order_string(&crate::generate_order(11, 3));
        let mut session = reg
            .open_session("purchase-order", &order, Limits::default())
            .unwrap();
        assert_eq!(session.schema_name(), "purchase-order");
        // the serialized session round-trips through a full validation
        let xml = session.to_xml();
        assert!(reg
            .validate_streaming("purchase-order", &xml)
            .unwrap()
            .is_empty());
        // a structural patch commits and the result stays valid
        let doc = session.validator().document();
        let root = doc.root_element().unwrap();
        let items_idx = doc
            .child_slice(root)
            .unwrap()
            .iter()
            .position(|&c| doc.tag_name(c).map(|n| n == "items").unwrap_or(false))
            .unwrap();
        let root_idx = doc
            .child_slice(doc.document_node())
            .unwrap()
            .iter()
            .position(|&c| c == root)
            .unwrap();
        session
            .apply(&DomPatch::AppendChild {
                at: vec![root_idx, items_idx],
                child: NewNode::Element {
                    xml: "<item partNum=\"999-ZZ\"><productName>Extra</productName>\
                          <quantity>2</quantity><USPrice>5.00</USPrice></item>"
                        .into(),
                },
            })
            .unwrap();
        assert!(reg
            .validate_streaming("purchase-order", &session.to_xml())
            .unwrap()
            .is_empty());
        assert_eq!(session.validator().applied_total(), 1);
    }

    #[test]
    fn open_session_failures_are_typed() {
        let reg = SchemaRegistry::with_corpus().unwrap();
        let err = reg
            .open_session("nope", "<a/>", Limits::default())
            .unwrap_err();
        assert!(matches!(err, SessionError::UnknownSchema(_)));
        let err = reg
            .open_session("purchase-order", "<purchaseOrder>", Limits::default())
            .unwrap_err();
        match err {
            SessionError::Invalid(errors) => assert!(matches!(
                errors[0].kind,
                validator::ValidationErrorKind::NotWellFormed(_)
            )),
            other => panic!("{other}"),
        }
        let err = reg
            .open_session("purchase-order", "<purchaseOrder/>", Limits::default())
            .unwrap_err();
        assert!(matches!(err, SessionError::Invalid(_)));
    }
}
