//! The Sect. 5 WML directory page, implemented once per authoring style
//! the paper contrasts:
//!
//! * [`render_string`] — the JSP/PHP style (Fig. 8): string
//!   concatenation, no checking of any kind;
//! * [`render_string_buggy`] — the paper's Sect. 1 "Wrong Server Page":
//!   the same code after a typo that every compiler accepts but that
//!   produces invalid markup;
//! * [`render_dom`] — generic DOM construction followed by full runtime
//!   validation (the pre-V-DOM best practice);
//! * [`render_vdom`] — typed V-DOM construction (paper Fig. 11);
//! * [`PxmlDirectoryPage`] — pre-checked P-XML templates instantiated at
//!   runtime (paper Fig. 10);
//! * [`CompiledDirectoryPage`] — the same templates lowered once by
//!   [`pxml::plan`] and rendered as static bytes plus escaped hole
//!   fills, with no per-page DOM or structural re-validation.
//!
//! All six correct styles produce a page for the same [`MediaObject`];
//! the correct ones produce byte-identical XML, which the tests assert.

use dom::Document;
use pxml::{Bindings, CompiledTemplate, Template, TypeEnv};
use schema::CompiledSchema;
use validator::ValidationError;
use vdom::{TypedDocument, VdomError};

use crate::media::MediaObject;

/// Page inputs derived from the media object, mirroring the paper's
/// Fig. 8 prologue (`subDirs`, `currentDir`, `parentDir`).
#[derive(Debug, Clone)]
pub struct DirectoryPageData {
    /// Names of subdirectories.
    pub sub_dirs: Vec<String>,
    /// Full path of the current directory.
    pub current_dir: String,
    /// Full path of the parent directory.
    pub parent_dir: String,
}

impl DirectoryPageData {
    /// Extracts the page inputs from a media object.
    pub fn from_media(m: &MediaObject<'_>) -> DirectoryPageData {
        DirectoryPageData {
            sub_dirs: m.get_childs(),
            current_dir: m.get_full_path(),
            parent_dir: m.parent_path(),
        }
    }
}

fn escape(s: &str) -> String {
    xmlchars::escape_text(s).into_owned()
}

fn escape_attr(s: &str) -> String {
    xmlchars::escape_attribute(s).into_owned()
}

/// JSP-style string generation (Fig. 8): fast and completely unchecked.
pub fn render_string(data: &DirectoryPageData) -> String {
    let mut out = String::with_capacity(256 + data.sub_dirs.len() * 64);
    out.push_str("<wml><card id=\"dirs\"><p>");
    out.push_str("<b>");
    out.push_str(&escape(&data.current_dir));
    out.push_str("</b><br/>");
    out.push_str("<select name=\"directories\">");
    out.push_str("<option value=\"");
    out.push_str(&escape_attr(&data.parent_dir));
    out.push_str("\">..</option>");
    for dir in &data.sub_dirs {
        out.push_str("<option value=\"");
        out.push_str(&escape_attr(&format!("{}/{dir}", data.current_dir)));
        out.push_str("\">");
        out.push_str(&escape(dir));
        out.push_str("</option>");
    }
    out.push_str("</select><br/></p></card></wml>");
    out
}

/// The "Wrong Server Page" variant: a typo swaps two closing tags, so the
/// generator happily emits ill-formed markup. Everything up to the
/// browser accepts this program; only a test run (or a customer) notices.
pub fn render_string_buggy(data: &DirectoryPageData) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("<wml><card id=\"dirs\"><p>");
    out.push_str("<b>");
    out.push_str(&escape(&data.current_dir));
    out.push_str("</b><br/>");
    out.push_str("<select name=\"directories\">");
    for dir in &data.sub_dirs {
        out.push_str("<option value=\"");
        out.push_str(&escape_attr(&format!("{}/{dir}", data.current_dir)));
        out.push_str("\">");
        out.push_str(&escape(dir));
        // the typo: </select> instead of </option>
        out.push_str("</select>");
    }
    out.push_str("</select><br/></p></card></wml>");
    out
}

/// Generic DOM construction + full runtime validation — returns the
/// serialized page or the violations the validator found.
pub fn render_dom(
    compiled: &CompiledSchema,
    data: &DirectoryPageData,
) -> Result<String, Vec<ValidationError>> {
    let mut doc = Document::new();
    build_dom_page(&mut doc, data).expect("DOM construction cannot fail structurally");
    let errors = validator::validate_document(compiled, &doc);
    if errors.is_empty() {
        let root = doc.root_element().expect("page has a root");
        Ok(dom::serialize(&doc, root).expect("serialization"))
    } else {
        Err(errors)
    }
}

fn build_dom_page(doc: &mut Document, data: &DirectoryPageData) -> Result<(), dom::DomError> {
    let wml = doc.create_element("wml")?;
    let dn = doc.document_node();
    doc.append_child(dn, wml)?;
    let card = doc.create_element("card")?;
    doc.set_attribute(card, "id", "dirs")?;
    doc.append_child(wml, card)?;
    let p = doc.create_element("p")?;
    doc.append_child(card, p)?;
    let b = doc.create_element("b")?;
    doc.append_child(p, b)?;
    let t = doc.create_text(data.current_dir.clone());
    doc.append_child(b, t)?;
    let br = doc.create_element("br")?;
    doc.append_child(p, br)?;
    let select = doc.create_element("select")?;
    doc.set_attribute(select, "name", "directories")?;
    doc.append_child(p, select)?;
    let parent_option = doc.create_element("option")?;
    doc.set_attribute(parent_option, "value", data.parent_dir.clone())?;
    doc.append_child(select, parent_option)?;
    let dots = doc.create_text("..");
    doc.append_child(parent_option, dots)?;
    for dir in &data.sub_dirs {
        let option = doc.create_element("option")?;
        doc.set_attribute(option, "value", format!("{}/{dir}", data.current_dir))?;
        doc.append_child(select, option)?;
        let label = doc.create_text(dir.clone());
        doc.append_child(option, label)?;
    }
    let br2 = doc.create_element("br")?;
    doc.append_child(p, br2)?;
    Ok(())
}

/// Typed V-DOM construction (the Fig. 11 style): every step checked
/// incrementally; no whole-document validation pass afterwards.
pub fn render_vdom(
    compiled: &CompiledSchema,
    data: &DirectoryPageData,
) -> Result<String, VdomError> {
    let mut td = TypedDocument::new(compiled.clone());
    let wml = td.create_root("wml")?;
    let card = td.append_element(wml, "card")?;
    td.set_attribute(card, "id", "dirs")?;
    let p = td.append_element(card, "p")?;
    let b = td.append_element(p, "b")?;
    td.append_text(b, data.current_dir.clone())?;
    td.append_element(p, "br")?;
    let select = td.append_element(p, "select")?;
    td.set_attribute(select, "name", "directories")?;
    let parent_option = td.append_element(select, "option")?;
    td.set_attribute(parent_option, "value", data.parent_dir.clone())?;
    td.append_text(parent_option, "..")?;
    for dir in &data.sub_dirs {
        let option = td.append_element(select, "option")?;
        td.set_attribute(option, "value", format!("{}/{dir}", data.current_dir))?;
        td.append_text(option, dir.clone())?;
    }
    td.append_element(p, "br")?;
    let doc = td.seal()?;
    let root = doc.root_element().expect("sealed page has a root");
    Ok(dom::serialize(&doc, root).expect("serialization"))
}

/// The P-XML templates of the page (Fig. 10), checked once and reused.
pub struct PxmlDirectoryPage {
    compiled: CompiledSchema,
    option_template: Template,
}

impl PxmlDirectoryPage {
    /// Parses and statically checks the page's templates.
    pub fn new(compiled: &CompiledSchema) -> Result<PxmlDirectoryPage, Vec<pxml::PxmlError>> {
        let option_template =
            Template::parse("<option value=\"$subDir$\">$label$</option>").map_err(|e| vec![e])?;
        let env = TypeEnv::new().text("subDir").text("label");
        let errors = pxml::check_template(compiled, &option_template, &env);
        if !errors.is_empty() {
            return Err(errors);
        }
        Ok(PxmlDirectoryPage {
            compiled: compiled.clone(),
            option_template,
        })
    }

    /// Renders the page for `data` — the Fig. 10 program: template
    /// instantiations inside host-language control flow.
    pub fn render(&self, data: &DirectoryPageData) -> Result<String, pxml::InstantiateError> {
        let mut td = TypedDocument::new(self.compiled.clone());
        let wml = td.create_root("wml")?;
        let card = td.append_element(wml, "card")?;
        td.set_attribute(card, "id", "dirs")?;
        let p = td.append_element(card, "p")?;
        let b = td.append_element(p, "b")?;
        td.append_text(b, data.current_dir.clone())?;
        td.append_element(p, "br")?;
        let select = td.append_element(p, "select")?;
        td.set_attribute(select, "name", "directories")?;
        let parent = pxml::instantiate(
            &self.compiled,
            &self.option_template,
            &Bindings::new()
                .text("subDir", data.parent_dir.clone())
                .text("label", ".."),
        )?;
        td.import_element(select, &parent.doc, parent.root)?;
        for dir in &data.sub_dirs {
            let frag = pxml::instantiate(
                &self.compiled,
                &self.option_template,
                &Bindings::new()
                    .text("subDir", format!("{}/{dir}", data.current_dir))
                    .text("label", dir.clone()),
            )?;
            td.import_element(select, &frag.doc, frag.root)?;
        }
        td.append_element(p, "br")?;
        let doc = td.seal()?;
        let root = doc.root_element().expect("sealed page has a root");
        Ok(dom::serialize(&doc, root).expect("serialization"))
    }
}

/// The full-page WML constructor used by [`CompiledDirectoryPage`]:
/// the whole card is static except the heading text and the option list.
pub const DIRECTORY_PAGE_TEMPLATE: &str = "<wml><card id=\"dirs\"><p>\
     <b>$currentDir$</b><br/><select name=\"directories\">$options$</select>\
     <br/></p></card></wml>";

/// The per-directory option constructor (shared with the interpreter).
pub const DIRECTORY_OPTION_TEMPLATE: &str = "<option value=\"$subDir$\">$label$</option>";

/// The directory page lowered to compiled templates: the page shell and
/// the option row are each planned once; a render is a memcpy of the
/// static bytes with the heading escaped in and the pre-rendered option
/// rows spliced under the `<select>` content model.
pub struct CompiledDirectoryPage {
    page: CompiledTemplate,
    option: CompiledTemplate,
}

impl CompiledDirectoryPage {
    /// Checks and lowers the page and option templates.
    pub fn new(compiled: &CompiledSchema) -> Result<CompiledDirectoryPage, Vec<pxml::PxmlError>> {
        let page_t = Template::parse(DIRECTORY_PAGE_TEMPLATE).map_err(|e| vec![e])?;
        let option_t = Template::parse(DIRECTORY_OPTION_TEMPLATE).map_err(|e| vec![e])?;
        let page_env = TypeEnv::new()
            .text("currentDir")
            .element("options", "option");
        let option_env = TypeEnv::new().text("subDir").text("label");
        Ok(CompiledDirectoryPage {
            page: pxml::plan(compiled, &page_t, &page_env)?,
            option: pxml::plan(compiled, &option_t, &option_env)?,
        })
    }

    /// Renders the page for `data` through the compiled path.
    pub fn render(&self, data: &DirectoryPageData) -> Result<String, pxml::InstantiateError> {
        let mut options = Vec::with_capacity(data.sub_dirs.len() + 1);
        // one bindings map reused across the option loop: only the two
        // values change per row
        let mut row = Bindings::new()
            .text("subDir", data.parent_dir.clone())
            .text("label", "..");
        options.push(self.option.render_fragment(&row)?);
        for dir in &data.sub_dirs {
            row.set_text("subDir", format!("{}/{dir}", data.current_dir));
            row.set_text("label", dir.clone());
            options.push(self.option.render_fragment(&row)?);
        }
        self.page.render_to_string(
            &Bindings::new()
                .text("currentDir", data.current_dir.clone())
                .rendered_list("options", options),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MediaArchive;
    use schema::corpus::WML_XSD;

    fn data() -> DirectoryPageData {
        let archive = MediaArchive::generate(42, 4, 2);
        // lifetime: build data from a scoped cursor
        DirectoryPageData::from_media(&archive.root())
    }

    fn compiled() -> CompiledSchema {
        CompiledSchema::parse(WML_XSD).unwrap()
    }

    #[test]
    fn all_correct_backends_agree() {
        let c = compiled();
        let d = data();
        let s = render_string(&d);
        let dom_page = render_dom(&c, &d).unwrap();
        let vdom_page = render_vdom(&c, &d).unwrap();
        let pxml_page = PxmlDirectoryPage::new(&c).unwrap().render(&d).unwrap();
        let compiled_page = CompiledDirectoryPage::new(&c).unwrap().render(&d).unwrap();
        assert_eq!(s, dom_page);
        assert_eq!(dom_page, vdom_page);
        assert_eq!(vdom_page, pxml_page);
        assert_eq!(pxml_page, compiled_page);
    }

    #[test]
    fn compiled_page_handles_empty_and_hostile_directories() {
        let c = compiled();
        let page = CompiledDirectoryPage::new(&c).unwrap();
        let empty = DirectoryPageData {
            sub_dirs: Vec::new(),
            current_dir: "/workspace".into(),
            parent_dir: "/workspace".into(),
        };
        assert_eq!(page.render(&empty).unwrap(), render_string(&empty));
        let hostile = DirectoryPageData {
            sub_dirs: vec!["a<b&c".to_string()],
            current_dir: "/work \"quoted\"".into(),
            parent_dir: "/".into(),
        };
        assert_eq!(page.render(&hostile).unwrap(), render_string(&hostile));
    }

    #[test]
    fn string_page_is_valid_only_by_luck() {
        // the string page happens to be valid — prove it by parsing
        let c = compiled();
        let d = data();
        let page = render_string(&d);
        let doc = xmlparse::parse_document(&page).unwrap();
        assert!(validator::validate_document(&c, &doc).is_empty());
    }

    #[test]
    fn buggy_string_page_detected_only_downstream() {
        let d = data();
        let page = render_string_buggy(&d);
        // nothing stopped the generator; the output is not even well-formed
        assert!(xmlparse::parse_document(&page).is_err());
    }

    #[test]
    fn empty_directory_page() {
        let c = compiled();
        let d = DirectoryPageData {
            sub_dirs: Vec::new(),
            current_dir: "/workspace".into(),
            parent_dir: "/workspace".into(),
        };
        let page = render_vdom(&c, &d).unwrap();
        assert!(page.contains("<option value=\"/workspace\">..</option>"));
    }

    #[test]
    fn paths_with_markup_characters_are_escaped_everywhere() {
        let c = compiled();
        let d = DirectoryPageData {
            sub_dirs: vec!["a<b&c".to_string()],
            current_dir: "/work \"quoted\"".into(),
            parent_dir: "/".into(),
        };
        let s = render_string(&d);
        let v = render_vdom(&c, &d).unwrap();
        assert_eq!(s, v);
        assert!(v.contains("a&lt;b&amp;c"));
    }
}
