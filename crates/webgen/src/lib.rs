//! A minimal server-page substrate standing in for the WWW systems the
//! paper discusses (Java Server Pages, PHP, Informix Webdriver; Sect. 1
//! and 5), plus the synthetic workloads the evaluation drives.
//!
//! The crate hosts the four authoring styles the paper contrasts, all
//! rendering the *same* pages:
//!
//! * string concatenation (JSP-like, unchecked — and a deliberately
//!   buggy variant reproducing the Sect. 1 "Wrong Server Page");
//! * generic DOM + whole-document runtime validation;
//! * typed V-DOM construction;
//! * pre-checked P-XML templates.
//!
//! Workloads: a seeded synthetic media archive (the paper's media-archive
//! project is not available) and a purchase-order generator ("XML views
//! of databases"). Benches B1–B3 are built on these.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod directory_page;
pub mod html_page;
pub mod media;
pub mod orders;
pub mod registry;
pub mod session;

pub use directory_page::{
    render_dom, render_string, render_string_buggy, render_vdom, CompiledDirectoryPage,
    DirectoryPageData, PxmlDirectoryPage,
};
pub use html_page::{
    check_server_pages, simple_server_page_string, simple_server_page_vdom,
    wrong_server_page_string,
};
pub use media::{Directory, MediaArchive, MediaObject};
pub use orders::{
    build_order_dom, generate_order, render_order_dom, render_order_string, render_order_vdom,
    Address, Item, Order, OrderTemplates,
};
pub use pool::ThreadPool;
pub use registry::{PageError, RegisterError, SchemaRegistry, TemplateError};
pub use session::{DocSession, SessionError};
