//! The paper's opening example (Sect. 1): a Java Server Page that emits
//! an HTML page with a dynamic title — and the "Wrong Server Page" whose
//! markup typo every compiler accepts.
//!
//! Reproduced here against the XHTML-subset schema: the string version
//! can go wrong silently, the P-XML version of the same page is refused
//! by the static checker before anything runs.

use pxml::{check_template, PxmlError, Template, TypeEnv};
use schema::CompiledSchema;

/// The correct "Simple Server Page" as a string generator.
pub fn simple_server_page_string(title: &str, body_text: &str) -> String {
    format!(
        "<html><head><title>{t}</title></head><body><h1>{t}</h1><p>{b}</p></body></html>",
        t = xmlchars::escape_text(title),
        b = xmlchars::escape_text(body_text),
    )
}

/// The paper's "Wrong Server Page": the title element is accidentally
/// closed with the wrong tag. The host language is perfectly happy.
pub fn wrong_server_page_string(title: &str) -> String {
    format!(
        // </TITLE> typo'd into a second <title> — ill-formed output
        "<html><head><title>{t}<title></head><body></body></html>",
        t = xmlchars::escape_text(title),
    )
}

/// The same two pages as P-XML constructors. The correct one checks; the
/// wrong one is rejected statically (returns its diagnostics).
pub fn check_server_pages(compiled: &CompiledSchema) -> (Vec<PxmlError>, Vec<PxmlError>) {
    let env = TypeEnv::new().text("title").text("bodyText");
    let good = Template::parse(
        "<html><head><title>$title$</title></head>\
         <body><h1>$title$</h1><p>$bodyText$</p></body></html>",
    )
    .expect("well-formed template");
    let good_errors = check_template(compiled, &good, &env);

    // the "wrong" page: a structural typo — title under body's h1 slot
    // (a well-formed template that is *invalid* against the schema, the
    // analogue of the paper's wrong-output example at the template level)
    let wrong = Template::parse("<html><head></head><body><title>$title$</title></body></html>")
        .expect("well-formed template");
    let wrong_errors = check_template(compiled, &wrong, &env);
    (good_errors, wrong_errors)
}

/// Renders the correct page through the typed V-DOM API.
pub fn simple_server_page_vdom(
    compiled: &CompiledSchema,
    title: &str,
    body_text: &str,
) -> Result<String, vdom::VdomError> {
    let mut td = vdom::TypedDocument::new(compiled.clone());
    let html = td.create_root("html")?;
    let head = td.append_element(html, "head")?;
    let title_el = td.append_element(head, "title")?;
    td.append_text(title_el, title)?;
    let body = td.append_element(html, "body")?;
    let h1 = td.append_element(body, "h1")?;
    td.append_text(h1, title)?;
    let p = td.append_element(body, "p")?;
    td.append_text(p, body_text)?;
    let doc = td.seal()?;
    let root = doc.root_element().expect("root");
    Ok(dom::serialize(&doc, root).expect("serialize"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::corpus::XHTML_XSD;

    fn compiled() -> CompiledSchema {
        CompiledSchema::parse(XHTML_XSD).unwrap()
    }

    #[test]
    fn correct_page_agrees_across_backends() {
        let c = compiled();
        let s = simple_server_page_string("A Simple Server Page", "generated content");
        let v = simple_server_page_vdom(&c, "A Simple Server Page", "generated content").unwrap();
        assert_eq!(s, v);
        let doc = xmlparse::parse_document(&v).unwrap();
        assert!(validator::validate_document(&c, &doc).is_empty());
    }

    #[test]
    fn wrong_server_page_is_broken_and_undetected_at_build() {
        // the paper's point: the generator runs fine, the output is junk
        let page = wrong_server_page_string("A Wrong Server Page");
        assert!(xmlparse::parse_document(&page).is_err());
    }

    #[test]
    fn pxml_rejects_the_wrong_page_statically() {
        let c = compiled();
        let (good, wrong) = check_server_pages(&c);
        assert!(good.is_empty(), "{good:#?}");
        assert!(!wrong.is_empty());
    }

    #[test]
    fn typed_api_rejects_misplaced_title_at_call_site() {
        let c = compiled();
        let mut td = vdom::TypedDocument::new(c);
        let html = td.create_root("html").unwrap();
        let head = td.append_element(html, "head").unwrap();
        let _ = head;
        // body before title content is finished? try putting title in body
        let err = td.append_element(html, "body");
        // head's content (title) is not yet complete, but content models are
        // per-element: body is allowed after head ends; title goes in head:
        assert!(err.is_ok());
        let body = err.unwrap();
        assert!(td.append_element(body, "title").is_err());
    }
}
