//! A purchase-order generation workload (the paper's Sect. 1 "XML
//! generators … for example generators for Xml documents serving as
//! views of data bases"): random order data rendered through each
//! authoring style, used by benches B1/B2.

use pxml::{Bindings, CompiledTemplate, InstantiateError, Template, TypeEnv};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use schema::CompiledSchema;
use validator::ValidationError;
use vdom::{TypedDocument, VdomError};

/// One address record.
#[derive(Debug, Clone)]
pub struct Address {
    /// Recipient name.
    pub name: String,
    /// Street line.
    pub street: String,
    /// City.
    pub city: String,
    /// State code.
    pub state: String,
    /// ZIP code.
    pub zip: String,
}

/// One order line.
#[derive(Debug, Clone)]
pub struct Item {
    /// Part number (SKU `\d{3}-[A-Z]{2}`).
    pub part_num: String,
    /// Product name.
    pub product_name: String,
    /// Quantity (1–99).
    pub quantity: u32,
    /// Price in dollars.
    pub us_price: String,
    /// Optional note.
    pub comment: Option<String>,
}

/// A complete order.
#[derive(Debug, Clone)]
pub struct Order {
    /// Ship-to address.
    pub ship_to: Address,
    /// Bill-to address.
    pub bill_to: Address,
    /// Optional order note.
    pub comment: Option<String>,
    /// Order lines.
    pub items: Vec<Item>,
    /// ISO order date.
    pub order_date: String,
}

const FIRST: &[&str] = &["Alice", "Robert", "Carol", "David", "Erin", "Frank"];
const LAST: &[&str] = &["Smith", "Jones", "Miller", "Nguyen", "Garcia", "Kim"];
const STREETS: &[&str] = &["Maple Street", "Oak Avenue", "Pine Road", "Elm Way"];
const CITIES: &[&str] = &["Mill Valley", "Old Town", "Springfield", "Riverside"];
const STATES: &[&str] = &["CA", "PA", "TX", "WA", "OR", "NY"];
const PRODUCTS: &[&str] = &["Lawnmower", "Baby Monitor", "Rake", "Sprinkler", "Hose"];

fn gen_address(rng: &mut StdRng) -> Address {
    Address {
        name: format!(
            "{} {}",
            FIRST[rng.random_range(0..FIRST.len())],
            LAST[rng.random_range(0..LAST.len())]
        ),
        street: format!(
            "{} {}",
            rng.random_range(1..999),
            STREETS[rng.random_range(0..STREETS.len())]
        ),
        city: CITIES[rng.random_range(0..CITIES.len())].to_string(),
        state: STATES[rng.random_range(0..STATES.len())].to_string(),
        zip: format!("{}", rng.random_range(10000..99999)),
    }
}

/// Generates a deterministic order with `item_count` lines.
pub fn generate_order(seed: u64, item_count: usize) -> Order {
    let mut rng = StdRng::seed_from_u64(seed);
    let items = (0..item_count)
        .map(|_| Item {
            part_num: format!(
                "{:03}-{}{}",
                rng.random_range(0..1000),
                (b'A' + rng.random_range(0..26u8)) as char,
                (b'A' + rng.random_range(0..26u8)) as char
            ),
            product_name: PRODUCTS[rng.random_range(0..PRODUCTS.len())].to_string(),
            quantity: rng.random_range(1..100),
            us_price: format!(
                "{}.{:02}",
                rng.random_range(1..500),
                rng.random_range(0..100)
            ),
            comment: if rng.random_bool(0.3) {
                Some("Ship with care".to_string())
            } else {
                None
            },
        })
        .collect();
    Order {
        ship_to: gen_address(&mut rng),
        bill_to: gen_address(&mut rng),
        comment: Some("Hurry, my lawn is going wild".to_string()),
        items,
        order_date: format!(
            "{:04}-{:02}-{:02}",
            rng.random_range(1999..2003),
            rng.random_range(1..13),
            rng.random_range(1..29)
        ),
    }
}

fn push_escaped(out: &mut String, s: &str) {
    out.push_str(&xmlchars::escape_text(s));
}

/// JSP-style string rendering: unchecked concatenation.
pub fn render_order_string(order: &Order) -> String {
    let mut out = String::with_capacity(512 + order.items.len() * 160);
    out.push_str("<purchaseOrder orderDate=\"");
    out.push_str(&order.order_date);
    out.push_str("\">");
    for (tag, a) in [("shipTo", &order.ship_to), ("billTo", &order.bill_to)] {
        out.push('<');
        out.push_str(tag);
        out.push_str(" country=\"US\"><name>");
        push_escaped(&mut out, &a.name);
        out.push_str("</name><street>");
        push_escaped(&mut out, &a.street);
        out.push_str("</street><city>");
        push_escaped(&mut out, &a.city);
        out.push_str("</city><state>");
        push_escaped(&mut out, &a.state);
        out.push_str("</state><zip>");
        push_escaped(&mut out, &a.zip);
        out.push_str("</zip></");
        out.push_str(tag);
        out.push('>');
    }
    if let Some(c) = &order.comment {
        out.push_str("<comment>");
        push_escaped(&mut out, c);
        out.push_str("</comment>");
    }
    if order.items.is_empty() {
        out.push_str("<items/></purchaseOrder>");
        return out;
    }
    out.push_str("<items>");
    for item in &order.items {
        out.push_str("<item partNum=\"");
        out.push_str(&xmlchars::escape_attribute(&item.part_num));
        out.push_str("\"><productName>");
        push_escaped(&mut out, &item.product_name);
        out.push_str("</productName><quantity>");
        out.push_str(&item.quantity.to_string());
        out.push_str("</quantity><USPrice>");
        out.push_str(&item.us_price);
        out.push_str("</USPrice>");
        if let Some(c) = &item.comment {
            out.push_str("<comment>");
            push_escaped(&mut out, c);
            out.push_str("</comment>");
        }
        out.push_str("</item>");
    }
    out.push_str("</items></purchaseOrder>");
    out
}

/// Generic DOM rendering + full runtime validation.
pub fn render_order_dom(
    compiled: &CompiledSchema,
    order: &Order,
) -> Result<String, Vec<ValidationError>> {
    let mut doc = dom::Document::new();
    build_order_dom(&mut doc, order);
    let errors = validator::validate_document(compiled, &doc);
    if errors.is_empty() {
        let root = doc.root_element().expect("root");
        Ok(dom::serialize(&doc, root).expect("serialize"))
    } else {
        Err(errors)
    }
}

/// Builds the order into an (unvalidated) generic DOM — used both by the
/// DOM back end and by the validation benches.
pub fn build_order_dom(doc: &mut dom::Document, order: &Order) {
    let root = doc.create_element("purchaseOrder").expect("name");
    let dn = doc.document_node();
    doc.append_child(dn, root).expect("attach");
    doc.set_attribute(root, "orderDate", order.order_date.clone())
        .expect("attr");
    for (tag, a) in [("shipTo", &order.ship_to), ("billTo", &order.bill_to)] {
        let addr = doc.create_element(tag).expect("name");
        doc.append_child(root, addr).expect("attach");
        doc.set_attribute(addr, "country", "US").expect("attr");
        for (child, value) in [
            ("name", &a.name),
            ("street", &a.street),
            ("city", &a.city),
            ("state", &a.state),
            ("zip", &a.zip),
        ] {
            let el = doc.create_element(child).expect("name");
            doc.append_child(addr, el).expect("attach");
            let t = doc.create_text(value.clone());
            doc.append_child(el, t).expect("attach");
        }
    }
    if let Some(c) = &order.comment {
        let el = doc.create_element("comment").expect("name");
        doc.append_child(root, el).expect("attach");
        let t = doc.create_text(c.clone());
        doc.append_child(el, t).expect("attach");
    }
    let items = doc.create_element("items").expect("name");
    doc.append_child(root, items).expect("attach");
    for item in &order.items {
        let el = doc.create_element("item").expect("name");
        doc.append_child(items, el).expect("attach");
        doc.set_attribute(el, "partNum", item.part_num.clone())
            .expect("attr");
        for (child, value) in [
            ("productName", item.product_name.clone()),
            ("quantity", item.quantity.to_string()),
            ("USPrice", item.us_price.clone()),
        ] {
            let c = doc.create_element(child).expect("name");
            doc.append_child(el, c).expect("attach");
            let t = doc.create_text(value);
            doc.append_child(c, t).expect("attach");
        }
        if let Some(note) = &item.comment {
            let c = doc.create_element("comment").expect("name");
            doc.append_child(el, c).expect("attach");
            let t = doc.create_text(note.clone());
            doc.append_child(c, t).expect("attach");
        }
    }
}

/// Typed V-DOM rendering: incremental checking, no separate validation.
pub fn render_order_vdom(compiled: &CompiledSchema, order: &Order) -> Result<String, VdomError> {
    let mut td = TypedDocument::new(compiled.clone());
    let root = td.create_root("purchaseOrder")?;
    td.set_attribute(root, "orderDate", order.order_date.clone())?;
    for (tag, a) in [("shipTo", &order.ship_to), ("billTo", &order.bill_to)] {
        let addr = td.append_element(root, tag)?;
        td.set_attribute(addr, "country", "US")?;
        for (child, value) in [
            ("name", &a.name),
            ("street", &a.street),
            ("city", &a.city),
            ("state", &a.state),
            ("zip", &a.zip),
        ] {
            let el = td.append_element(addr, child)?;
            td.append_text(el, value.clone())?;
        }
    }
    if let Some(c) = &order.comment {
        let el = td.append_element(root, "comment")?;
        td.append_text(el, c.clone())?;
    }
    let items = td.append_element(root, "items")?;
    for item in &order.items {
        let el = td.append_element(items, "item")?;
        td.set_attribute(el, "partNum", item.part_num.clone())?;
        for (child, value) in [
            ("productName", item.product_name.clone()),
            ("quantity", item.quantity.to_string()),
            ("USPrice", item.us_price.clone()),
        ] {
            let c = td.append_element(el, child)?;
            td.append_text(c, value)?;
        }
        if let Some(note) = &item.comment {
            let c = td.append_element(el, "comment")?;
            td.append_text(c, note.clone())?;
        }
    }
    let doc = td.seal()?;
    let root = doc.root_element().expect("root");
    Ok(dom::serialize(&doc, root).expect("serialize"))
}

/// The order page constructor: static markup with `$var$` holes for the
/// runtime data. `$comment$` and `$lines$` are element holes filled with
/// zero-or-one / zero-or-more pre-rendered fragments.
pub const ORDER_PAGE_TEMPLATE: &str = "<purchaseOrder orderDate=\"$date$\">\
     <shipTo country=\"US\"><name>$shipName$</name><street>$shipStreet$</street>\
     <city>$shipCity$</city><state>$shipState$</state><zip>$shipZip$</zip></shipTo>\
     <billTo country=\"US\"><name>$billName$</name><street>$billStreet$</street>\
     <city>$billCity$</city><state>$billState$</state><zip>$billZip$</zip></billTo>\
     $comment$<items>$lines$</items></purchaseOrder>";

/// One order line; `$note$` takes zero-or-one `<comment>` fragments.
pub const ORDER_ITEM_TEMPLATE: &str = "<item partNum=\"$partNum$\">\
     <productName>$productName$</productName><quantity>$quantity$</quantity>\
     <USPrice>$usPrice$</USPrice>$note$</item>";

/// A `<comment>` fragment.
pub const ORDER_COMMENT_TEMPLATE: &str = "<comment>$text$</comment>";

/// The type environment of [`ORDER_PAGE_TEMPLATE`].
pub fn order_page_env() -> TypeEnv {
    TypeEnv::new()
        .text("date")
        .text("shipName")
        .text("shipStreet")
        .text("shipCity")
        .text("shipState")
        .text("shipZip")
        .text("billName")
        .text("billStreet")
        .text("billCity")
        .text("billState")
        .text("billZip")
        .element("comment", "comment")
        .element("lines", "item")
}

/// The type environment of [`ORDER_ITEM_TEMPLATE`].
pub fn order_item_env() -> TypeEnv {
    TypeEnv::new()
        .text("partNum")
        .text("productName")
        .text("quantity")
        .text("usPrice")
        .element("note", "comment")
}

/// The type environment of [`ORDER_COMMENT_TEMPLATE`].
pub fn order_comment_env() -> TypeEnv {
    TypeEnv::new().text("text")
}

/// The compiled-template order renderer: the page, item, and comment
/// constructors are checked and lowered **once** ([`pxml::plan`]); every
/// subsequent order renders through [`CompiledTemplate::render`] — static
/// bytes copied, holes escaped and spliced, with only the value-level
/// runtime residue (facets, fragment type and occurrence) still checked.
///
/// The same parsed templates drive [`render_interpreted`](Self::render_interpreted),
/// the `instantiate`-based oracle the differential tests compare against.
pub struct OrderTemplates {
    compiled: CompiledSchema,
    page: CompiledTemplate,
    item: CompiledTemplate,
    comment: CompiledTemplate,
    page_t: Template,
    item_t: Template,
    comment_t: Template,
}

impl OrderTemplates {
    /// Parses, checks, and lowers the three order constructors.
    pub fn new(compiled: &CompiledSchema) -> Result<OrderTemplates, Vec<pxml::PxmlError>> {
        let page_t = Template::parse(ORDER_PAGE_TEMPLATE).map_err(|e| vec![e])?;
        let item_t = Template::parse(ORDER_ITEM_TEMPLATE).map_err(|e| vec![e])?;
        let comment_t = Template::parse(ORDER_COMMENT_TEMPLATE).map_err(|e| vec![e])?;
        let page = pxml::plan(compiled, &page_t, &order_page_env())?;
        let item = pxml::plan(compiled, &item_t, &order_item_env())?;
        let comment = pxml::plan(compiled, &comment_t, &order_comment_env())?;
        Ok(OrderTemplates {
            compiled: compiled.clone(),
            page,
            item,
            comment,
            page_t,
            item_t,
            comment_t,
        })
    }

    /// The compiled page plan (for callers that bind their own data).
    pub fn page(&self) -> &CompiledTemplate {
        &self.page
    }

    fn page_bindings(order: &Order) -> Bindings {
        Bindings::new()
            .text("date", order.order_date.clone())
            .text("shipName", order.ship_to.name.clone())
            .text("shipStreet", order.ship_to.street.clone())
            .text("shipCity", order.ship_to.city.clone())
            .text("shipState", order.ship_to.state.clone())
            .text("shipZip", order.ship_to.zip.clone())
            .text("billName", order.bill_to.name.clone())
            .text("billStreet", order.bill_to.street.clone())
            .text("billCity", order.bill_to.city.clone())
            .text("billState", order.bill_to.state.clone())
            .text("billZip", order.bill_to.zip.clone())
    }

    fn item_bindings(item: &Item) -> Bindings {
        Bindings::new()
            .text("partNum", item.part_num.clone())
            .text("productName", item.product_name.clone())
            .text("quantity", item.quantity.to_string())
            .text("usPrice", item.us_price.clone())
    }

    /// Renders one order through the compiled path, appending to `out`.
    pub fn render_compiled_into(
        &self,
        order: &Order,
        out: &mut Vec<u8>,
    ) -> Result<(), InstantiateError> {
        let mut lines = Vec::with_capacity(order.items.len());
        // one bindings map reused across the line loop: only the values
        // change per item
        let mut row = Bindings::new();
        for item in &order.items {
            let note = match &item.comment {
                Some(c) => vec![self
                    .comment
                    .render_fragment(&Bindings::new().text("text", c.clone()))?],
                None => Vec::new(),
            };
            row.set_text("partNum", item.part_num.clone());
            row.set_text("productName", item.product_name.clone());
            row.set_text("quantity", item.quantity.to_string());
            row.set_text("usPrice", item.us_price.clone());
            row.set_rendered_list("note", note);
            lines.push(self.item.render_fragment(&row)?);
        }
        let comment = match &order.comment {
            Some(c) => vec![self
                .comment
                .render_fragment(&Bindings::new().text("text", c.clone()))?],
            None => Vec::new(),
        };
        let bindings = Self::page_bindings(order)
            .rendered_list("comment", comment)
            .rendered_list("lines", lines);
        self.page.render(&bindings, out)
    }

    /// Renders one order through the compiled path.
    pub fn render_compiled(&self, order: &Order) -> Result<String, InstantiateError> {
        let mut out = Vec::with_capacity(self.page.static_len() as usize + 64);
        self.render_compiled_into(order, &mut out)?;
        Ok(String::from_utf8(out).expect("rendered pages are UTF-8"))
    }

    /// Renders one order through the interpreter
    /// ([`pxml::instantiate`]) — the differential oracle for
    /// [`render_compiled`](Self::render_compiled): same templates, same
    /// bindings, full V-DOM construction and seal per page.
    pub fn render_interpreted(&self, order: &Order) -> Result<String, InstantiateError> {
        let mut lines = Vec::with_capacity(order.items.len());
        for item in &order.items {
            let note = match &item.comment {
                Some(c) => vec![pxml::instantiate(
                    &self.compiled,
                    &self.comment_t,
                    &Bindings::new().text("text", c.clone()),
                )?],
                None => Vec::new(),
            };
            lines.push(pxml::instantiate(
                &self.compiled,
                &self.item_t,
                &Self::item_bindings(item).fragment_list("note", note),
            )?);
        }
        let comment = match &order.comment {
            Some(c) => vec![pxml::instantiate(
                &self.compiled,
                &self.comment_t,
                &Bindings::new().text("text", c.clone()),
            )?],
            None => Vec::new(),
        };
        let bindings = Self::page_bindings(order)
            .fragment_list("comment", comment)
            .fragment_list("lines", lines);
        let frag = pxml::instantiate(&self.compiled, &self.page_t, &bindings)?;
        frag.to_xml()
            .map_err(|e| InstantiateError::Binding(format!("serialize: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::corpus::PURCHASE_ORDER_XSD;

    fn compiled() -> CompiledSchema {
        CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap()
    }

    #[test]
    fn order_generation_is_deterministic() {
        let a = generate_order(1, 5);
        let b = generate_order(1, 5);
        assert_eq!(a.ship_to.name, b.ship_to.name);
        assert_eq!(a.items.len(), 5);
        assert_eq!(a.items[0].part_num, b.items[0].part_num);
    }

    #[test]
    fn backends_agree_and_validate() {
        let c = compiled();
        for n in [0, 1, 10] {
            let order = generate_order(99, n);
            let s = render_order_string(&order);
            let d = render_order_dom(&c, &order).unwrap();
            let v = render_order_vdom(&c, &order).unwrap();
            assert_eq!(s, d, "n={n}");
            assert_eq!(d, v, "n={n}");
            let doc = xmlparse::parse_document(&v).unwrap();
            assert!(validator::validate_document(&c, &doc).is_empty());
        }
    }

    #[test]
    fn compiled_templates_agree_with_every_backend() {
        let c = compiled();
        let tpl = OrderTemplates::new(&c).unwrap();
        for n in [0, 1, 10] {
            let order = generate_order(99, n);
            let s = render_order_string(&order);
            let compiled_page = tpl.render_compiled(&order).unwrap();
            let interpreted = tpl.render_interpreted(&order).unwrap();
            assert_eq!(compiled_page, s, "n={n}");
            assert_eq!(compiled_page, interpreted, "n={n}");
            let doc = xmlparse::parse_document(&compiled_page).unwrap();
            assert!(validator::validate_document(&c, &doc).is_empty());
        }
    }

    #[test]
    fn compiled_templates_reject_facet_violations_like_the_interpreter() {
        let c = compiled();
        let tpl = OrderTemplates::new(&c).unwrap();
        let mut order = generate_order(3, 2);
        order.items[1].part_num = "WRONG".to_string(); // fails the SKU pattern
        let ce = tpl.render_compiled(&order).unwrap_err();
        let ie = tpl.render_interpreted(&order).unwrap_err();
        assert_eq!(format!("{ce}"), format!("{ie}"));
    }

    #[test]
    fn hostile_order_data_is_escaped_identically() {
        let c = compiled();
        let tpl = OrderTemplates::new(&c).unwrap();
        let mut order = generate_order(7, 1);
        order.ship_to.name = "Ada <&> \"Lovelace\"".to_string();
        order.comment = Some("5 < 6 && ]]> ok".to_string());
        order.items[0].comment = Some("handle > with \"care\"".to_string());
        let compiled_page = tpl.render_compiled(&order).unwrap();
        let interpreted = tpl.render_interpreted(&order).unwrap();
        assert_eq!(compiled_page, interpreted);
        let doc = xmlparse::parse_document(&compiled_page).unwrap();
        assert!(validator::validate_document(&c, &doc).is_empty());
    }

    #[test]
    fn generated_skus_match_the_pattern() {
        let order = generate_order(5, 50);
        let sku = xsdregex::Regex::parse(r"\d{3}-[A-Z]{2}").unwrap();
        for item in &order.items {
            assert!(sku.is_match(&item.part_num), "{}", item.part_num);
            assert!(item.quantity >= 1 && item.quantity < 100);
        }
    }
}
