//! A synthetic media archive, standing in for the paper's media archive
//! project (Sect. 1/5: "The page which is taken from our media archive
//! project generates the current directory in the media structure").
//!
//! The real archive's content is not available, so we generate a
//! deterministic directory tree from a seed; what matters for the
//! reproduction is the *shape* of the workload — a current directory
//! with a parent and a list of subdirectories driving the WML page.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One directory in the archive.
#[derive(Debug, Clone)]
pub struct Directory {
    /// Directory name (last path segment).
    pub name: String,
    /// Child directories.
    pub children: Vec<Directory>,
}

/// The media archive: a rooted directory tree.
#[derive(Debug, Clone)]
pub struct MediaArchive {
    root: Directory,
}

/// A cursor into the archive — the equivalent of the paper's `mdmo`
/// media object (`getChilds`, `getFullPath`, `getName`).
#[derive(Debug, Clone)]
pub struct MediaObject<'a> {
    archive: &'a MediaArchive,
    /// Path of indices from the root.
    path: Vec<usize>,
}

const NAME_PARTS: &[&str] = &[
    "audio", "video", "images", "lectures", "slides", "raw", "masters", "exports", "archive",
    "projects", "sessions", "clips", "intro", "chapter", "final", "draft",
];

impl MediaArchive {
    /// Generates an archive with roughly `breadth` children per node and
    /// the given `depth`, deterministically from `seed`.
    pub fn generate(seed: u64, breadth: usize, depth: usize) -> MediaArchive {
        let mut rng = StdRng::seed_from_u64(seed);
        let root = gen_dir(&mut rng, "workspace", breadth, depth);
        MediaArchive { root }
    }

    /// A cursor at the archive root.
    pub fn root(&self) -> MediaObject<'_> {
        MediaObject {
            archive: self,
            path: Vec::new(),
        }
    }

    /// Total number of directories.
    pub fn len(&self) -> usize {
        fn count(d: &Directory) -> usize {
            1 + d.children.iter().map(count).sum::<usize>()
        }
        count(&self.root)
    }

    /// Whether the archive has only the root.
    pub fn is_empty(&self) -> bool {
        self.root.children.is_empty()
    }
}

fn gen_dir(rng: &mut StdRng, name: &str, breadth: usize, depth: usize) -> Directory {
    let children = if depth == 0 {
        Vec::new()
    } else {
        let n = if breadth == 0 {
            0
        } else {
            rng.random_range(1..=breadth)
        };
        (0..n)
            .map(|i| {
                let part = NAME_PARTS[rng.random_range(0..NAME_PARTS.len())];
                let child_name = format!("{part}{:02}", i + 1);
                gen_dir(rng, &child_name, breadth, depth - 1)
            })
            .collect()
    };
    Directory {
        name: name.to_string(),
        children,
    }
}

impl<'a> MediaObject<'a> {
    fn dir(&self) -> &'a Directory {
        let mut d = &self.archive.root;
        for &i in &self.path {
            d = &d.children[i];
        }
        d
    }

    /// The directory's own name (paper: `getName`).
    pub fn get_name(&self) -> &str {
        &self.dir().name
    }

    /// Names of child directories (paper: `getChilds`).
    pub fn get_childs(&self) -> Vec<String> {
        self.dir().children.iter().map(|c| c.name.clone()).collect()
    }

    /// The full path from the root (paper: `getFullPath`).
    pub fn get_full_path(&self) -> String {
        let mut parts = vec![self.archive.root.name.clone()];
        let mut d = &self.archive.root;
        for &i in &self.path {
            d = &d.children[i];
            parts.push(d.name.clone());
        }
        format!("/{}", parts.join("/"))
    }

    /// The parent directory's full path (`/workspace` at the root, as in
    /// the paper's fallback).
    pub fn parent_path(&self) -> String {
        if self.path.is_empty() {
            return "/workspace".to_string();
        }
        let mut up = self.clone();
        up.path.pop();
        up.get_full_path()
    }

    /// Descends into the `i`-th child.
    pub fn child(&self, i: usize) -> Option<MediaObject<'a>> {
        if i < self.dir().children.len() {
            let mut path = self.path.clone();
            path.push(i);
            Some(MediaObject {
                archive: self.archive,
                path,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = MediaArchive::generate(42, 4, 3);
        let b = MediaArchive::generate(42, 4, 3);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.root().get_childs(), b.root().get_childs());
        let c = MediaArchive::generate(43, 4, 3);
        // different seed, almost surely different tree
        assert!(a.len() != c.len() || a.root().get_childs() != c.root().get_childs());
    }

    #[test]
    fn cursor_navigation() {
        let a = MediaArchive::generate(7, 3, 2);
        let root = a.root();
        assert_eq!(root.get_full_path(), "/workspace");
        assert_eq!(root.parent_path(), "/workspace");
        if let Some(child) = root.child(0) {
            assert!(child.get_full_path().starts_with("/workspace/"));
            assert_eq!(child.parent_path(), "/workspace");
            assert_eq!(child.get_name(), root.get_childs()[0]);
        }
        assert!(root.child(999).is_none());
    }

    #[test]
    fn depth_zero_has_no_children() {
        let a = MediaArchive::generate(1, 5, 0);
        assert!(a.is_empty());
        assert_eq!(a.len(), 1);
    }
}
