//! Resource governance for the validation pipeline: per-document budgets,
//! deadlines, and cooperative cancellation.
//!
//! The fast path built in earlier revisions assumes well-behaved input; a
//! production deployment does not get that luxury. A single hostile
//! document — pathological nesting, a megabyte attribute list, a flood of
//! entity references — must cost a bounded amount of CPU and memory and
//! then be rejected with a *typed* error, never a panic, an OOM, or a
//! stalled worker.
//!
//! [`Limits`] is the budget record threaded through the whole pipeline:
//!
//! * `xmlparse::Reader` enforces the parse-side budgets (input size,
//!   element depth, attribute count and value length, entity-expansion
//!   volume);
//! * `validator::StreamingValidator` enforces the collection-side budgets
//!   (maximum collected errors, deadline, cancellation);
//! * `webgen::SchemaRegistry` batch entry points check the deadline /
//!   [`CancelToken`] between documents so a parallel batch can be aborted
//!   cleanly mid-flight.
//!
//! A tripped budget surfaces as a [`ResourceErrorKind`] — deliberately
//! distinct from well-formedness and validity errors, because the
//! document was not proven wrong, the *checking* was stopped. Every trip
//! is counted in the `limit_trips_total` metric (labelled by kind).
//!
//! [`Limits::default`] is tuned so that legitimate documents never
//! notice the governor (the corpora of benches B1–B10 validate
//! byte-identically with it), while each committed hostile corpus
//! document under `tests/corpora/hostile/` trips it in well under 100ms.
//! [`Limits::unbounded`] reproduces pre-governance behavior exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A budget violation: which limit tripped, with enough context to log a
/// useful rejection. Embedded in `xmlparse::ParseErrorKind::Resource`
/// (with the position where the budget tripped) and
/// `validator::ValidationErrorKind::Resource` (with the span).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceErrorKind {
    /// The document exceeds the input-size budget before parsing starts.
    InputTooLarge {
        /// The configured ceiling, in bytes.
        limit: usize,
        /// The document's actual size, in bytes.
        actual: usize,
    },
    /// Element nesting deeper than the depth budget.
    DepthExceeded {
        /// The configured ceiling on open elements.
        limit: usize,
    },
    /// More attributes on one element than the attribute budget.
    TooManyAttributes {
        /// The configured per-element ceiling.
        limit: usize,
    },
    /// One attribute value longer (raw bytes) than the value budget.
    AttributeValueTooLong {
        /// The configured ceiling, in bytes.
        limit: usize,
        /// The offending value's raw length, in bytes.
        actual: usize,
    },
    /// More entity/character references resolved than the expansion
    /// budget — the billion-laughs guard. (DTD entity definitions are
    /// rejected outright by the parser, so amplification here can only
    /// come from reference *flooding*; the count cap bounds it.)
    TooManyExpansions {
        /// The configured per-document ceiling on resolved references.
        limit: u64,
    },
    /// Cumulative expansion output larger than the amplification budget.
    ExpansionTooLarge {
        /// The configured ceiling on expanded bytes.
        limit: usize,
    },
    /// The validator hit its error-collection cap; the error list is the
    /// exact prefix of the unbounded run, ending with this marker.
    TooManyErrors {
        /// The configured ceiling on collected errors.
        limit: usize,
    },
    /// One patch payload larger (raw bytes) than the patch-size budget.
    PatchTooLarge {
        /// The configured ceiling, in bytes.
        limit: usize,
        /// The payload's actual size, in bytes.
        actual: usize,
    },
    /// More patches applied to one session than the patch-count budget.
    TooManyPatches {
        /// The configured per-session ceiling on applied patches.
        limit: u64,
    },
    /// The per-request deadline passed before validation finished.
    DeadlineExceeded,
    /// The request's [`CancelToken`] was cancelled.
    Cancelled,
}

impl ResourceErrorKind {
    /// A stable, payload-free name for this kind — the `kind` label of
    /// the `limit_trips_total` metric.
    pub fn label(&self) -> &'static str {
        match self {
            ResourceErrorKind::InputTooLarge { .. } => "InputTooLarge",
            ResourceErrorKind::DepthExceeded { .. } => "DepthExceeded",
            ResourceErrorKind::TooManyAttributes { .. } => "TooManyAttributes",
            ResourceErrorKind::AttributeValueTooLong { .. } => "AttributeValueTooLong",
            ResourceErrorKind::TooManyExpansions { .. } => "TooManyExpansions",
            ResourceErrorKind::ExpansionTooLarge { .. } => "ExpansionTooLarge",
            ResourceErrorKind::TooManyErrors { .. } => "TooManyErrors",
            ResourceErrorKind::PatchTooLarge { .. } => "PatchTooLarge",
            ResourceErrorKind::TooManyPatches { .. } => "TooManyPatches",
            ResourceErrorKind::DeadlineExceeded => "DeadlineExceeded",
            ResourceErrorKind::Cancelled => "Cancelled",
        }
    }
}

impl fmt::Display for ResourceErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceErrorKind::InputTooLarge { limit, actual } => {
                write!(f, "input is {actual} bytes, over the {limit}-byte budget")
            }
            ResourceErrorKind::DepthExceeded { limit } => {
                write!(f, "element nesting deeper than the budget of {limit}")
            }
            ResourceErrorKind::TooManyAttributes { limit } => {
                write!(f, "more than {limit} attributes on one element")
            }
            ResourceErrorKind::AttributeValueTooLong { limit, actual } => {
                write!(
                    f,
                    "attribute value is {actual} bytes, over the {limit}-byte budget"
                )
            }
            ResourceErrorKind::TooManyExpansions { limit } => {
                write!(f, "more than {limit} entity/character references resolved")
            }
            ResourceErrorKind::ExpansionTooLarge { limit } => {
                write!(f, "entity expansion produced more than {limit} bytes")
            }
            ResourceErrorKind::TooManyErrors { limit } => {
                write!(f, "more than {limit} errors collected; checking stopped")
            }
            ResourceErrorKind::PatchTooLarge { limit, actual } => {
                write!(f, "patch is {actual} bytes, over the {limit}-byte budget")
            }
            ResourceErrorKind::TooManyPatches { limit } => {
                write!(f, "more than {limit} patches applied to one session")
            }
            ResourceErrorKind::DeadlineExceeded => write!(f, "validation deadline exceeded"),
            ResourceErrorKind::Cancelled => write!(f, "validation cancelled"),
        }
    }
}

/// A shared cancellation flag: clone it into every worker touching a
/// request, flip it once from anywhere, and every holder observes the
/// cancellation at its next between-documents check. Cloning shares the
/// flag (`Arc`-backed); cancellation is sticky.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Flips the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](Self::cancel) has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// The per-document/per-request resource budget.
///
/// All fields are public and the `with_*` builders are sugar; a ceiling
/// of `usize::MAX` / `u64::MAX` (as set by [`Limits::unbounded`])
/// disables the corresponding check.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum document size in bytes, checked before parsing starts.
    pub max_input_bytes: usize,
    /// Maximum depth of open elements.
    pub max_depth: usize,
    /// Maximum attributes on a single element.
    pub max_attributes: usize,
    /// Maximum raw byte length of a single attribute value.
    pub max_attr_value_bytes: usize,
    /// Maximum entity/character references resolved per document.
    pub max_entity_expansions: u64,
    /// Maximum cumulative bytes produced by reference expansion per
    /// document (the amplification guard).
    pub max_expansion_bytes: usize,
    /// Maximum validation errors collected before checking stops.
    pub max_errors: usize,
    /// Maximum raw byte length of a single patch payload (text, attribute
    /// value, or fragment markup) in an incremental-revalidation session.
    pub max_patch_bytes: usize,
    /// Maximum patches applied over the lifetime of one
    /// incremental-revalidation session (the patch-flood guard).
    pub max_patches: u64,
    /// Absolute deadline; work stops at the next check once passed.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation; work stops at the next check once
    /// cancelled.
    pub cancel: Option<CancelToken>,
}

impl Default for Limits {
    /// Production-sane ceilings: far above anything a legitimate document
    /// in the corpora produces, far below what a hostile document needs.
    fn default() -> Limits {
        Limits {
            max_input_bytes: 64 << 20,
            max_depth: 1024,
            max_attributes: 4096,
            max_attr_value_bytes: 64 << 10,
            max_entity_expansions: 10_000,
            max_expansion_bytes: 1 << 20,
            max_errors: 1000,
            max_patch_bytes: 1 << 20,
            max_patches: 100_000,
            deadline: None,
            cancel: None,
        }
    }
}

impl Limits {
    /// Every ceiling at its maximum, no deadline, no cancellation —
    /// byte-identical to pre-governance behavior.
    pub fn unbounded() -> Limits {
        Limits {
            max_input_bytes: usize::MAX,
            max_depth: usize::MAX,
            max_attributes: usize::MAX,
            max_attr_value_bytes: usize::MAX,
            max_entity_expansions: u64::MAX,
            max_expansion_bytes: usize::MAX,
            max_errors: usize::MAX,
            max_patch_bytes: usize::MAX,
            max_patches: u64::MAX,
            deadline: None,
            cancel: None,
        }
    }

    /// Replaces the input-size ceiling.
    pub fn with_max_input_bytes(mut self, n: usize) -> Limits {
        self.max_input_bytes = n;
        self
    }

    /// Replaces the element-depth ceiling.
    pub fn with_max_depth(mut self, n: usize) -> Limits {
        self.max_depth = n;
        self
    }

    /// Replaces the per-element attribute-count ceiling.
    pub fn with_max_attributes(mut self, n: usize) -> Limits {
        self.max_attributes = n;
        self
    }

    /// Replaces the attribute-value length ceiling.
    pub fn with_max_attr_value_bytes(mut self, n: usize) -> Limits {
        self.max_attr_value_bytes = n;
        self
    }

    /// Replaces the reference-count ceiling.
    pub fn with_max_entity_expansions(mut self, n: u64) -> Limits {
        self.max_entity_expansions = n;
        self
    }

    /// Replaces the expansion-output ceiling.
    pub fn with_max_expansion_bytes(mut self, n: usize) -> Limits {
        self.max_expansion_bytes = n;
        self
    }

    /// Replaces the error-collection ceiling.
    pub fn with_max_errors(mut self, n: usize) -> Limits {
        self.max_errors = n;
        self
    }

    /// Replaces the patch-payload length ceiling.
    pub fn with_max_patch_bytes(mut self, n: usize) -> Limits {
        self.max_patch_bytes = n;
        self
    }

    /// Replaces the per-session patch-count ceiling.
    pub fn with_max_patches(mut self, n: u64) -> Limits {
        self.max_patches = n;
        self
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, at: Instant) -> Limits {
        self.deadline = Some(at);
        self
    }

    /// Sets the deadline `d` from now.
    pub fn with_deadline_in(self, d: Duration) -> Limits {
        self.with_deadline(Instant::now() + d)
    }

    /// Attaches a cancellation token (a clone; the caller keeps theirs).
    pub fn with_cancel_token(mut self, token: &CancelToken) -> Limits {
        self.cancel = Some(token.clone());
        self
    }

    /// Whether this budget carries a deadline or a cancellation token at
    /// all — lets hot loops skip the clock entirely when it does not.
    pub fn has_clock(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// The budget's time/cancellation state: `Some(kind)` once the token
    /// is cancelled ([`ResourceErrorKind::Cancelled`]) or the deadline
    /// has passed ([`ResourceErrorKind::DeadlineExceeded`]).
    pub fn expired_kind(&self) -> Option<ResourceErrorKind> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(ResourceErrorKind::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(ResourceErrorKind::DeadlineExceeded);
            }
        }
        None
    }
}

/// Counts one budget trip in `limit_trips_total`, labelled by kind. Call
/// once at the point where the violation is first constructed (not where
/// it is re-wrapped), so each rejection counts exactly once.
pub fn record_trip(kind: &ResourceErrorKind) {
    if !obs::enabled() {
        return;
    }
    obs::metrics()
        .counter_with(
            "limit_trips_total",
            "Resource-budget violations, by limit kind.",
            &[("kind", kind.label())],
        )
        .inc();
}

/// Counts one document rejected for resource reasons in
/// `docs_rejected_total`.
pub fn record_rejected() {
    if !obs::enabled() {
        return;
    }
    obs::metrics()
        .counter(
            "docs_rejected_total",
            "Documents rejected by a resource budget.",
        )
        .inc();
}

/// Counts one parallel batch aborted mid-flight in
/// `batch_cancelled_total`.
pub fn record_batch_cancelled() {
    if !obs::enabled() {
        return;
    }
    obs::metrics()
        .counter(
            "batch_cancelled_total",
            "Validation batches aborted by deadline or cancellation.",
        )
        .inc();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_bounded_and_unbounded_is_not() {
        let d = Limits::default();
        assert!(d.max_depth < usize::MAX);
        assert!(d.max_entity_expansions < u64::MAX);
        assert!(!d.has_clock());
        let u = Limits::unbounded();
        assert_eq!(u.max_depth, usize::MAX);
        assert_eq!(u.max_errors, usize::MAX);
        assert!(u.expired_kind().is_none());
    }

    #[test]
    fn builders_replace_fields() {
        let l = Limits::default()
            .with_max_depth(3)
            .with_max_attributes(7)
            .with_max_input_bytes(11)
            .with_max_attr_value_bytes(13)
            .with_max_entity_expansions(17)
            .with_max_expansion_bytes(19)
            .with_max_errors(23)
            .with_max_patch_bytes(29)
            .with_max_patches(31);
        assert_eq!(l.max_depth, 3);
        assert_eq!(l.max_attributes, 7);
        assert_eq!(l.max_input_bytes, 11);
        assert_eq!(l.max_attr_value_bytes, 13);
        assert_eq!(l.max_entity_expansions, 17);
        assert_eq!(l.max_expansion_bytes, 19);
        assert_eq!(l.max_errors, 23);
        assert_eq!(l.max_patch_bytes, 29);
        assert_eq!(l.max_patches, 31);
    }

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        token.cancel(); // idempotent
        assert!(token.is_cancelled());
    }

    #[test]
    fn expired_kind_prefers_cancellation() {
        let token = CancelToken::new();
        let l = Limits::default()
            .with_cancel_token(&token)
            .with_deadline(Instant::now() - Duration::from_secs(1));
        assert!(l.has_clock());
        // deadline already passed
        assert_eq!(l.expired_kind(), Some(ResourceErrorKind::DeadlineExceeded));
        token.cancel();
        assert_eq!(l.expired_kind(), Some(ResourceErrorKind::Cancelled));
    }

    #[test]
    fn future_deadline_does_not_expire() {
        let l = Limits::default().with_deadline_in(Duration::from_secs(3600));
        assert_eq!(l.expired_kind(), None);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            ResourceErrorKind::DepthExceeded { limit: 1 }.label(),
            "DepthExceeded"
        );
        assert_eq!(ResourceErrorKind::Cancelled.label(), "Cancelled");
    }

    #[test]
    fn display_is_human_readable() {
        let shown = ResourceErrorKind::InputTooLarge {
            limit: 10,
            actual: 20,
        }
        .to_string();
        assert!(shown.contains("20 bytes"), "{shown}");
        assert!(shown.contains("10-byte"), "{shown}");
    }
}
