//! Validation-as-a-service: a std-only HTTP/1.1 front end for the
//! streaming validation pipeline.
//!
//! Everything below the wire already existed — zero-copy streaming
//! validation, pool fan-out, [`Limits`] governance, metrics and the
//! flight recorder. This crate is the piece that carries traffic to it:
//! a blocking-accept listener whose connections are handled on
//! [`pool::ThreadPool`] workers (no async runtime, no dependencies —
//! the same discipline as `pool` and `limits`), speaking enough
//! HTTP/1.1 to survive hostile clients: keep-alive with pipelining,
//! chunked and fixed-length bodies, absolute per-request read
//! deadlines, a connection cap, and graceful drain.
//!
//! # Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/validate/{schema}` | Stream the body through the chunked validator; JSON verdict. |
//! | `POST /v1/batch/{schema}` | Length-prefixed frames fanned out across the batch pool. |
//! | `PUT /v1/schemas/{name}` | Compile and hot-swap a schema registration. |
//! | `POST /v1/session/{schema}` | Open a patchable validated-document session over the body. |
//! | `POST /v1/session/{id}/patch` | Apply one JSON-encoded [`DomPatch`](validator::DomPatch); incremental revalidation decides. |
//! | `GET /v1/session/{id}` | The session's current (always valid) document, as XML. |
//! | `DELETE /v1/session/{id}` | Close a session. |
//! | `GET /v1/page/orders/{seed}/{count}` | A synthetic purchase order rendered through compiled P-XML templates. |
//! | `GET /v1/page/directory/{seed}/{breadth}/{depth}` | The Sect. 5 WML directory page, compiled-template path. |
//! | `GET /metrics` | The process-global Prometheus exporter. |
//! | `GET /healthz` | `ok` while serving, `draining` (503) once drain begins. |
//!
//! Request bodies are *never* buffered whole on the validate path: the
//! socket streams through [`http::Body`] into
//! `SchemaRegistry::validate_streaming_reader`, so a multi-gigabyte
//! document validates in O(depth) memory — and a hostile one is cut off
//! by the tenant's budget ([`TenantTable`], selected by the `X-Tenant`
//! header) with a typed `Resource` kind in the JSON error body: `413`
//! for the input-size budget, `422` for depth/attribute/expansion/
//! deadline trips.
//!
//! # Drain
//!
//! [`Server::shutdown`] flips the drain flag: the acceptor stops
//! accepting (new connects are refused once the listener closes),
//! idle keep-alive connections close at their next poll, in-flight
//! requests run to completion, and [`Server::join`] blocks until the
//! last one has. Nothing in-flight is cancelled — `batch_cancelled_total`
//! stays untouched by a drain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod json;
pub mod session;
pub mod tenants;

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use limits::{CancelToken, Limits, ResourceErrorKind};
use pool::ThreadPool;
use validator::{ValidationError, ValidationErrorKind};
use webgen::{CompiledDirectoryPage, OrderTemplates, SchemaRegistry};

use http::{Body, Conn, Framing, HttpError, Request};
pub use tenants::{TenantTable, TENANT_HEADER};

/// How much of an unconsumed request body the server reads and discards
/// to keep a connection reusable; a bigger remainder closes instead.
const BODY_DRAIN_CAP: usize = 64 << 10;

/// Tuning for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection-handling pool workers — the concurrency ceiling for
    /// simultaneously *served* connections (more may be accepted and
    /// queued, up to `max_connections`).
    pub conn_workers: usize,
    /// Workers in the separate fan-out pool `/v1/batch` uses. Separate
    /// because a batch fan-out from inside a connection worker of the
    /// same pool would deadlock.
    pub batch_threads: usize,
    /// Accepted-but-unfinished connection cap; beyond it new connects
    /// are answered `503` and closed immediately.
    pub max_connections: usize,
    /// Absolute per-request deadline: covers reading the head and body
    /// *and* is wired into the request's [`Limits`] as the validation
    /// deadline, so a slowloris body and a pathological document trip
    /// the same clock.
    pub request_deadline: Duration,
    /// Socket write timeout for responses.
    pub write_deadline: Duration,
    /// How long an idle keep-alive connection is held open.
    pub keep_alive_idle: Duration,
    /// Maximum documents per `/v1/batch` request.
    pub max_batch_docs: usize,
    /// Maximum schema-upload body, in bytes.
    pub max_schema_bytes: usize,
    /// Live patch-session cap (`POST /v1/session/{schema}`); beyond it
    /// new sessions are refused with `503` until one expires or closes.
    pub max_sessions: usize,
    /// How long an untouched patch session is kept before the sweeper
    /// evicts it (checked on every session-table access).
    pub session_idle: Duration,
    /// Per-tenant admission table (`X-Tenant` header).
    pub tenants: TenantTable,
    /// Kill switch threaded into every request's [`Limits`]: cancelling
    /// it aborts all in-flight validation with typed `Cancelled`
    /// markers. A graceful drain does *not* trip it.
    pub cancel: CancelToken,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            conn_workers: 8,
            batch_threads: 4,
            max_connections: 256,
            request_deadline: Duration::from_secs(10),
            write_deadline: Duration::from_secs(10),
            keep_alive_idle: Duration::from_secs(5),
            max_batch_docs: 256,
            max_schema_bytes: 1 << 20,
            max_sessions: 64,
            session_idle: Duration::from_secs(60),
            tenants: TenantTable::default(),
            cancel: CancelToken::new(),
        }
    }
}

pub(crate) struct Shared {
    pub(crate) registry: Arc<SchemaRegistry>,
    pub(crate) cfg: ServerConfig,
    pub(crate) draining: AtomicBool,
    pub(crate) active: AtomicUsize,
    pub(crate) batch_pool: ThreadPool,
    /// Compiled page plans, built lazily from the registered schemas on
    /// the first page request and dropped when the schema is hot-swapped.
    order_templates: RwLock<Option<Arc<OrderTemplates>>>,
    directory_page: RwLock<Option<Arc<CompiledDirectoryPage>>>,
    /// Live patch sessions (`/v1/session/…`).
    pub(crate) sessions: session::SessionTable,
}

/// A running validation service; see the crate docs for the endpoints.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<thread::JoinHandle<()>>,
    conn_pool: Option<Arc<ThreadPool>>,
}

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port; see
    /// [`addr`](Self::addr)) and starts accepting. The acceptor runs on
    /// its own thread; connections are handled on `conn_workers` pool
    /// workers.
    pub fn start(
        registry: Arc<SchemaRegistry>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        // nonblocking accept + short sleeps lets the acceptor observe
        // the drain flag without a wake-up channel
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let conn_pool = Arc::new(ThreadPool::new(cfg.conn_workers));
        let shared = Arc::new(Shared {
            registry,
            batch_pool: ThreadPool::new(cfg.batch_threads),
            sessions: session::SessionTable::new(cfg.max_sessions, cfg.session_idle),
            cfg,
            draining: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            order_templates: RwLock::new(None),
            directory_page: RwLock::new(None),
        });
        let acceptor = {
            let shared = shared.clone();
            let pool = conn_pool.clone();
            thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || accept_loop(listener, shared, pool))?
        };
        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            conn_pool: Some(conn_pool),
        })
    }

    /// The bound address (the actual port when started with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins a graceful drain: stop accepting, close idle keep-alive
    /// connections, let in-flight requests finish. Non-blocking and
    /// idempotent; [`join`](Self::join) waits for completion.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::Release);
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Connections accepted and not yet finished.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Drains (if not already draining) and blocks until the acceptor
    /// has stopped and every in-flight connection has completed.
    pub fn join(mut self) {
        self.stop();
    }

    /// [`shutdown`](Self::shutdown) + [`join`](Self::join) in one call.
    pub fn drain(self) {
        self.join();
    }

    fn stop(&mut self) {
        self.shutdown();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(mut pool) = self.conn_pool.take() {
            // the acceptor has exited, so this is the last handle;
            // dropping the pool blocks until every queued and running
            // connection job has finished — the drain barrier
            loop {
                match Arc::try_unwrap(pool) {
                    Ok(p) => {
                        drop(p);
                        break;
                    }
                    Err(p) => {
                        pool = p;
                        thread::sleep(Duration::from_millis(2));
                    }
                }
            }
            if obs::enabled() {
                obs::metrics()
                    .counter(
                        "http_server_drained_total",
                        "Graceful server drains completed.",
                    )
                    .inc();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, pool: Arc<ThreadPool>) {
    loop {
        if shared.draining.load(Ordering::Acquire) {
            // sweep the backlog before closing: a connection the kernel
            // already completed the handshake for is in flight from the
            // client's point of view — dropping the listener would RST
            // it. Accept whatever is pending, then stop; once the
            // listener drops, future connects are refused by the OS.
            while let Ok((stream, _peer)) = listener.accept() {
                dispatch(stream, &shared, &pool);
            }
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => dispatch(stream, &shared, &pool),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Hands one accepted stream to the connection pool (or refuses it at
/// the connection cap).
fn dispatch(stream: TcpStream, shared: &Arc<Shared>, pool: &ThreadPool) {
    // accepted sockets can inherit the listener's nonblocking mode on
    // some platforms
    let _ = stream.set_nonblocking(false);
    if obs::enabled() {
        obs::metrics()
            .counter("http_connections_total", "Connections accepted.")
            .inc();
    }
    if shared.active.load(Ordering::Acquire) >= shared.cfg.max_connections {
        refuse_connection(stream, shared);
        return;
    }
    shared.active.fetch_add(1, Ordering::AcqRel);
    let shared = shared.clone();
    pool.execute(move || {
        handle_connection(&shared, stream);
        shared.active.fetch_sub(1, Ordering::AcqRel);
    });
}

/// Over the connection cap: answer `503` inline on the acceptor (the
/// response is a few bytes; the write timeout bounds a stuck peer) and
/// close.
fn refuse_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(shared.cfg.write_deadline));
    let body = json::error_json("connection limit reached");
    let _ = http::write_response(&mut stream, 503, "application/json", body.as_bytes(), false);
    if obs::enabled() {
        obs::metrics()
            .counter(
                "http_connections_rejected_total",
                "Connections refused at the connection cap.",
            )
            .inc();
    }
}

/// Everything the metrics and the request's wide event need to know
/// about how one exchange went.
pub(crate) struct ReqOutcome {
    pub(crate) status: u16,
    /// The connection cannot be reused (unread body, protocol damage).
    pub(crate) close: bool,
    /// Payload bytes consumed from the request body.
    pub(crate) bytes_in: u64,
    pub(crate) error_count: u64,
    pub(crate) limit_trips: u64,
    pub(crate) malformed_doc: bool,
    pub(crate) tenant: String,
}

impl ReqOutcome {
    pub(crate) fn plain(status: u16, close: bool) -> ReqOutcome {
        ReqOutcome {
            status,
            close,
            bytes_in: 0,
            error_count: 0,
            limit_trips: 0,
            malformed_doc: false,
            tenant: "default".into(),
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let mut conn = Conn::new(stream, shared.cfg.write_deadline);
    loop {
        // wait for the next request (or pipelined bytes already here)
        if !conn.wait_for_data(shared.cfg.keep_alive_idle, &shared.draining) {
            return;
        }
        let started = Instant::now();
        let deadline = started + shared.cfg.request_deadline;
        let req = match http::parse_request(&mut conn, deadline) {
            Ok(req) => req,
            Err(e) => {
                let status = match e {
                    HttpError::Malformed(msg) => {
                        let body = json::error_json(msg);
                        let _ = http::write_response(
                            conn.writer(),
                            400,
                            "application/json",
                            body.as_bytes(),
                            false,
                        );
                        400
                    }
                    HttpError::Timeout => {
                        let body = json::error_json("request timed out");
                        let _ = http::write_response(
                            conn.writer(),
                            408,
                            "application/json",
                            body.as_bytes(),
                            false,
                        );
                        408
                    }
                    // peer gone; nothing to answer, nothing to record
                    HttpError::Closed | HttpError::Io(_) => return,
                };
                record_request(status, started, None, &ReqOutcome::plain(status, true));
                return;
            }
        };
        let span = obs::span!("http.request");
        let outcome = route(shared, &mut conn, &req, deadline);
        span.finish();
        record_request(outcome.status, started, Some(&req), &outcome);
        if outcome.close || !req.keep_alive() || shared.draining.load(Ordering::Acquire) {
            return;
        }
    }
}

/// Counts the request in `http_requests_total{code}` /
/// `http_request_seconds` and offers the flight recorder one wide event
/// carrying the request attributes.
fn record_request(status: u16, started: Instant, req: Option<&Request>, outcome: &ReqOutcome) {
    let elapsed = started.elapsed();
    if obs::enabled() {
        let code = status.to_string();
        let metrics = obs::metrics();
        metrics
            .counter_with(
                "http_requests_total",
                "HTTP requests answered, by status code.",
                &[("code", &code)],
            )
            .inc();
        metrics
            .histogram(
                "http_request_seconds",
                "End-to-end request latency (read + validate + write).",
                obs::DURATION_BUCKETS,
            )
            .observe_duration(elapsed);
    }
    if obs::trace::enabled() {
        let trace_outcome = if outcome.limit_trips > 0 {
            obs::trace::Outcome::ResourceTripped
        } else if outcome.malformed_doc || status == 400 || status == 408 {
            obs::trace::Outcome::Malformed
        } else if outcome.error_count > 0 || status >= 400 {
            obs::trace::Outcome::Invalid
        } else {
            obs::trace::Outcome::Valid
        };
        let (method, path) = match req {
            Some(r) => (r.method.clone(), r.path.clone()),
            None => ("-".into(), "-".into()),
        };
        obs::trace::record_wide_event(obs::trace::WideEvent {
            entry: "http.request",
            bytes: outcome.bytes_in,
            events: 0,
            max_depth: 0,
            borrowed_events: 0,
            owned_events: 0,
            error_count: outcome.error_count,
            limit_trips: outcome.limit_trips,
            outcome: trace_outcome,
            phases: vec![("http.request", elapsed)],
            total: elapsed,
            attrs: vec![
                ("method", method),
                ("path", path),
                ("status", status.to_string()),
                ("tenant", outcome.tenant.clone()),
            ],
        });
    }
}

/// Writes the response for a fully-handled request and reports whether
/// the connection must close.
pub(crate) fn respond(
    conn: &mut Conn,
    status: u16,
    content_type: &str,
    body: &str,
    close: bool,
) -> bool {
    http::write_response(conn.writer(), status, content_type, body.as_bytes(), !close).is_err()
        || close
}

fn route(shared: &Arc<Shared>, conn: &mut Conn, req: &Request, deadline: Instant) -> ReqOutcome {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let draining = shared.draining.load(Ordering::Acquire);
            let (status, body) = if draining {
                (503, "draining\n")
            } else {
                (200, "ok\n")
            };
            let close = respond(conn, status, "text/plain; charset=utf-8", body, false);
            ReqOutcome::plain(status, close)
        }
        ("GET", ["metrics"]) => {
            let body = obs::metrics().render_prometheus();
            let close = respond(conn, 200, "text/plain; version=0.0.4", &body, false);
            ReqOutcome::plain(200, close)
        }
        ("POST", ["v1", "validate", schema]) => {
            handle_validate(shared, conn, req, deadline, schema)
        }
        ("POST", ["v1", "batch", schema]) => handle_batch(shared, conn, req, deadline, schema),
        ("PUT", ["v1", "schemas", name]) => handle_put_schema(shared, conn, req, deadline, name),
        ("GET", ["v1", "page", "orders", seed, count]) => {
            handle_order_page(shared, conn, req, deadline, seed, count)
        }
        ("GET", ["v1", "page", "directory", seed, breadth, depth]) => {
            handle_directory_page(shared, conn, req, deadline, seed, breadth, depth)
        }
        ("POST", ["v1", "session", schema]) => {
            session::handle_session_create(shared, conn, req, deadline, schema)
        }
        ("POST", ["v1", "session", id, "patch"]) => {
            session::handle_session_patch(shared, conn, req, deadline, id)
        }
        ("GET", ["v1", "session", id]) => session::handle_session_get(shared, conn, req, id),
        ("DELETE", ["v1", "session", id]) => session::handle_session_delete(shared, conn, req, id),
        (_, ["healthz" | "metrics"])
        | (_, ["v1", "validate" | "batch" | "schemas", _])
        | (_, ["v1", "session", _])
        | (_, ["v1", "session", _, "patch"])
        | (_, ["v1", "page", "orders", _, _])
        | (_, ["v1", "page", "directory", _, _, _]) => {
            // known route, wrong verb; an unread body forces a close
            let close = !matches!(http::framing(req), Ok(Framing::None));
            let body = json::error_json("method not allowed");
            let close = respond(conn, 405, "application/json", &body, close);
            ReqOutcome::plain(405, close)
        }
        _ => {
            let close = !matches!(http::framing(req), Ok(Framing::None));
            let body = json::error_json("no such endpoint");
            let close = respond(conn, 404, "application/json", &body, close);
            ReqOutcome::plain(404, close)
        }
    }
}

/// The request's effective budget: the tenant's table row, the wire
/// deadline, and the server-wide kill switch — read deadlines and
/// validation governance share one clock.
pub(crate) fn request_limits(
    shared: &Shared,
    req: &Request,
    deadline: Instant,
) -> (String, Limits) {
    let (label, limits) = shared.cfg.tenants.resolve(req.header(TENANT_HEADER));
    (
        label.to_string(),
        limits
            .with_deadline(deadline)
            .with_cancel_token(&shared.cfg.cancel),
    )
}

/// Tallies a verdict's error list for the request outcome.
pub(crate) fn tally(outcome: &mut ReqOutcome, errors: &[ValidationError]) {
    outcome.error_count += errors.len() as u64;
    outcome.limit_trips += errors
        .iter()
        .filter(|e| matches!(e.kind, ValidationErrorKind::Resource(_)))
        .count() as u64;
    outcome.malformed_doc |= errors
        .iter()
        .any(|e| matches!(e.kind, ValidationErrorKind::NotWellFormed(_)));
}

fn handle_validate(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    req: &Request,
    deadline: Instant,
    schema: &str,
) -> ReqOutcome {
    let (tenant, limits) = request_limits(shared, req, deadline);
    let mut outcome = ReqOutcome {
        tenant,
        ..ReqOutcome::plain(200, false)
    };
    let framing = match http::framing(req) {
        Ok(f) => f,
        Err(_) => {
            outcome.status = 400;
            outcome.close = respond(
                conn,
                400,
                "application/json",
                &json::error_json("bad body framing"),
                true,
            );
            return outcome;
        }
    };
    match framing {
        Framing::None => {
            outcome.status = 411;
            outcome.close = respond(
                conn,
                411,
                "application/json",
                &json::error_json("a document body is required"),
                false,
            );
            outcome
        }
        // the admission check the ISSUE calls out: an oversized declared
        // length is refused before a single body byte is read
        Framing::Length(n) if n > limits.max_input_bytes as u64 => {
            let kind = ResourceErrorKind::InputTooLarge {
                limit: limits.max_input_bytes,
                actual: n.min(usize::MAX as u64) as usize,
            };
            limits::record_trip(&kind);
            limits::record_rejected();
            let errors = vec![ValidationError {
                kind: ValidationErrorKind::Resource(kind),
                span: None,
            }];
            tally(&mut outcome, &errors);
            outcome.status = 413;
            outcome.close = respond(
                conn,
                413,
                "application/json",
                &json::verdict_json(schema, &errors),
                true,
            );
            outcome
        }
        _ => {
            let mut body = Body::new(conn, framing, deadline);
            let result = shared
                .registry
                .validate_streaming_reader_with_limits(schema, &mut body, &limits);
            match result {
                None => {
                    outcome.bytes_in = body.consumed();
                    let reusable = body.drain(BODY_DRAIN_CAP);
                    outcome.status = 404;
                    outcome.close = respond(
                        conn,
                        404,
                        "application/json",
                        &json::error_json(&format!("no schema registered under {schema:?}")),
                        !reusable,
                    );
                    outcome
                }
                Some(Err(e)) => {
                    outcome.bytes_in = body.consumed();
                    let (status, msg) = match e.kind() {
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                            (408, "request timed out reading the body")
                        }
                        std::io::ErrorKind::InvalidData => (400, "bad chunked body framing"),
                        std::io::ErrorKind::UnexpectedEof => (400, "body ended prematurely"),
                        _ => (500, "i/o failure reading the body"),
                    };
                    outcome.status = status;
                    outcome.close = respond(
                        conn,
                        status,
                        "application/json",
                        &json::error_json(msg),
                        true,
                    );
                    outcome
                }
                Some(Ok(errors)) => {
                    outcome.bytes_in = body.consumed();
                    // a tripped validator stops reading mid-body; the
                    // remainder must be consumed (or the socket closed)
                    let reusable = body.finished() || body.drain(BODY_DRAIN_CAP);
                    tally(&mut outcome, &errors);
                    outcome.status = json::status_for(&errors);
                    outcome.close = respond(
                        conn,
                        outcome.status,
                        "application/json",
                        &json::verdict_json(schema, &errors),
                        !reusable,
                    );
                    outcome
                }
            }
        }
    }
}

/// Reads a whole (small) body, refusing past `cap` bytes. `Ok(None)`
/// means the cap tripped.
pub(crate) fn read_capped(body: &mut Body<'_>, cap: usize) -> std::io::Result<Option<Vec<u8>>> {
    let mut out = Vec::new();
    let mut buf = [0u8; 8 << 10];
    loop {
        let n = match std::io::Read::read(body, &mut buf) {
            Ok(0) => return Ok(Some(out)),
            Ok(n) => n,
            Err(e) => return Err(e),
        };
        if out.len() + n > cap {
            return Ok(None);
        }
        out.extend_from_slice(&buf[..n]);
    }
}

/// Maps a body-read failure to its response, shared by the endpoints
/// that must buffer their (framed or small) bodies.
pub(crate) fn body_error_response(conn: &mut Conn, outcome: &mut ReqOutcome, e: std::io::Error) {
    let (status, msg) = match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
            (408, "request timed out reading the body")
        }
        std::io::ErrorKind::InvalidData => (400, "bad chunked body framing"),
        std::io::ErrorKind::UnexpectedEof => (400, "body ended prematurely"),
        _ => (500, "i/o failure reading the body"),
    };
    outcome.status = status;
    outcome.close = respond(
        conn,
        status,
        "application/json",
        &json::error_json(msg),
        true,
    );
}

fn handle_batch(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    req: &Request,
    deadline: Instant,
    schema: &str,
) -> ReqOutcome {
    let (tenant, limits) = request_limits(shared, req, deadline);
    let mut outcome = ReqOutcome {
        tenant,
        ..ReqOutcome::plain(200, false)
    };
    let framing = match http::framing(req) {
        Ok(Framing::None) => {
            outcome.status = 411;
            outcome.close = respond(
                conn,
                411,
                "application/json",
                &json::error_json("a batch body is required"),
                false,
            );
            return outcome;
        }
        Ok(f) => f,
        Err(_) => {
            outcome.status = 400;
            outcome.close = respond(
                conn,
                400,
                "application/json",
                &json::error_json("bad body framing"),
                true,
            );
            return outcome;
        }
    };
    if let Framing::Length(n) = framing {
        if n > limits.max_input_bytes as u64 {
            outcome.status = 413;
            outcome.close = respond(
                conn,
                413,
                "application/json",
                &json::error_json("batch body exceeds the tenant input budget"),
                true,
            );
            return outcome;
        }
    }
    let mut body = Body::new(conn, framing, deadline);
    let raw = match read_capped(&mut body, limits.max_input_bytes) {
        Ok(Some(raw)) => raw,
        Ok(None) => {
            outcome.bytes_in = body.consumed();
            outcome.status = 413;
            outcome.close = respond(
                conn,
                413,
                "application/json",
                &json::error_json("batch body exceeds the tenant input budget"),
                true,
            );
            return outcome;
        }
        Err(e) => {
            outcome.bytes_in = body.consumed();
            body_error_response(conn, &mut outcome, e);
            return outcome;
        }
    };
    outcome.bytes_in = body.consumed();
    // frame format: ASCII decimal payload length, '\n', payload — repeated
    let mut docs: Vec<&str> = Vec::new();
    let mut at = 0usize;
    while at < raw.len() {
        let line_end = match raw[at..].iter().take(20).position(|&b| b == b'\n') {
            Some(i) => at + i,
            None => {
                outcome.status = 400;
                outcome.close = respond(
                    conn,
                    400,
                    "application/json",
                    &json::error_json("bad batch framing: missing length prefix"),
                    false,
                );
                return outcome;
            }
        };
        let len: usize = match std::str::from_utf8(&raw[at..line_end])
            .ok()
            .filter(|s| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()))
            .and_then(|s| s.parse().ok())
        {
            Some(n) => n,
            None => {
                outcome.status = 400;
                outcome.close = respond(
                    conn,
                    400,
                    "application/json",
                    &json::error_json("bad batch framing: bad length prefix"),
                    false,
                );
                return outcome;
            }
        };
        let start = line_end + 1;
        let end = match start.checked_add(len).filter(|&e| e <= raw.len()) {
            Some(e) => e,
            None => {
                outcome.status = 400;
                outcome.close = respond(
                    conn,
                    400,
                    "application/json",
                    &json::error_json("bad batch framing: truncated frame"),
                    false,
                );
                return outcome;
            }
        };
        let doc = match std::str::from_utf8(&raw[start..end]) {
            Ok(d) => d,
            Err(_) => {
                outcome.status = 400;
                outcome.close = respond(
                    conn,
                    400,
                    "application/json",
                    &json::error_json("bad batch framing: frame is not UTF-8"),
                    false,
                );
                return outcome;
            }
        };
        docs.push(doc);
        if docs.len() > shared.cfg.max_batch_docs {
            outcome.status = 413;
            outcome.close = respond(
                conn,
                413,
                "application/json",
                &json::error_json("too many documents in one batch"),
                false,
            );
            return outcome;
        }
        at = end;
    }
    let results = shared
        .registry
        .validate_batch_streaming_parallel_with_limits(schema, &docs, &shared.batch_pool, &limits);
    match results {
        None => {
            outcome.status = 404;
            outcome.close = respond(
                conn,
                404,
                "application/json",
                &json::error_json(&format!("no schema registered under {schema:?}")),
                false,
            );
            outcome
        }
        Some(lists) => {
            for errors in &lists {
                tally(&mut outcome, errors);
            }
            outcome.status = 200;
            outcome.close = respond(
                conn,
                200,
                "application/json",
                &json::batch_json(schema, &lists),
                false,
            );
            outcome
        }
    }
}

/// Counts one rendered page in the per-page counters.
fn page_metrics(page: &str, bytes: usize) {
    if obs::enabled() {
        let metrics = obs::metrics();
        metrics
            .counter_with(
                "http_pages_rendered_total",
                "Pages rendered through compiled templates, by page.",
                &[("page", page)],
            )
            .inc();
        metrics
            .counter_with(
                "http_page_bytes_total",
                "Bytes of compiled-template page output, by page.",
                &[("page", page)],
            )
            .inc_by(bytes as u64);
    }
}

/// The lazily-built compiled order plans; `Err` is `(status, message)`.
fn order_templates(shared: &Shared) -> Result<Arc<OrderTemplates>, (u16, String)> {
    if let Some(t) = shared.order_templates.read().expect("lock").as_ref() {
        return Ok(t.clone());
    }
    let compiled = shared.registry.get("purchase-order").ok_or_else(|| {
        (
            404,
            "no schema registered under \"purchase-order\"".to_string(),
        )
    })?;
    let templates = OrderTemplates::new(&compiled).map_err(|errors| {
        (
            500,
            format!(
                "order templates rejected by the registered schema ({} error(s))",
                errors.len()
            ),
        )
    })?;
    let templates = Arc::new(templates);
    *shared.order_templates.write().expect("lock") = Some(templates.clone());
    Ok(templates)
}

/// The lazily-built compiled WML directory page.
fn directory_page(shared: &Shared) -> Result<Arc<CompiledDirectoryPage>, (u16, String)> {
    if let Some(p) = shared.directory_page.read().expect("lock").as_ref() {
        return Ok(p.clone());
    }
    let compiled = shared
        .registry
        .get("wml")
        .ok_or_else(|| (404, "no schema registered under \"wml\"".to_string()))?;
    let page = CompiledDirectoryPage::new(&compiled).map_err(|errors| {
        (
            500,
            format!(
                "directory templates rejected by the registered schema ({} error(s))",
                errors.len()
            ),
        )
    })?;
    let page = Arc::new(page);
    *shared.directory_page.write().expect("lock") = Some(page.clone());
    Ok(page)
}

fn page_error(conn: &mut Conn, outcome: &mut ReqOutcome, status: u16, message: &str) {
    outcome.status = status;
    outcome.error_count += 1;
    outcome.close = respond(
        conn,
        status,
        "application/json",
        &json::error_json(message),
        false,
    );
}

/// `GET /v1/page/orders/{seed}/{count}` — renders one synthetic
/// purchase order through the compiled template path.
fn handle_order_page(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    req: &Request,
    deadline: Instant,
    seed: &str,
    count: &str,
) -> ReqOutcome {
    let (tenant, _) = request_limits(shared, req, deadline);
    let mut outcome = ReqOutcome {
        tenant,
        ..ReqOutcome::plain(200, false)
    };
    let _span = obs::span!("http.page", page = "orders");
    let (Ok(seed), Ok(count)) = (seed.parse::<u64>(), count.parse::<usize>()) else {
        page_error(conn, &mut outcome, 400, "seed and count must be integers");
        return outcome;
    };
    if count > shared.cfg.max_batch_docs {
        page_error(conn, &mut outcome, 400, "item count exceeds the limit");
        return outcome;
    }
    let templates = match order_templates(shared) {
        Ok(t) => t,
        Err((status, message)) => {
            page_error(conn, &mut outcome, status, &message);
            return outcome;
        }
    };
    let order = webgen::generate_order(seed, count);
    match templates.render_compiled(&order) {
        Ok(page) => {
            page_metrics("orders", page.len());
            outcome.close = respond(conn, 200, "application/xml", &page, false);
            outcome
        }
        Err(e) => {
            page_error(conn, &mut outcome, 500, &format!("render failed: {e}"));
            outcome
        }
    }
}

/// `GET /v1/page/directory/{seed}/{breadth}/{depth}` — renders the
/// Sect. 5 WML directory page for a synthetic media archive through the
/// compiled template path.
fn handle_directory_page(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    req: &Request,
    deadline: Instant,
    seed: &str,
    breadth: &str,
    depth: &str,
) -> ReqOutcome {
    let (tenant, _) = request_limits(shared, req, deadline);
    let mut outcome = ReqOutcome {
        tenant,
        ..ReqOutcome::plain(200, false)
    };
    let _span = obs::span!("http.page", page = "directory");
    let (Ok(seed), Ok(breadth), Ok(depth)) = (
        seed.parse::<u64>(),
        breadth.parse::<usize>(),
        depth.parse::<usize>(),
    ) else {
        page_error(
            conn,
            &mut outcome,
            400,
            "seed, breadth, and depth must be integers",
        );
        return outcome;
    };
    if breadth > 64 || depth > 6 {
        page_error(conn, &mut outcome, 400, "archive size exceeds the limit");
        return outcome;
    }
    let page = match directory_page(shared) {
        Ok(p) => p,
        Err((status, message)) => {
            page_error(conn, &mut outcome, status, &message);
            return outcome;
        }
    };
    let archive = webgen::MediaArchive::generate(seed, breadth, depth);
    let data = webgen::DirectoryPageData::from_media(&archive.root());
    match page.render(&data) {
        Ok(body) => {
            page_metrics("directory", body.len());
            outcome.close = respond(conn, 200, "text/vnd.wap.wml", &body, false);
            outcome
        }
        Err(e) => {
            page_error(conn, &mut outcome, 500, &format!("render failed: {e}"));
            outcome
        }
    }
}

fn handle_put_schema(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    req: &Request,
    deadline: Instant,
    name: &str,
) -> ReqOutcome {
    let (tenant, _) = request_limits(shared, req, deadline);
    let mut outcome = ReqOutcome {
        tenant,
        ..ReqOutcome::plain(200, false)
    };
    let framing = match http::framing(req) {
        Ok(Framing::None) => {
            outcome.status = 411;
            outcome.close = respond(
                conn,
                411,
                "application/json",
                &json::error_json("a schema body is required"),
                false,
            );
            return outcome;
        }
        Ok(f) => f,
        Err(_) => {
            outcome.status = 400;
            outcome.close = respond(
                conn,
                400,
                "application/json",
                &json::error_json("bad body framing"),
                true,
            );
            return outcome;
        }
    };
    if let Framing::Length(n) = framing {
        if n > shared.cfg.max_schema_bytes as u64 {
            outcome.status = 413;
            outcome.close = respond(
                conn,
                413,
                "application/json",
                &json::error_json("schema body too large"),
                true,
            );
            return outcome;
        }
    }
    let mut body = Body::new(conn, framing, deadline);
    let raw = match read_capped(&mut body, shared.cfg.max_schema_bytes) {
        Ok(Some(raw)) => raw,
        Ok(None) => {
            outcome.bytes_in = body.consumed();
            outcome.status = 413;
            outcome.close = respond(
                conn,
                413,
                "application/json",
                &json::error_json("schema body too large"),
                true,
            );
            return outcome;
        }
        Err(e) => {
            outcome.bytes_in = body.consumed();
            body_error_response(conn, &mut outcome, e);
            return outcome;
        }
    };
    outcome.bytes_in = body.consumed();
    let xsd = match String::from_utf8(raw) {
        Ok(s) => s,
        Err(_) => {
            outcome.status = 400;
            outcome.close = respond(
                conn,
                400,
                "application/json",
                &json::error_json("schema body is not UTF-8"),
                false,
            );
            return outcome;
        }
    };
    match shared.registry.register(name, &xsd) {
        Ok(previous) => {
            // compiled page plans were lowered against the replaced
            // schema — drop them so the next page request recompiles
            if name == "purchase-order" {
                *shared.order_templates.write().expect("lock") = None;
            }
            if name == "wml" {
                *shared.directory_page.write().expect("lock") = None;
            }
            let status = if previous.is_some() { 200 } else { 201 };
            let mut body = String::from("{\"schema\":");
            json::escape_into(&mut body, name);
            body.push_str(",\"replaced\":");
            body.push_str(if previous.is_some() { "true" } else { "false" });
            body.push('}');
            outcome.status = status;
            outcome.close = respond(conn, status, "application/json", &body, false);
            outcome
        }
        Err(e) => {
            outcome.status = 400;
            outcome.close = respond(
                conn,
                400,
                "application/json",
                &json::error_json(&format!("schema failed to compile: {e}")),
                false,
            );
            outcome
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Read, Write};

    fn corpus_server(cfg: ServerConfig) -> Server {
        let registry = Arc::new(SchemaRegistry::with_corpus().unwrap());
        Server::start(registry, "127.0.0.1:0", cfg).unwrap()
    }

    fn roundtrip(addr: SocketAddr, request: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
        let mut len = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                len = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }

    #[test]
    fn health_metrics_and_validate_roundtrip() {
        let server = corpus_server(ServerConfig::default());
        let addr = server.addr();
        let (status, body) = roundtrip(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let doc = webgen::render_order_string(&webgen::generate_order(3, 5));
        let request = format!(
            "POST /v1/validate/purchase-order HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            doc.len(),
            doc
        );
        let (status, body) = roundtrip(addr, &request);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"valid\":true"), "{body}");
        let (status, _) = roundtrip(addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 404);
        server.drain();
    }

    #[test]
    fn page_endpoints_render_compiled_templates() {
        let server = corpus_server(ServerConfig::default());
        let addr = server.addr();
        // the order page byte-equals the in-process compiled renderer
        let (status, body) =
            roundtrip(addr, "GET /v1/page/orders/42/3 HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200, "{body}");
        let compiled = Arc::new(
            SchemaRegistry::with_corpus()
                .unwrap()
                .get("purchase-order")
                .unwrap(),
        );
        let expected = OrderTemplates::new(&compiled)
            .unwrap()
            .render_compiled(&webgen::generate_order(42, 3))
            .unwrap();
        assert_eq!(body, expected);
        // and it validates against the registered schema
        let request = format!(
            "POST /v1/validate/purchase-order HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let (status, verdict) = roundtrip(addr, &request);
        assert_eq!(status, 200);
        assert!(verdict.contains("\"valid\":true"), "{verdict}");
        // directory page
        let (status, wml) = roundtrip(
            addr,
            "GET /v1/page/directory/7/3/2 HTTP/1.1\r\nHost: t\r\n\r\n",
        );
        assert_eq!(status, 200, "{wml}");
        assert!(wml.starts_with("<wml><card id=\"dirs\">"), "{wml}");
        // bad parameters and wrong verbs are typed failures
        let (status, _) = roundtrip(addr, "GET /v1/page/orders/x/3 HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 400);
        let (status, _) = roundtrip(
            addr,
            "GET /v1/page/orders/1/99999 HTTP/1.1\r\nHost: t\r\n\r\n",
        );
        assert_eq!(status, 400);
        let (status, _) = roundtrip(addr, "POST /v1/page/orders/1/1 HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 405);
        server.drain();
    }

    #[test]
    fn drain_refuses_new_connections() {
        let server = corpus_server(ServerConfig::default());
        let addr = server.addr();
        server.shutdown();
        assert!(server.is_draining());
        server.join();
        // the listener is gone: connects are refused (or reset on the
        // first byte, depending on backlog timing)
        let refused = match TcpStream::connect(addr) {
            Err(_) => true,
            Ok(mut s) => {
                let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
                let mut buf = [0u8; 1];
                let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
                !matches!(std::io::Read::read(&mut s, &mut buf), Ok(n) if n > 0)
            }
        };
        assert!(refused, "a drained server must not serve new connections");
    }
}
