//! Per-tenant admission control: which [`Limits`] a request runs under.
//!
//! The serving layer is multi-party by design (the Distributed XML
//! Design framing — validation as a service several parties call, not a
//! library one program links). Each party gets its own resource budget:
//! the `X-Tenant` request header selects a row in this table, and the
//! whole validation pipeline below — parser ceilings, error caps,
//! deadline — runs under that tenant's [`Limits`]. A request with no
//! (or an unknown) tenant header runs under the default budget, so the
//! table is admission *control*, never a routing requirement.

use std::collections::HashMap;

use limits::Limits;

/// The request header that selects the tenant budget.
pub const TENANT_HEADER: &str = "x-tenant";

/// A header-keyed table of per-tenant resource budgets.
#[derive(Debug, Clone)]
pub struct TenantTable {
    default_limits: Limits,
    tenants: HashMap<String, Limits>,
}

impl Default for TenantTable {
    fn default() -> TenantTable {
        TenantTable::new(Limits::default())
    }
}

impl TenantTable {
    /// A table whose unmatched requests run under `default_limits`.
    pub fn new(default_limits: Limits) -> TenantTable {
        TenantTable {
            default_limits,
            tenants: HashMap::new(),
        }
    }

    /// Registers (or replaces) tenant `name`'s budget.
    pub fn insert(&mut self, name: impl Into<String>, limits: Limits) -> &mut Self {
        self.tenants.insert(name.into(), limits);
        self
    }

    /// Builder form of [`insert`](Self::insert).
    pub fn with(mut self, name: impl Into<String>, limits: Limits) -> TenantTable {
        self.insert(name, limits);
        self
    }

    /// Resolves a request's `X-Tenant` header value to `(label, budget)`.
    /// A missing or unknown tenant resolves to `("default", default
    /// budget)` — the label is what the request's wide event records, so
    /// it must stay low-cardinality even under hostile header values.
    pub fn resolve(&self, tenant: Option<&str>) -> (&str, Limits) {
        if let Some(name) = tenant {
            if let Some((key, limits)) = self.tenants.get_key_value(name) {
                return (key.as_str(), limits.clone());
            }
        }
        ("default", self.default_limits.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_and_missing_tenants_get_the_default_budget() {
        let table = TenantTable::new(Limits::default().with_max_depth(99))
            .with("small", Limits::default().with_max_depth(3));
        let (label, limits) = table.resolve(None);
        assert_eq!(label, "default");
        assert_eq!(limits.max_depth, 99);
        let (label, limits) = table.resolve(Some("nope"));
        assert_eq!(label, "default");
        assert_eq!(limits.max_depth, 99);
        let (label, limits) = table.resolve(Some("small"));
        assert_eq!(label, "small");
        assert_eq!(limits.max_depth, 3);
    }
}
