//! JSON rendering of validation verdicts — written by hand because the
//! service is std-only, and *canonical* so the conformance battery can
//! compare an HTTP response byte-for-byte against the JSON rendered
//! from a direct `validate_str_streaming` run: byte equality of the two
//! strings is exactly "same error kinds, same messages, same spans".

use limits::ResourceErrorKind;
use validator::{ValidationError, ValidationErrorKind};

/// Appends `s` as a JSON string literal (quotes included).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn span_into(out: &mut String, span: &Option<xmlchars::Span>) {
    match span {
        None => out.push_str("null"),
        Some(s) => {
            out.push_str(&format!(
                "{{\"start\":{{\"line\":{},\"column\":{},\"offset\":{}}},\
                 \"end\":{{\"line\":{},\"column\":{},\"offset\":{}}}}}",
                s.start.line,
                s.start.column,
                s.start.offset,
                s.end.line,
                s.end.column,
                s.end.offset,
            ));
        }
    }
}

/// The first resource-budget trip in `errors`, if any — the typed kind
/// the response's status code and `"resource"` field are derived from.
pub fn resource_kind(errors: &[ValidationError]) -> Option<&ResourceErrorKind> {
    errors.iter().find_map(|e| match &e.kind {
        ValidationErrorKind::Resource(kind) => Some(kind),
        _ => None,
    })
}

/// The HTTP status a verdict maps to: `413` when the input-size budget
/// tripped, `422` for any other resource trip (depth, attributes,
/// expansions, errors, deadline, cancellation), `200` otherwise — plain
/// invalidity is a *successful* validation whose answer is "invalid",
/// not a server-side failure.
pub fn status_for(errors: &[ValidationError]) -> u16 {
    match resource_kind(errors) {
        Some(ResourceErrorKind::InputTooLarge { .. }) => 413,
        Some(_) => 422,
        None => 200,
    }
}

/// Appends the verdict object body (everything between the braces) for
/// one document: `"valid":…,"resource":…,"errors":[…]`.
fn verdict_fields_into(out: &mut String, errors: &[ValidationError]) {
    out.push_str("\"valid\":");
    out.push_str(if errors.is_empty() { "true" } else { "false" });
    out.push_str(",\"resource\":");
    match resource_kind(errors) {
        None => out.push_str("null"),
        Some(kind) => escape_into(out, kind.label()),
    }
    out.push_str(",\"errors\":[");
    for (i, e) in errors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"kind\":");
        escape_into(out, e.kind.label());
        out.push_str(",\"message\":");
        escape_into(out, &e.kind.to_string());
        out.push_str(",\"span\":");
        span_into(out, &e.span);
        out.push('}');
    }
    out.push_str("]}");
}

/// The response body for one document's verdict.
pub fn verdict_json(schema: &str, errors: &[ValidationError]) -> String {
    let mut out = String::with_capacity(64 + errors.len() * 96);
    out.push_str("{\"schema\":");
    escape_into(&mut out, schema);
    out.push(',');
    verdict_fields_into(&mut out, errors);
    out
}

/// The response body for a batch: one verdict object per document, in
/// input order.
pub fn batch_json(schema: &str, lists: &[Vec<ValidationError>]) -> String {
    let mut out = String::with_capacity(64 + lists.len() * 128);
    out.push_str("{\"schema\":");
    escape_into(&mut out, schema);
    out.push_str(&format!(",\"docs\":{},\"results\":[", lists.len()));
    for (i, errors) in lists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        verdict_fields_into(&mut out, errors);
    }
    out.push_str("]}");
    out
}

/// A bare `{"error": …}` body for protocol- and routing-level failures.
pub fn error_json(message: &str) -> String {
    let mut out = String::from("{\"error\":");
    escape_into(&mut out, message);
    out.push('}');
    out
}

/// A parsed JSON value — the input side of the std-only JSON story
/// (the output side is the hand-rendered canonical strings above). The
/// session patch endpoint is the only consumer, so the parser favors
/// clarity over speed: full strict syntax, a nesting cap instead of
/// recursion-depth trust, objects kept as ordered pairs.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, with escapes decoded.
    String(String),
    /// `[ … ]`
    Array(Vec<JsonValue>),
    /// `{ … }`, insertion-ordered.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (first occurrence).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Maximum container nesting [`parse_json`] accepts.
const JSON_MAX_DEPTH: usize = 64;

/// Parses one JSON document (a value with nothing but whitespace after
/// it). Errors are human-readable one-liners for `400` bodies.
pub fn parse_json(src: &str) -> Result<JsonValue, String> {
    let mut p = JsonParser {
        bytes: src.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.at));
    }
    Ok(value)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.at) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.at) == Some(&b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.at))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > JSON_MAX_DEPTH {
            return Err("JSON nested too deeply".into());
        }
        match self.bytes.get(self.at) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err(format!("unexpected {:?} at byte {}", b as char, self.at)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.at;
        if self.bytes.get(self.at) == Some(&b'-') {
            self.at += 1;
        }
        while matches!(
            self.bytes.get(self.at),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii digits");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(JsonValue::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.at) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.bytes.get(self.at) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let unit = self.hex4()?;
                            // surrogate pairs: a high surrogate must be
                            // followed by \uDC00..DFFF
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if self.bytes.get(self.at + 1) != Some(&b'\\')
                                    || self.bytes.get(self.at + 2) != Some(&b'u')
                                {
                                    return Err("lone high surrogate".into());
                                }
                                self.at += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("bad low surrogate".into());
                                }
                                let cp = 0x10000
                                    + ((unit as u32 - 0xD800) << 10)
                                    + (low as u32 - 0xDC00);
                                char::from_u32(cp).ok_or("bad surrogate pair")?
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err("lone low surrogate".into());
                            } else {
                                char::from_u32(unit as u32).ok_or("bad \\u escape")?
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(&b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.at))
                }
                Some(_) => {
                    // copy one UTF-8 scalar (input is a &str, so this is
                    // always well-formed)
                    let rest = std::str::from_utf8(&self.bytes[self.at..]).expect("utf-8 input");
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        self.at += 1; // past 'u'
        let end = self.at + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.at..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let unit = u16::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.at = end - 1; // the shared `+= 1` after the match finishes it
        Ok(unit)
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b'}') {
            self.at += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b']') {
            self.at += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\re\tf\u{1}g");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\re\\tf\\u0001g\"");
    }

    #[test]
    fn valid_verdict_is_compact() {
        assert_eq!(
            verdict_json("po", &[]),
            "{\"schema\":\"po\",\"valid\":true,\"resource\":null,\"errors\":[]}"
        );
    }

    #[test]
    fn resource_trip_sets_status_and_kind() {
        let errors = vec![ValidationError {
            kind: ValidationErrorKind::Resource(ResourceErrorKind::DepthExceeded { limit: 8 }),
            span: None,
        }];
        assert_eq!(status_for(&errors), 422);
        let body = verdict_json("po", &errors);
        assert!(body.contains("\"resource\":\"DepthExceeded\""), "{body}");
        assert!(body.contains("\"span\":null"), "{body}");
        let too_big = vec![ValidationError {
            kind: ValidationErrorKind::Resource(ResourceErrorKind::InputTooLarge {
                limit: 10,
                actual: 20,
            }),
            span: None,
        }];
        assert_eq!(status_for(&too_big), 413);
        assert_eq!(status_for(&[]), 200);
    }

    #[test]
    fn json_parser_round_trips_patch_shapes() {
        let v =
            parse_json("{\"op\":\"set_text\",\"path\":[0, 2],\"text\":\"a\\u00e9\\n\\\"b\\\"\"}")
                .unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("set_text"));
        let path: Vec<usize> = v
            .get("path")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|x| x.as_usize().unwrap())
            .collect();
        assert_eq!(path, vec![0, 2]);
        assert_eq!(v.get("text").unwrap().as_str(), Some("aé\n\"b\""));
        // surrogate pairs decode
        let v = parse_json("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // malformed inputs are rejected, not mangled
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "\"\\ud800\"",
            "nul",
            "1 2",
            "{\"a\":1",
            "\"unterminated",
            "1e999",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?}");
        }
        // deep nesting trips the cap instead of the stack
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse_json(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse_json(&ok).is_ok());
    }

    #[test]
    fn batch_renders_every_document_in_order() {
        let lists = vec![
            Vec::new(),
            vec![ValidationError {
                kind: ValidationErrorKind::NoRootElement,
                span: None,
            }],
        ];
        let body = batch_json("wml", &lists);
        assert!(body.starts_with("{\"schema\":\"wml\",\"docs\":2,\"results\":["));
        assert!(body.contains("\"valid\":true"));
        assert!(body.contains("\"kind\":\"NoRootElement\""));
    }
}
