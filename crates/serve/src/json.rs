//! JSON rendering of validation verdicts — written by hand because the
//! service is std-only, and *canonical* so the conformance battery can
//! compare an HTTP response byte-for-byte against the JSON rendered
//! from a direct `validate_str_streaming` run: byte equality of the two
//! strings is exactly "same error kinds, same messages, same spans".

use limits::ResourceErrorKind;
use validator::{ValidationError, ValidationErrorKind};

/// Appends `s` as a JSON string literal (quotes included).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn span_into(out: &mut String, span: &Option<xmlchars::Span>) {
    match span {
        None => out.push_str("null"),
        Some(s) => {
            out.push_str(&format!(
                "{{\"start\":{{\"line\":{},\"column\":{},\"offset\":{}}},\
                 \"end\":{{\"line\":{},\"column\":{},\"offset\":{}}}}}",
                s.start.line,
                s.start.column,
                s.start.offset,
                s.end.line,
                s.end.column,
                s.end.offset,
            ));
        }
    }
}

/// The first resource-budget trip in `errors`, if any — the typed kind
/// the response's status code and `"resource"` field are derived from.
pub fn resource_kind(errors: &[ValidationError]) -> Option<&ResourceErrorKind> {
    errors.iter().find_map(|e| match &e.kind {
        ValidationErrorKind::Resource(kind) => Some(kind),
        _ => None,
    })
}

/// The HTTP status a verdict maps to: `413` when the input-size budget
/// tripped, `422` for any other resource trip (depth, attributes,
/// expansions, errors, deadline, cancellation), `200` otherwise — plain
/// invalidity is a *successful* validation whose answer is "invalid",
/// not a server-side failure.
pub fn status_for(errors: &[ValidationError]) -> u16 {
    match resource_kind(errors) {
        Some(ResourceErrorKind::InputTooLarge { .. }) => 413,
        Some(_) => 422,
        None => 200,
    }
}

/// Appends the verdict object body (everything between the braces) for
/// one document: `"valid":…,"resource":…,"errors":[…]`.
fn verdict_fields_into(out: &mut String, errors: &[ValidationError]) {
    out.push_str("\"valid\":");
    out.push_str(if errors.is_empty() { "true" } else { "false" });
    out.push_str(",\"resource\":");
    match resource_kind(errors) {
        None => out.push_str("null"),
        Some(kind) => escape_into(out, kind.label()),
    }
    out.push_str(",\"errors\":[");
    for (i, e) in errors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"kind\":");
        escape_into(out, e.kind.label());
        out.push_str(",\"message\":");
        escape_into(out, &e.kind.to_string());
        out.push_str(",\"span\":");
        span_into(out, &e.span);
        out.push('}');
    }
    out.push_str("]}");
}

/// The response body for one document's verdict.
pub fn verdict_json(schema: &str, errors: &[ValidationError]) -> String {
    let mut out = String::with_capacity(64 + errors.len() * 96);
    out.push_str("{\"schema\":");
    escape_into(&mut out, schema);
    out.push(',');
    verdict_fields_into(&mut out, errors);
    out
}

/// The response body for a batch: one verdict object per document, in
/// input order.
pub fn batch_json(schema: &str, lists: &[Vec<ValidationError>]) -> String {
    let mut out = String::with_capacity(64 + lists.len() * 128);
    out.push_str("{\"schema\":");
    escape_into(&mut out, schema);
    out.push_str(&format!(",\"docs\":{},\"results\":[", lists.len()));
    for (i, errors) in lists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        verdict_fields_into(&mut out, errors);
    }
    out.push_str("]}");
    out
}

/// A bare `{"error": …}` body for protocol- and routing-level failures.
pub fn error_json(message: &str) -> String {
    let mut out = String::from("{\"error\":");
    escape_into(&mut out, message);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\re\tf\u{1}g");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\re\\tf\\u0001g\"");
    }

    #[test]
    fn valid_verdict_is_compact() {
        assert_eq!(
            verdict_json("po", &[]),
            "{\"schema\":\"po\",\"valid\":true,\"resource\":null,\"errors\":[]}"
        );
    }

    #[test]
    fn resource_trip_sets_status_and_kind() {
        let errors = vec![ValidationError {
            kind: ValidationErrorKind::Resource(ResourceErrorKind::DepthExceeded { limit: 8 }),
            span: None,
        }];
        assert_eq!(status_for(&errors), 422);
        let body = verdict_json("po", &errors);
        assert!(body.contains("\"resource\":\"DepthExceeded\""), "{body}");
        assert!(body.contains("\"span\":null"), "{body}");
        let too_big = vec![ValidationError {
            kind: ValidationErrorKind::Resource(ResourceErrorKind::InputTooLarge {
                limit: 10,
                actual: 20,
            }),
            span: None,
        }];
        assert_eq!(status_for(&too_big), 413);
        assert_eq!(status_for(&[]), 200);
    }

    #[test]
    fn batch_renders_every_document_in_order() {
        let lists = vec![
            Vec::new(),
            vec![ValidationError {
                kind: ValidationErrorKind::NoRootElement,
                span: None,
            }],
        ];
        let body = batch_json("wml", &lists);
        assert!(body.starts_with("{\"schema\":\"wml\",\"docs\":2,\"results\":["));
        assert!(body.contains("\"valid\":true"));
        assert!(body.contains("\"kind\":\"NoRootElement\""));
    }
}
