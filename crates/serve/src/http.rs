//! The wire layer: a hand-rolled, std-only HTTP/1.1 implementation.
//!
//! This is deliberately not a general-purpose HTTP library — it is the
//! minimal, *hostile-input-hardened* subset the validation service
//! needs: request-line and header parsing with hard size caps,
//! `Content-Length` and `chunked` body framing exposed as an
//! [`std::io::Read`] so bodies stream straight into the chunked
//! validation path without ever being buffered whole, absolute
//! per-request read deadlines (a slowloris client dripping one byte per
//! write runs out of *deadline*, not out of server patience), and
//! keep-alive with pipelining (unread pipelined requests simply wait in
//! the connection buffer).
//!
//! Every protocol violation maps to a typed [`HttpError`] so the
//! connection handler can answer 400/408 deterministically; nothing in
//! this module panics on any byte sequence a socket can deliver.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Hard cap on the request line, in bytes.
pub const MAX_REQUEST_LINE: usize = 8 << 10;
/// Hard cap on a single header line, in bytes.
pub const MAX_HEADER_LINE: usize = 8 << 10;
/// Hard cap on the number of headers per request.
pub const MAX_HEADERS: usize = 100;
/// Hard cap on a chunk-size line (hex digits plus extensions).
pub const MAX_CHUNK_LINE: usize = 1 << 10;

/// How reading a request failed; decides the response (if any).
#[derive(Debug)]
pub enum HttpError {
    /// The bytes violate the protocol; answer 400 and close.
    Malformed(&'static str),
    /// The per-request read deadline passed; answer 408 and close.
    Timeout,
    /// The peer closed the connection; nothing to answer.
    Closed,
    /// Transport failure; nothing to answer.
    Io(io::Error),
}

impl HttpError {
    /// Converts into the `io::Error` a body [`Read`] must surface.
    fn into_io(self) -> io::Error {
        match self {
            HttpError::Malformed(msg) => io::Error::new(io::ErrorKind::InvalidData, msg),
            HttpError::Timeout => io::ErrorKind::TimedOut.into(),
            HttpError::Closed => io::ErrorKind::UnexpectedEof.into(),
            HttpError::Io(e) => e,
        }
    }
}

/// One accepted connection: the stream plus its read buffer. The buffer
/// outlives individual requests, which is what makes pipelining work —
/// bytes of the *next* request read together with the current one just
/// wait their turn.
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    start: usize,
}

impl Conn {
    /// Wraps an accepted stream; `write_deadline` bounds every write for
    /// the connection's lifetime.
    pub fn new(stream: TcpStream, write_deadline: Duration) -> Conn {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(write_deadline.max(Duration::from_millis(1))));
        Conn {
            stream,
            buf: Vec::new(),
            start: 0,
        }
    }

    /// The unconsumed buffered bytes.
    pub fn buffered(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    fn consume(&mut self, n: usize) {
        self.start += n;
        debug_assert!(self.start <= self.buf.len());
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 64 << 10 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// One read from the socket into the buffer, waiting at most
    /// `slice`. `Ok(0)` is EOF; a timeout is `Err(HttpError::Timeout)`.
    fn fill_once(&mut self, slice: Duration) -> Result<usize, HttpError> {
        self.stream
            .set_read_timeout(Some(slice.max(Duration::from_millis(1))))
            .map_err(HttpError::Io)?;
        let mut tmp = [0u8; 8 << 10];
        loop {
            match self.stream.read(&mut tmp) {
                Ok(0) => return Ok(0),
                Ok(n) => {
                    self.buf.extend_from_slice(&tmp[..n]);
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Err(HttpError::Timeout)
                }
                Err(e)
                    if e.kind() == io::ErrorKind::ConnectionReset
                        || e.kind() == io::ErrorKind::ConnectionAborted
                        || e.kind() == io::ErrorKind::BrokenPipe =>
                {
                    return Err(HttpError::Closed)
                }
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
    }

    /// One read bounded by the absolute `deadline`.
    fn fill(&mut self, deadline: Instant) -> Result<usize, HttpError> {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or(HttpError::Timeout)?;
        self.fill_once(remaining)
    }

    /// Waits for the next request's first byte: up to `idle` total, in
    /// short slices so a drain flag flipped mid-wait is noticed within
    /// ~100ms. Returns `true` when bytes are available; `false` on EOF,
    /// idle expiry, or drain (already-buffered bytes still count as
    /// available — a request accepted before the drain began is served).
    pub fn wait_for_data(&mut self, idle: Duration, draining: &AtomicBool) -> bool {
        if !self.buffered().is_empty() {
            return true;
        }
        let end = Instant::now() + idle;
        loop {
            match self.fill_once(Duration::from_millis(100)) {
                Ok(0) => return false,
                Ok(_) => return true,
                Err(HttpError::Timeout) => {
                    if draining.load(Ordering::Acquire) || Instant::now() >= end {
                        return false;
                    }
                }
                Err(_) => return false,
            }
        }
    }

    /// Reads one CRLF- (or bare-LF-) terminated line, excluding the
    /// terminator, enforcing `max` bytes.
    fn read_line(&mut self, max: usize, deadline: Instant) -> Result<String, HttpError> {
        loop {
            if let Some(i) = self.buffered().iter().position(|&b| b == b'\n') {
                if i > max {
                    return Err(HttpError::Malformed("line too long"));
                }
                let mut line = self.buffered()[..i].to_vec();
                self.consume(i + 1);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return String::from_utf8(line)
                    .map_err(|_| HttpError::Malformed("line is not UTF-8"));
            }
            if self.buffered().len() > max {
                return Err(HttpError::Malformed("line too long"));
            }
            if self.fill(deadline)? == 0 {
                return Err(HttpError::Closed);
            }
        }
    }

    /// Reads up to `out.len()` body bytes (buffer first, then socket).
    /// `Ok(0)` only at EOF.
    fn read_some(&mut self, out: &mut [u8], deadline: Instant) -> Result<usize, HttpError> {
        if self.buffered().is_empty() && self.fill(deadline)? == 0 {
            return Ok(0);
        }
        let avail = self.buffered();
        let n = avail.len().min(out.len());
        out[..n].copy_from_slice(&avail[..n]);
        self.consume(n);
        Ok(n)
    }

    /// The write half, for responses.
    pub fn writer(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

/// A parsed request head. Header names are lowercased at parse time.
#[derive(Debug)]
pub struct Request {
    /// The method verb, as sent (`GET`, `POST`, …).
    pub method: String,
    /// The path component of the request target (query string stripped).
    pub path: String,
    /// `true` for `HTTP/1.1`, `false` for `HTTP/1.0`.
    pub http11: bool,
    /// `(lowercased-name, value)` in arrival order.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection may be reused after this exchange
    /// (HTTP/1.1 default yes, HTTP/1.0 default no, `Connection` header
    /// overrides either way).
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }
}

fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'!' | b'#' | b'$' | b'%' | b'&')
}

/// Reads and parses one request head. The caller supplies the absolute
/// per-request `deadline`; a client that cannot deliver its headers in
/// time gets [`HttpError::Timeout`] no matter how steadily it drips.
pub fn parse_request(conn: &mut Conn, deadline: Instant) -> Result<Request, HttpError> {
    let line = conn.read_line(MAX_REQUEST_LINE, deadline)?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::Malformed("bad request line")),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed("bad method"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::Malformed("unsupported HTTP version")),
    };
    if !target.starts_with('/') {
        return Err(HttpError::Malformed("bad request target"));
    }
    let path = target
        .split(['?', '#'])
        .next()
        .unwrap_or(target)
        .to_string();
    let mut headers = Vec::new();
    loop {
        let line = conn.read_line(MAX_HEADER_LINE, deadline)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Malformed("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        // a space before the colon is the classic request-smuggling vector
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(HttpError::Malformed("bad header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        path,
        http11,
        headers,
    })
}

/// How the request's body bytes are delimited on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// No body (no framing headers present).
    None,
    /// `Content-Length: n`.
    Length(u64),
    /// `Transfer-Encoding: chunked`.
    Chunked,
}

/// Determines the body framing, rejecting the ambiguous combinations
/// (duplicate or conflicting framing headers) outright.
pub fn framing(req: &Request) -> Result<Framing, HttpError> {
    let lengths: Vec<&str> = req
        .headers
        .iter()
        .filter(|(n, _)| n == "content-length")
        .map(|(_, v)| v.as_str())
        .collect();
    let te = req.header("transfer-encoding");
    match (te, lengths.as_slice()) {
        (Some(te), []) if te.eq_ignore_ascii_case("chunked") => Ok(Framing::Chunked),
        (Some(_), _) => Err(HttpError::Malformed("bad transfer-encoding")),
        (None, []) => Ok(Framing::None),
        (None, [one]) => {
            if one.is_empty() || !one.bytes().all(|b| b.is_ascii_digit()) {
                return Err(HttpError::Malformed("bad content-length"));
            }
            one.parse::<u64>()
                .map(Framing::Length)
                .map_err(|_| HttpError::Malformed("bad content-length"))
        }
        (None, _) => Err(HttpError::Malformed("conflicting content-length")),
    }
}

enum BodyState {
    /// Fixed-length body: bytes left to deliver.
    Length(u64),
    /// Chunked body: bytes left in the current chunk (`0` = a size line
    /// is due next; `first` suppresses the chunk-terminating CRLF read).
    Chunk {
        remaining: u64,
        first: bool,
    },
    Done,
}

/// A request body as an [`io::Read`]: the adapter that lets a socket
/// body stream straight into `validate_streaming_reader` without ever
/// being resident. Timeouts surface as [`io::ErrorKind::TimedOut`],
/// framing violations as [`io::ErrorKind::InvalidData`], a peer that
/// vanished mid-body as [`io::ErrorKind::UnexpectedEof`].
pub struct Body<'c> {
    conn: &'c mut Conn,
    deadline: Instant,
    state: BodyState,
    consumed: u64,
}

impl<'c> Body<'c> {
    /// Wraps `conn` for one request's body under `framing`.
    pub fn new(conn: &'c mut Conn, framing: Framing, deadline: Instant) -> Body<'c> {
        let state = match framing {
            Framing::None | Framing::Length(0) => BodyState::Done,
            Framing::Length(n) => BodyState::Length(n),
            Framing::Chunked => BodyState::Chunk {
                remaining: 0,
                first: true,
            },
        };
        Body {
            conn,
            deadline,
            state,
            consumed: 0,
        }
    }

    /// Whether every body byte has been consumed (connection reusable).
    pub fn finished(&self) -> bool {
        matches!(self.state, BodyState::Done)
    }

    /// Payload bytes delivered so far (framing overhead excluded).
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Consumes the remaining body, up to `cap` bytes. Returns `true`
    /// when the body ended within the cap — the connection can then
    /// carry another request; `false` means the caller must close.
    pub fn drain(&mut self, cap: usize) -> bool {
        let mut left = cap;
        let mut sink = [0u8; 4096];
        while !self.finished() && left > 0 {
            let want = sink.len().min(left);
            match self.read(&mut sink[..want]) {
                Ok(0) => break,
                Ok(n) => left -= n,
                Err(_) => return false,
            }
        }
        self.finished()
    }

    /// Advances chunked framing to the next data chunk (or `Done`).
    fn next_chunk(&mut self, first: bool) -> io::Result<()> {
        if !first {
            // the CRLF that terminates the previous chunk's data
            let sep = self
                .conn
                .read_line(2, self.deadline)
                .map_err(HttpError::into_io)?;
            if !sep.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "missing chunk terminator",
                ));
            }
        }
        let line = self
            .conn
            .read_line(MAX_CHUNK_LINE, self.deadline)
            .map_err(HttpError::into_io)?;
        let size_part = line.split(';').next().unwrap_or("").trim();
        if size_part.is_empty() || !size_part.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad chunk size"));
        }
        let size = u64::from_str_radix(size_part, 16)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad chunk size"))?;
        if size == 0 {
            // trailer section: lines until the empty one
            loop {
                let line = self
                    .conn
                    .read_line(MAX_HEADER_LINE, self.deadline)
                    .map_err(HttpError::into_io)?;
                if line.is_empty() {
                    break;
                }
            }
            self.state = BodyState::Done;
        } else {
            self.state = BodyState::Chunk {
                remaining: size,
                first: false,
            };
        }
        Ok(())
    }
}

impl Read for Body<'_> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.state {
                BodyState::Done => return Ok(0),
                BodyState::Length(remaining) => {
                    let want = out.len().min(remaining.min(usize::MAX as u64) as usize);
                    let n = self
                        .conn
                        .read_some(&mut out[..want], self.deadline)
                        .map_err(HttpError::into_io)?;
                    if n == 0 {
                        return Err(io::ErrorKind::UnexpectedEof.into());
                    }
                    self.consumed += n as u64;
                    let left = remaining - n as u64;
                    self.state = if left == 0 {
                        BodyState::Done
                    } else {
                        BodyState::Length(left)
                    };
                    return Ok(n);
                }
                BodyState::Chunk {
                    remaining: 0,
                    first,
                } => self.next_chunk(first)?,
                BodyState::Chunk { remaining, .. } => {
                    let want = out.len().min(remaining.min(usize::MAX as u64) as usize);
                    let n = self
                        .conn
                        .read_some(&mut out[..want], self.deadline)
                        .map_err(HttpError::into_io)?;
                    if n == 0 {
                        return Err(io::ErrorKind::UnexpectedEof.into());
                    }
                    self.consumed += n as u64;
                    self.state = BodyState::Chunk {
                        remaining: remaining - n as u64,
                        first: false,
                    };
                    return Ok(n);
                }
            }
        }
    }
}

/// The standard reason phrase for the codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete response. Always emits `Content-Length` and an
/// explicit `Connection` header, so the client never has to guess where
/// the body ends or whether to reuse the socket.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}
