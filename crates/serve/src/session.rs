//! The `/v1/session` endpoints: patchable validated-document sessions
//! over HTTP.
//!
//! `POST /v1/session/{schema}` parses and fully validates the request
//! body, then parks it in the session table as a
//! [`webgen::DocSession`]. Every later `POST /v1/session/{id}/patch`
//! carries one JSON-encoded [`DomPatch`] and is answered from the
//! incremental revalidator: `{"applied":true,…}` with locality counters
//! on commit, the full typed error list (same kinds and spans a
//! `/v1/validate` round would report on the patched document) on
//! rejection — and the held document is untouched by a rejected patch.
//!
//! Sessions are process-local and bounded: at most
//! [`ServerConfig::max_sessions`](crate::ServerConfig::max_sessions)
//! live at once (`503` beyond that), and a session untouched for
//! [`ServerConfig::session_idle`](crate::ServerConfig::session_idle) is
//! evicted by an opportunistic sweep on every table access — there is
//! no background thread to leak. A graceful drain completes in-flight
//! patch requests like any other request; the table dies with the
//! server.
//!
//! # Patch wire format
//!
//! ```json
//! {"op":"set_text","path":[0,1],"text":"12345"}
//! {"op":"set_attr","path":[0],"name":"orderDate","value":"2003-01-07"}
//! {"op":"remove_attr","path":[0],"name":"orderDate"}
//! {"op":"append_child","path":[0,2],"node":{"kind":"element","xml":"<item …/>"}}
//! {"op":"insert_child","path":[0],"index":1,"node":{"kind":"comment","text":" note "}}
//! {"op":"remove_child","path":[0],"index":1}
//! {"op":"replace_child","path":[0],"index":1,"node":{"kind":"element","xml":"<shipTo …/>"}}
//! ```
//!
//! `path` addresses a node by child indexes from the document node
//! (every node kind counts). Node kinds: `element` (`xml` fragment),
//! `text` (`text`), `comment` (`text`), `pi` (`target`, `data`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use limits::Limits;
use validator::{DomPatch, NewNode, PatchError, ValidationError, ValidationErrorKind};
use webgen::{DocSession, SessionError};

use crate::http::{self, Body, Conn, Framing, Request};
use crate::json::{self, JsonValue};
use crate::{body_error_response, read_capped, respond, tally, ReqOutcome, Shared, TENANT_HEADER};

/// One parked session plus its idle clock.
struct Entry {
    session: DocSession,
    last_used: Instant,
}

/// The live-session map: id → session, capacity-capped and idle-swept.
/// Each session is individually locked so patches to different sessions
/// proceed in parallel while two patches to the *same* session
/// serialize (the incremental validator is stateful).
pub(crate) struct SessionTable {
    entries: RwLock<HashMap<u64, Arc<Mutex<Entry>>>>,
    next_id: AtomicU64,
    max_sessions: usize,
    idle: Duration,
}

impl SessionTable {
    pub(crate) fn new(max_sessions: usize, idle: Duration) -> SessionTable {
        SessionTable {
            entries: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            max_sessions,
            idle,
        }
    }

    /// Evicts every session idle past the TTL. Runs opportunistically on
    /// each table access.
    fn sweep(&self) {
        let now = Instant::now();
        let mut evicted = 0usize;
        self.entries.write().expect("session table").retain(|_, e| {
            // a session another request holds locked is in use by
            // definition — try_lock failure keeps it
            match e.try_lock() {
                Ok(entry) => {
                    let keep = now.duration_since(entry.last_used) <= self.idle;
                    if !keep {
                        evicted += 1;
                    }
                    keep
                }
                Err(_) => true,
            }
        });
        if evicted > 0 {
            count_closed("expired", evicted as u64);
        }
    }

    /// Parks a session, returning its id — or `None` at the cap.
    fn insert(&self, session: DocSession) -> Option<u64> {
        self.sweep();
        let mut entries = self.entries.write().expect("session table");
        if entries.len() >= self.max_sessions {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        entries.insert(
            id,
            Arc::new(Mutex::new(Entry {
                session,
                last_used: Instant::now(),
            })),
        );
        Some(id)
    }

    fn get(&self, id: u64) -> Option<Arc<Mutex<Entry>>> {
        self.sweep();
        self.entries
            .read()
            .expect("session table")
            .get(&id)
            .cloned()
    }

    fn remove(&self, id: u64) -> bool {
        let removed = self
            .entries
            .write()
            .expect("session table")
            .remove(&id)
            .is_some();
        if removed {
            count_closed("deleted", 1);
        }
        removed
    }

    /// Live sessions (tests).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.read().expect("session table").len()
    }
}

fn count_closed(reason: &'static str, n: u64) {
    if obs::enabled() {
        obs::metrics()
            .counter_with(
                "http_sessions_closed_total",
                "Patch sessions closed, by reason.",
                &[("reason", reason)],
            )
            .inc_by(n);
    }
}

/// Decodes one wire patch. Errors are user-facing `400` messages.
pub(crate) fn decode_patch(v: &JsonValue) -> Result<DomPatch, String> {
    let op = v
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field \"op\"")?;
    let path = || -> Result<Vec<usize>, String> {
        v.get("path")
            .and_then(JsonValue::as_array)
            .ok_or("missing array field \"path\"")?
            .iter()
            .map(|x| x.as_usize().ok_or_else(|| "bad path index".to_string()))
            .collect()
    };
    let string_field = |name: &str| -> Result<String, String> {
        v.get(name)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field {name:?}"))
    };
    let index = || -> Result<usize, String> {
        v.get("index")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| "missing integer field \"index\"".to_string())
    };
    let node = || -> Result<NewNode, String> {
        let n = v.get("node").ok_or("missing object field \"node\"")?;
        let kind = n
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field \"node.kind\"")?;
        let nfield = |name: &str| -> Result<String, String> {
            n.get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field \"node.{name}\""))
        };
        match kind {
            "element" => Ok(NewNode::Element {
                xml: nfield("xml")?,
            }),
            "text" => Ok(NewNode::Text(nfield("text")?)),
            "comment" => Ok(NewNode::Comment(nfield("text")?)),
            "pi" => Ok(NewNode::Pi {
                target: nfield("target")?,
                data: nfield("data")?,
            }),
            other => Err(format!("unknown node kind {other:?}")),
        }
    };
    match op {
        "set_text" => Ok(DomPatch::SetText {
            at: path()?,
            text: string_field("text")?,
        }),
        "set_attr" => Ok(DomPatch::SetAttr {
            at: path()?,
            name: string_field("name")?,
            value: string_field("value")?,
        }),
        "remove_attr" => Ok(DomPatch::RemoveAttr {
            at: path()?,
            name: string_field("name")?,
        }),
        "append_child" => Ok(DomPatch::AppendChild {
            at: path()?,
            child: node()?,
        }),
        "insert_child" => Ok(DomPatch::InsertChild {
            at: path()?,
            index: index()?,
            child: node()?,
        }),
        "remove_child" => Ok(DomPatch::RemoveChild {
            at: path()?,
            index: index()?,
        }),
        "replace_child" => Ok(DomPatch::ReplaceChild {
            at: path()?,
            index: index()?,
            child: node()?,
        }),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Buffers a (small) request body, answering the framing/i-o failure
/// modes in place. `None` means the response is already written.
fn buffer_body(
    conn: &mut Conn,
    req: &Request,
    deadline: Instant,
    cap: usize,
    outcome: &mut ReqOutcome,
    what: &str,
) -> Option<String> {
    let framing = match http::framing(req) {
        Ok(Framing::None) => {
            outcome.status = 411;
            outcome.close = respond(
                conn,
                411,
                "application/json",
                &json::error_json(&format!("a {what} body is required")),
                false,
            );
            return None;
        }
        Ok(f) => f,
        Err(_) => {
            outcome.status = 400;
            outcome.close = respond(
                conn,
                400,
                "application/json",
                &json::error_json("bad body framing"),
                true,
            );
            return None;
        }
    };
    if let Framing::Length(n) = framing {
        if n > cap as u64 {
            outcome.status = 413;
            outcome.close = respond(
                conn,
                413,
                "application/json",
                &json::error_json(&format!("{what} body too large")),
                true,
            );
            return None;
        }
    }
    let mut body = Body::new(conn, framing, deadline);
    let raw = match read_capped(&mut body, cap) {
        Ok(Some(raw)) => raw,
        Ok(None) => {
            outcome.bytes_in = body.consumed();
            outcome.status = 413;
            outcome.close = respond(
                conn,
                413,
                "application/json",
                &json::error_json(&format!("{what} body too large")),
                true,
            );
            return None;
        }
        Err(e) => {
            outcome.bytes_in = body.consumed();
            body_error_response(conn, outcome, e);
            return None;
        }
    };
    outcome.bytes_in = body.consumed();
    match String::from_utf8(raw) {
        Ok(s) => Some(s),
        Err(_) => {
            outcome.status = 400;
            outcome.close = respond(
                conn,
                400,
                "application/json",
                &json::error_json(&format!("{what} body is not UTF-8")),
                false,
            );
            None
        }
    }
}

/// The session's standing budget: the tenant row plus the server kill
/// switch, but **not** the open request's wire deadline — the session
/// outlives the request that created it.
fn session_limits(shared: &Shared, req: &Request) -> (String, Limits) {
    let (label, limits) = shared.cfg.tenants.resolve(req.header(TENANT_HEADER));
    (
        label.to_string(),
        limits.with_cancel_token(&shared.cfg.cancel),
    )
}

/// `POST /v1/session/{schema}` — full validation pass, then park.
pub(crate) fn handle_session_create(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    req: &Request,
    deadline: Instant,
    schema: &str,
) -> ReqOutcome {
    let (tenant, limits) = session_limits(shared, req);
    let mut outcome = ReqOutcome {
        tenant,
        ..ReqOutcome::plain(200, false)
    };
    let Some(document) = buffer_body(
        conn,
        req,
        deadline,
        limits.max_input_bytes,
        &mut outcome,
        "document",
    ) else {
        return outcome;
    };
    let _span = obs::span!("http.session.create", schema = schema);
    match shared.registry.open_session(schema, &document, limits) {
        Ok(session) => match shared.sessions.insert(session) {
            Some(id) => {
                if obs::enabled() {
                    obs::metrics()
                        .counter("http_sessions_opened_total", "Patch sessions opened.")
                        .inc();
                }
                let entry = shared.sessions.get(id).expect("just inserted");
                let nodes = entry
                    .lock()
                    .expect("session")
                    .session
                    .validator()
                    .node_count();
                let mut body = String::from("{\"session\":");
                json::escape_into(&mut body, &id.to_string());
                body.push_str(",\"schema\":");
                json::escape_into(&mut body, schema);
                body.push_str(&format!(",\"nodes\":{nodes}}}"));
                outcome.status = 201;
                outcome.close = respond(conn, 201, "application/json", &body, false);
                outcome
            }
            None => {
                outcome.status = 503;
                outcome.close = respond(
                    conn,
                    503,
                    "application/json",
                    &json::error_json("session limit reached"),
                    false,
                );
                outcome
            }
        },
        Err(SessionError::UnknownSchema(_)) => {
            outcome.status = 404;
            outcome.close = respond(
                conn,
                404,
                "application/json",
                &json::error_json(&format!("no schema registered under {schema:?}")),
                false,
            );
            outcome
        }
        Err(SessionError::Invalid(errors)) => {
            tally(&mut outcome, &errors);
            // a session requires a valid document, so plain invalidity is
            // a client error here — unlike /v1/validate, where "invalid"
            // is a successful answer
            outcome.status = match json::status_for(&errors) {
                200 => 422,
                s => s,
            };
            outcome.close = respond(
                conn,
                outcome.status,
                "application/json",
                &json::verdict_json(schema, &errors),
                false,
            );
            outcome
        }
    }
}

/// Answers 404 for an id that does not parse or is not parked.
fn session_not_found(conn: &mut Conn, outcome: &mut ReqOutcome, id: &str) {
    outcome.status = 404;
    outcome.close = respond(
        conn,
        404,
        "application/json",
        &json::error_json(&format!("no session {id:?} (expired or never opened)")),
        false,
    );
}

/// `POST /v1/session/{id}/patch` — one patch, one verdict.
pub(crate) fn handle_session_patch(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    req: &Request,
    deadline: Instant,
    id: &str,
) -> ReqOutcome {
    let (tenant, limits) = session_limits(shared, req);
    let mut outcome = ReqOutcome {
        tenant,
        ..ReqOutcome::plain(200, false)
    };
    // the patch JSON wrapper is bounded by the patch-payload budget plus
    // generous framing slack — a hostile megabyte of path indexes is
    // refused before parsing
    let cap = limits.max_patch_bytes.saturating_add(16 << 10);
    let Some(body) = buffer_body(conn, req, deadline, cap, &mut outcome, "patch") else {
        return outcome;
    };
    let entry = match id
        .parse::<u64>()
        .ok()
        .and_then(|id| shared.sessions.get(id))
    {
        Some(entry) => entry,
        None => {
            session_not_found(conn, &mut outcome, id);
            return outcome;
        }
    };
    let patch = match json::parse_json(&body).and_then(|v| decode_patch(&v)) {
        Ok(patch) => patch,
        Err(msg) => {
            outcome.status = 400;
            outcome.close = respond(
                conn,
                400,
                "application/json",
                &json::error_json(&format!("bad patch: {msg}")),
                false,
            );
            return outcome;
        }
    };
    let mut entry = entry.lock().expect("session");
    entry.last_used = Instant::now();
    let result = entry.session.apply(&patch);
    match result {
        Ok(()) => {
            let v = entry.session.validator();
            let body = format!(
                "{{\"applied\":true,\"op\":\"{}\",\"nodes_rechecked\":{},\"doc_nodes\":{}}}",
                patch.op_name(),
                v.nodes_rechecked(),
                v.node_count()
            );
            outcome.status = 200;
            outcome.close = respond(conn, 200, "application/json", &body, false);
            outcome
        }
        Err(PatchError::Invalid(errors)) => {
            tally(&mut outcome, &errors);
            // the patch was *processed* successfully; the answer is
            // "rejected" — 200, like an invalid /v1/validate verdict
            let mut body = String::from("{\"applied\":false,");
            body.push_str(&json::verdict_json(entry.session.schema_name(), &errors)[1..]);
            outcome.status = 200;
            outcome.close = respond(conn, 200, "application/json", &body, false);
            outcome
        }
        Err(PatchError::Resource(kind)) => {
            let errors = vec![ValidationError {
                kind: ValidationErrorKind::Resource(kind),
                span: None,
            }];
            tally(&mut outcome, &errors);
            outcome.status = json::status_for(&errors);
            let mut body = String::from("{\"applied\":false,");
            body.push_str(&json::verdict_json(entry.session.schema_name(), &errors)[1..]);
            outcome.close = respond(conn, outcome.status, "application/json", &body, false);
            outcome
        }
        Err(e @ (PatchError::Structure(_) | PatchError::Fragment(_))) => {
            outcome.status = 400;
            outcome.close = respond(
                conn,
                400,
                "application/json",
                &json::error_json(&e.to_string()),
                false,
            );
            outcome
        }
    }
}

/// `GET /v1/session/{id}` — the current document.
pub(crate) fn handle_session_get(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    _req: &Request,
    id: &str,
) -> ReqOutcome {
    let mut outcome = ReqOutcome::plain(200, false);
    let entry = match id
        .parse::<u64>()
        .ok()
        .and_then(|id| shared.sessions.get(id))
    {
        Some(entry) => entry,
        None => {
            session_not_found(conn, &mut outcome, id);
            return outcome;
        }
    };
    let mut entry = entry.lock().expect("session");
    entry.last_used = Instant::now();
    let xml = entry.session.to_xml();
    outcome.close = respond(conn, 200, "application/xml", &xml, false);
    outcome
}

/// `DELETE /v1/session/{id}` — close a session.
pub(crate) fn handle_session_delete(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    _req: &Request,
    id: &str,
) -> ReqOutcome {
    let mut outcome = ReqOutcome::plain(200, false);
    match id.parse::<u64>().ok().map(|id| shared.sessions.remove(id)) {
        Some(true) => {
            outcome.close = respond(conn, 200, "application/json", "{\"closed\":true}", false);
            outcome
        }
        _ => {
            session_not_found(conn, &mut outcome, id);
            outcome
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_covers_every_op_and_rejects_malformed() {
        let p = decode_patch(
            &json::parse_json("{\"op\":\"set_text\",\"path\":[0,1],\"text\":\"x\"}").unwrap(),
        )
        .unwrap();
        assert_eq!(
            p,
            DomPatch::SetText {
                at: vec![0, 1],
                text: "x".into()
            }
        );
        let p = decode_patch(
            &json::parse_json(
                "{\"op\":\"replace_child\",\"path\":[],\"index\":3,\
                 \"node\":{\"kind\":\"pi\",\"target\":\"t\",\"data\":\"d\"}}",
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(
            p,
            DomPatch::ReplaceChild {
                at: vec![],
                index: 3,
                child: NewNode::Pi {
                    target: "t".into(),
                    data: "d".into()
                }
            }
        );
        for bad in [
            "{}",
            "{\"op\":\"warp\"}",
            "{\"op\":\"set_text\",\"path\":[-1],\"text\":\"x\"}",
            "{\"op\":\"set_text\",\"path\":[0.5],\"text\":\"x\"}",
            "{\"op\":\"set_text\",\"path\":0,\"text\":\"x\"}",
            "{\"op\":\"append_child\",\"path\":[],\"node\":{\"kind\":\"blob\"}}",
            "{\"op\":\"insert_child\",\"path\":[],\"node\":{\"kind\":\"text\",\"text\":\"x\"}}",
        ] {
            let v = json::parse_json(bad).unwrap();
            assert!(decode_patch(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn table_caps_and_sweeps() {
        let reg = webgen::SchemaRegistry::with_corpus().unwrap();
        let doc = webgen::render_order_string(&webgen::generate_order(1, 1));
        let open = || {
            reg.open_session("purchase-order", &doc, Limits::default())
                .unwrap()
        };
        let table = SessionTable::new(2, Duration::from_secs(60));
        let a = table.insert(open()).unwrap();
        let _b = table.insert(open()).unwrap();
        assert!(table.insert(open()).is_none(), "cap refuses the third");
        assert!(table.remove(a));
        assert!(!table.remove(a));
        assert!(table.insert(open()).is_some());
        // zero TTL: everything idle is swept on the next access
        let table = SessionTable::new(8, Duration::ZERO);
        let id = table.insert(open()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert!(table.get(id).is_none(), "idle session swept");
        assert_eq!(table.len(), 0);
    }
}
