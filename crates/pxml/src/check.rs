//! The static type checker — the validating half of the paper's
//! generated preprocessor (Fig. 9): every constructor is checked against
//! the schema *before the program runs*.
//!
//! Checked statically: element names and ordering (content-model DFA),
//! choice membership, required/undeclared attributes, literal attribute
//! values (including `fixed`), literal simple-typed content, text
//! placement, and hole typing (element variables step the DFA with their
//! tag; text variables require mixed/simple content). Hole *values* are,
//! by nature, runtime data — the instantiation engine re-checks only
//! those.

use automata::Matcher;
use dom::NodeKind;
use schema::{CompiledSchema, ContentModel, TypeDef, TypeRef};
use xmlchars::Position;

use crate::error::{PxmlError, PxmlErrorKind};
use crate::holes::{split_holes, Part};
use crate::template::{resolve_element_type, Template, TypeEnv, VarType};

/// Counts one template check and, when it produced diagnostics, one
/// reject. Called once per top-level check entry point.
fn record_check(errors: &[PxmlError]) {
    if !obs::enabled() {
        return;
    }
    let metrics = obs::metrics();
    metrics
        .counter(
            "pxml_templates_checked_total",
            "Templates run through the static checker.",
        )
        .inc();
    if !errors.is_empty() {
        metrics
            .counter(
                "pxml_templates_rejected_total",
                "Templates the static checker rejected.",
            )
            .inc();
    }
}

/// Statically checks `template` against the schema in `compiled`,
/// inferring the root's type from its tag. Returns all diagnostics.
pub fn check_template(
    compiled: &CompiledSchema,
    template: &Template,
    env: &TypeEnv,
) -> Vec<PxmlError> {
    let tag = template.root_tag().to_string();
    match resolve_element_type(compiled.schema(), &tag) {
        // check_template_as records the check
        Some(type_ref) => check_template_as(compiled, template, env, &type_ref),
        None => {
            let errors = vec![PxmlError::at(
                PxmlErrorKind::UnknownRootElement(tag),
                template
                    .doc
                    .span(template.root)
                    .map(|s| s.start)
                    .unwrap_or_default(),
            )];
            record_check(&errors);
            errors
        }
    }
}

/// Statically checks `template` against an explicit root type.
pub fn check_template_as(
    compiled: &CompiledSchema,
    template: &Template,
    env: &TypeEnv,
    root_type: &TypeRef,
) -> Vec<PxmlError> {
    let _span = obs::span!("pxml.check");
    let mut errors = Vec::new();
    let checker = Checker {
        compiled,
        template,
        env,
    };
    checker.check_element(template.root, root_type, &mut errors);
    record_check(&errors);
    errors
}

struct Checker<'a> {
    compiled: &'a CompiledSchema,
    template: &'a Template,
    env: &'a TypeEnv,
}

impl<'a> Checker<'a> {
    fn pos(&self, node: dom::NodeId) -> Position {
        self.template
            .doc
            .span(node)
            .map(|s| s.start)
            .unwrap_or_default()
    }

    fn check_element(&self, node: dom::NodeId, type_ref: &TypeRef, errors: &mut Vec<PxmlError>) {
        let doc = &self.template.doc;
        let schema = self.compiled.schema();
        let element = doc.tag_name(node).unwrap_or_default().to_string();
        let pos = self.pos(node);

        // ---- attributes ---------------------------------------------------
        let declared = match type_ref {
            TypeRef::Named(n) | TypeRef::Anonymous(n) => {
                schema.effective_attributes(n).unwrap_or_default()
            }
            TypeRef::Builtin(_) => Vec::new(),
        };
        let present = doc.attributes(node).unwrap_or(&[]).to_vec();
        for attr in &present {
            if attr.name == "xmlns" || attr.name.starts_with("xmlns:") {
                continue;
            }
            let decl = match declared.iter().find(|d| d.name == attr.name) {
                Some(d) => d,
                None => {
                    errors.push(PxmlError::at(
                        PxmlErrorKind::UndeclaredAttribute {
                            element: element.clone(),
                            attribute: attr.name.clone(),
                        },
                        pos,
                    ));
                    continue;
                }
            };
            match split_holes(&attr.value) {
                Ok(parts) => {
                    let mut has_hole = false;
                    for part in &parts {
                        if let Part::Hole(name) = part {
                            has_hole = true;
                            match self.env.get(name) {
                                None => errors.push(PxmlError::at(
                                    PxmlErrorKind::UnboundVariable(name.clone()),
                                    pos,
                                )),
                                Some(VarType::Element(_)) => errors.push(PxmlError::at(
                                    PxmlErrorKind::ElementHoleInAttribute {
                                        variable: name.clone(),
                                        attribute: attr.name.clone(),
                                    },
                                    pos,
                                )),
                                Some(VarType::Text) => {}
                            }
                        }
                    }
                    if !has_hole {
                        // literal value: fully checkable now
                        if let Err(e) = schema.validate_simple_value(&decl.type_ref, &attr.value) {
                            errors.push(PxmlError::at(
                                PxmlErrorKind::BadAttributeValue {
                                    element: element.clone(),
                                    attribute: attr.name.clone(),
                                    message: e.to_string(),
                                },
                                pos,
                            ));
                        }
                        if let Some(fixed) = &decl.fixed {
                            if &attr.value != fixed {
                                errors.push(PxmlError::at(
                                    PxmlErrorKind::BadAttributeValue {
                                        element: element.clone(),
                                        attribute: attr.name.clone(),
                                        message: format!("must be fixed value {fixed:?}"),
                                    },
                                    pos,
                                ));
                            }
                        }
                    }
                }
                Err(e) => errors.push(PxmlError::at(PxmlErrorKind::HoleSyntax(e.message), pos)),
            }
        }
        for decl in &declared {
            if decl.required && !present.iter().any(|a| a.name == decl.name) {
                errors.push(PxmlError::at(
                    PxmlErrorKind::MissingAttribute {
                        element: element.clone(),
                        attribute: decl.name.clone(),
                    },
                    pos,
                ));
            }
        }

        // ---- content -------------------------------------------------------
        let (complex_name, mixed, simple) = self.classify(type_ref);
        match complex_name {
            Some(type_name) => {
                self.check_complex_content(node, &element, &type_name, mixed, errors)
            }
            None => self.check_simple_content(node, &element, simple.as_ref(), errors),
        }
    }

    /// Classifies the content of `type_ref`:
    /// `(complex type name for DFA, mixed, simple content type)`.
    fn classify(&self, type_ref: &TypeRef) -> (Option<String>, bool, Option<TypeRef>) {
        match type_ref {
            TypeRef::Builtin(_) => (None, false, Some(type_ref.clone())),
            TypeRef::Named(n) | TypeRef::Anonymous(n) => match self.compiled.schema().type_def(n) {
                Some(TypeDef::Simple(_)) => (None, false, Some(type_ref.clone())),
                Some(TypeDef::Complex(ct)) => match &ct.content {
                    ContentModel::Simple(inner) => (None, false, Some(inner.clone())),
                    ContentModel::Mixed(_) => (Some(n.clone()), true, None),
                    _ => (Some(n.clone()), false, None),
                },
                None => (None, false, None),
            },
        }
    }

    fn check_complex_content(
        &self,
        node: dom::NodeId,
        element: &str,
        type_name: &str,
        mixed: bool,
        errors: &mut Vec<PxmlError>,
    ) {
        let doc = &self.template.doc;
        let schema = self.compiled.schema();
        let dfa = match self.compiled.content_dfa(type_name) {
            Ok(d) => d,
            Err(e) => {
                errors.push(PxmlError::at(
                    PxmlErrorKind::BadSimpleValue {
                        element: element.to_string(),
                        message: e.to_string(),
                    },
                    self.pos(node),
                ));
                return;
            }
        };
        let mut matcher = dfa.start();
        let mut content_ok = true;
        for child in doc.child_vec(node).unwrap_or_default() {
            match doc.kind(child) {
                Ok(NodeKind::Element { name, .. }) => {
                    let name = name.clone();
                    if content_ok {
                        if let Err(e) = matcher.step(&name) {
                            errors.push(PxmlError::at(
                                PxmlErrorKind::ContentModel {
                                    parent: element.to_string(),
                                    got: name.clone(),
                                    expected: e.expected,
                                },
                                self.pos(child),
                            ));
                            content_ok = false;
                        }
                    }
                    match schema.child_element_type(type_name, &name) {
                        Some(t) => self.check_element(child, &t, errors),
                        None => {
                            if content_ok {
                                // DFA accepted it through a substitution
                                // group leaf but the lookup failed —
                                // shouldn't happen; report defensively.
                                errors.push(PxmlError::at(
                                    PxmlErrorKind::UnknownChild {
                                        parent: element.to_string(),
                                        child: name,
                                    },
                                    self.pos(child),
                                ));
                            }
                        }
                    }
                }
                Ok(NodeKind::Text(t)) => {
                    let parts = match split_holes(t) {
                        Ok(p) => p,
                        Err(e) => {
                            errors.push(PxmlError::at(
                                PxmlErrorKind::HoleSyntax(e.message),
                                self.pos(child),
                            ));
                            continue;
                        }
                    };
                    for part in parts {
                        match part {
                            Part::Text(text) => {
                                if !mixed && !text.trim().is_empty() {
                                    errors.push(PxmlError::at(
                                        PxmlErrorKind::TextNotAllowed {
                                            element: element.to_string(),
                                        },
                                        self.pos(child),
                                    ));
                                }
                            }
                            Part::Hole(name) => match self.env.get(&name) {
                                None => errors.push(PxmlError::at(
                                    PxmlErrorKind::UnboundVariable(name),
                                    self.pos(child),
                                )),
                                Some(VarType::Text) => {
                                    if !mixed {
                                        errors.push(PxmlError::at(
                                            PxmlErrorKind::TextNotAllowed {
                                                element: element.to_string(),
                                            },
                                            self.pos(child),
                                        ));
                                    }
                                }
                                Some(VarType::Element(tag)) => {
                                    if content_ok {
                                        if let Err(e) = matcher.step(tag) {
                                            errors.push(PxmlError::at(
                                                PxmlErrorKind::ContentModel {
                                                    parent: element.to_string(),
                                                    got: format!("${name}$ (a <{tag}>)"),
                                                    expected: e.expected,
                                                },
                                                self.pos(child),
                                            ));
                                            content_ok = false;
                                        }
                                    }
                                }
                            },
                        }
                    }
                }
                _ => {}
            }
        }
        if content_ok && !matcher.is_accepting() {
            errors.push(PxmlError::at(
                PxmlErrorKind::Incomplete {
                    element: element.to_string(),
                    expected: matcher.expected(),
                },
                self.pos(node),
            ));
        }
    }

    fn check_simple_content(
        &self,
        node: dom::NodeId,
        element: &str,
        simple: Option<&TypeRef>,
        errors: &mut Vec<PxmlError>,
    ) {
        let doc = &self.template.doc;
        // no element children
        for child in doc.child_elements(node) {
            errors.push(PxmlError::at(
                PxmlErrorKind::UnknownChild {
                    parent: element.to_string(),
                    child: doc.tag_name(child).unwrap_or_default().to_string(),
                },
                self.pos(child),
            ));
        }
        let text = doc.text_content(node).unwrap_or_default();
        match split_holes(&text) {
            Ok(parts) => {
                let has_hole = parts.iter().any(|p| matches!(p, Part::Hole(_)));
                for part in &parts {
                    if let Part::Hole(name) = part {
                        match self.env.get(name) {
                            None => errors.push(PxmlError::at(
                                PxmlErrorKind::UnboundVariable(name.clone()),
                                self.pos(node),
                            )),
                            Some(VarType::Element(tag)) => errors.push(PxmlError::at(
                                PxmlErrorKind::UnknownChild {
                                    parent: element.to_string(),
                                    child: tag.clone(),
                                },
                                self.pos(node),
                            )),
                            Some(VarType::Text) => {}
                        }
                    }
                }
                if !has_hole {
                    if let Some(simple) = simple {
                        if let Err(e) = self.compiled.schema().validate_simple_value(simple, &text)
                        {
                            errors.push(PxmlError::at(
                                PxmlErrorKind::BadSimpleValue {
                                    element: element.to_string(),
                                    message: e.to_string(),
                                },
                                self.pos(node),
                            ));
                        }
                    }
                }
            }
            Err(e) => errors.push(PxmlError::at(
                PxmlErrorKind::HoleSyntax(e.message),
                self.pos(node),
            )),
        }
    }
}
