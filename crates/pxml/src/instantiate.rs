//! Runtime instantiation of checked templates.
//!
//! A template that passed [`crate::check_template`] can be instantiated
//! with runtime bindings; instantiation replays the template through the
//! typed V-DOM API, so even unchecked templates cannot produce invalid
//! structure — but for checked templates the only checks that can still
//! fire are value-level ones on spliced runtime data (the paper's
//! runtime-residue: facets and occurrence counts).

use std::collections::BTreeMap;

use dom::{Document, NodeId, NodeKind};
use schema::{CompiledSchema, TypeRef};
use vdom::{TypedDocument, TypedElement, VdomError};

use crate::holes::{split_holes, Part};
use crate::template::{resolve_element_type, Template};

/// A validated, sealed document fragment — the runtime value of a V-DOM
/// element variable.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// The fragment's root tag.
    pub tag: String,
    /// The root's schema type.
    pub type_ref: TypeRef,
    /// The sealed (valid) document holding the fragment.
    pub doc: Document,
    /// The fragment root inside `doc`.
    pub root: NodeId,
}

impl Fragment {
    /// Serializes the fragment compactly.
    pub fn to_xml(&self) -> String {
        dom::serialize(&self.doc, self.root).unwrap_or_default()
    }
}

/// A runtime binding value.
#[derive(Debug, Clone)]
pub enum Value {
    /// A string spliced as character data or into attribute values.
    Text(String),
    /// An element fragment spliced as a child element.
    Fragment(Fragment),
}

/// Runtime bindings: variable name → value.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    values: BTreeMap<String, Value>,
}

impl Bindings {
    /// An empty set of bindings.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Binds a text value.
    pub fn text(mut self, name: impl Into<String>, value: impl Into<String>) -> Bindings {
        self.values.insert(name.into(), Value::Text(value.into()));
        self
    }

    /// Binds an element fragment.
    pub fn fragment(mut self, name: impl Into<String>, fragment: Fragment) -> Bindings {
        self.values.insert(name.into(), Value::Fragment(fragment));
        self
    }

    /// Looks up a binding.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }
}

/// Instantiation errors: either a missing/mistyped binding or a typed
/// construction failure.
#[derive(Debug)]
pub enum InstantiateError {
    /// A hole had no binding, or a binding of the wrong kind.
    Binding(String),
    /// The typed layer rejected the construction.
    Vdom(VdomError),
}

impl std::fmt::Display for InstantiateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstantiateError::Binding(m) => write!(f, "binding error: {m}"),
            InstantiateError::Vdom(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for InstantiateError {}

impl From<VdomError> for InstantiateError {
    fn from(e: VdomError) -> Self {
        InstantiateError::Vdom(e)
    }
}

/// Instantiates `template` with `bindings`, producing a sealed fragment.
pub fn instantiate(
    compiled: &CompiledSchema,
    template: &Template,
    bindings: &Bindings,
) -> Result<Fragment, InstantiateError> {
    let _span = obs::span!("pxml.instantiate");
    let mut holes = 0u64;
    let result = instantiate_inner(compiled, template, bindings, &mut holes);
    if obs::enabled() {
        let metrics = obs::metrics();
        metrics
            .counter(
                "pxml_holes_instantiated_total",
                "Template holes filled with runtime bindings.",
            )
            .inc_by(holes);
        if result.is_err() {
            metrics
                .counter(
                    "pxml_instantiate_rejects_total",
                    "Instantiations rejected at runtime (bad binding or typed-layer refusal).",
                )
                .inc();
        }
    }
    result
}

fn instantiate_inner(
    compiled: &CompiledSchema,
    template: &Template,
    bindings: &Bindings,
    holes: &mut u64,
) -> Result<Fragment, InstantiateError> {
    let tag = template.root_tag().to_string();
    let type_ref = resolve_element_type(compiled.schema(), &tag).ok_or_else(|| {
        InstantiateError::Binding(format!("root element <{tag}> is not declared"))
    })?;
    let mut td = TypedDocument::new(compiled.clone());
    let root = td.create_root_typed(&tag, &type_ref)?;
    fill(&mut td, root, template, template.root, bindings, holes)?;
    let doc = td.seal()?;
    let root = doc.root_element().expect("sealed fragment has a root");
    Ok(Fragment {
        tag,
        type_ref,
        doc,
        root,
    })
}

fn fill(
    td: &mut TypedDocument,
    dst: TypedElement,
    template: &Template,
    src: NodeId,
    bindings: &Bindings,
    holes: &mut u64,
) -> Result<(), InstantiateError> {
    let doc = &template.doc;
    // attributes, with text holes substituted
    for attr in doc.attributes(src).unwrap_or(&[]).to_vec() {
        if attr.name == "xmlns" || attr.name.starts_with("xmlns:") {
            continue;
        }
        let parts = split_holes(&attr.value).map_err(|e| InstantiateError::Binding(e.message))?;
        let mut value = String::new();
        for part in parts {
            match part {
                Part::Text(t) => value.push_str(&t),
                Part::Hole(name) => match bindings.get(&name) {
                    Some(Value::Text(t)) => {
                        *holes += 1;
                        value.push_str(t);
                    }
                    Some(Value::Fragment(_)) => {
                        return Err(InstantiateError::Binding(format!(
                            "element variable ${name}$ used in attribute {}",
                            attr.name
                        )))
                    }
                    None => {
                        return Err(InstantiateError::Binding(format!(
                            "unbound variable ${name}$"
                        )))
                    }
                },
            }
        }
        td.set_attribute(dst, &attr.name, value)?;
    }
    // children
    for child in doc.child_vec(src).unwrap_or_default() {
        match doc
            .kind(child)
            .map_err(|e| InstantiateError::Binding(e.to_string()))?
        {
            NodeKind::Element { .. } => {
                let name = doc.tag_name(child).unwrap_or_default().to_string();
                let new_el = td.append_element(dst, &name)?;
                fill(td, new_el, template, child, bindings, holes)?;
            }
            NodeKind::Text(t) => {
                let parts = split_holes(t).map_err(|e| InstantiateError::Binding(e.message))?;
                for part in parts {
                    match part {
                        Part::Text(text) => {
                            if text.trim().is_empty() {
                                continue; // template formatting whitespace
                            }
                            td.append_text(dst, text)?;
                        }
                        Part::Hole(name) => match bindings.get(&name) {
                            Some(Value::Text(text)) => {
                                *holes += 1;
                                td.append_text(dst, text.clone())?;
                            }
                            Some(Value::Fragment(frag)) => {
                                *holes += 1;
                                td.import_element(dst, &frag.doc, frag.root)?;
                            }
                            None => {
                                return Err(InstantiateError::Binding(format!(
                                    "unbound variable ${name}$"
                                )))
                            }
                        },
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}
