//! Runtime instantiation of checked templates.
//!
//! A template that passed [`crate::check_template`] can be instantiated
//! with runtime bindings; instantiation replays the template through the
//! typed V-DOM API, so even unchecked templates cannot produce invalid
//! structure — but for checked templates the only checks that can still
//! fire are value-level ones on spliced runtime data (the paper's
//! runtime-residue: facets and occurrence counts).
//!
//! This interpreter is also the differential oracle for the compiled
//! path in [`crate::plan`]: `CompiledTemplate::render` must produce the
//! same bytes (or the same typed rejection) as `instantiate` followed by
//! [`Fragment::to_xml`].

use std::collections::BTreeMap;

use dom::{Document, NodeId, NodeKind};
use schema::{CompiledSchema, TypeRef};
use vdom::{TypedDocument, TypedElement, VdomError};

use crate::holes::{split_holes_ref, PartRef};
use crate::template::{resolve_element_type, Template};

/// A validated, sealed document fragment — the runtime value of a V-DOM
/// element variable.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// The fragment's root tag.
    pub tag: String,
    /// The root's schema type.
    pub type_ref: TypeRef,
    /// The sealed (valid) document holding the fragment.
    pub doc: Document,
    /// The fragment root inside `doc`.
    pub root: NodeId,
}

impl Fragment {
    /// Serializes the fragment compactly.
    pub fn to_xml(&self) -> Result<String, dom::DomError> {
        dom::serialize(&self.doc, self.root)
    }

    /// Serializes the fragment once into splice-ready bytes, applying
    /// the same filtering the typed import applies (xmlns attributes
    /// dropped, compact empty-element form), so a compiled template
    /// splices the result byte-identically to splicing the fragment
    /// itself — without re-walking the tree per render.
    pub fn to_rendered(&self) -> Result<RenderedFragment, dom::DomError> {
        let mut out = Vec::new();
        crate::plan::write_filtered(&self.doc, self.root, &mut out)?;
        Ok(RenderedFragment {
            tag: self.tag.clone(),
            type_ref: self.type_ref.clone(),
            xml: String::from_utf8(out).expect("serializer emits UTF-8"),
        })
    }
}

/// A pre-serialized fragment: the output of [`Fragment::to_rendered`].
///
/// Compiled templates splice its bytes verbatim after the structural
/// residue checks (declared child type, content-model step); the
/// interpreter oracle re-parses the bytes through the typed import.
#[derive(Debug, Clone)]
pub struct RenderedFragment {
    /// The fragment's root tag.
    pub tag: String,
    /// The root's schema type.
    pub type_ref: TypeRef,
    /// Compact, import-filtered serialization of the fragment.
    pub xml: String,
}

/// A runtime binding value.
#[derive(Debug, Clone)]
pub enum Value {
    /// A string spliced as character data or into attribute values.
    Text(String),
    /// An element fragment spliced as a child element.
    Fragment(Fragment),
    /// Zero or more fragments spliced in order — the natural value for
    /// a repeated (`maxOccurs > 1`) or optional hole.
    FragmentList(Vec<Fragment>),
    /// A pre-serialized fragment spliced as a child element.
    Rendered(RenderedFragment),
    /// Zero or more pre-serialized fragments spliced in order.
    RenderedList(Vec<RenderedFragment>),
}

/// Runtime bindings: variable name → value.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    values: BTreeMap<String, Value>,
}

impl Bindings {
    /// An empty set of bindings.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Binds a text value.
    pub fn text(mut self, name: impl Into<String>, value: impl Into<String>) -> Bindings {
        self.values.insert(name.into(), Value::Text(value.into()));
        self
    }

    /// Binds an element fragment.
    pub fn fragment(mut self, name: impl Into<String>, fragment: Fragment) -> Bindings {
        self.values.insert(name.into(), Value::Fragment(fragment));
        self
    }

    /// Binds a list of element fragments (possibly empty).
    pub fn fragment_list(mut self, name: impl Into<String>, fragments: Vec<Fragment>) -> Bindings {
        self.values
            .insert(name.into(), Value::FragmentList(fragments));
        self
    }

    /// Binds a pre-serialized fragment.
    pub fn rendered(mut self, name: impl Into<String>, fragment: RenderedFragment) -> Bindings {
        self.values.insert(name.into(), Value::Rendered(fragment));
        self
    }

    /// Binds a list of pre-serialized fragments (possibly empty).
    pub fn rendered_list(
        mut self,
        name: impl Into<String>,
        fragments: Vec<RenderedFragment>,
    ) -> Bindings {
        self.values
            .insert(name.into(), Value::RenderedList(fragments));
        self
    }

    /// Sets a text value in place — the hot-loop form of
    /// [`text`](Self::text): when the name is already bound, only the
    /// value is replaced (no key re-allocation, no tree rebalancing).
    pub fn set_text(&mut self, name: &str, value: impl Into<String>) {
        match self.values.get_mut(name) {
            Some(slot) => *slot = Value::Text(value.into()),
            None => {
                self.values
                    .insert(name.to_string(), Value::Text(value.into()));
            }
        }
    }

    /// Sets a pre-serialized fragment list in place — the hot-loop form
    /// of [`rendered_list`](Self::rendered_list).
    pub fn set_rendered_list(&mut self, name: &str, fragments: Vec<RenderedFragment>) {
        match self.values.get_mut(name) {
            Some(slot) => *slot = Value::RenderedList(fragments),
            None => {
                self.values
                    .insert(name.to_string(), Value::RenderedList(fragments));
            }
        }
    }

    /// Looks up a binding.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }
}

/// Instantiation errors: either a missing/mistyped binding or a typed
/// construction failure.
#[derive(Debug)]
pub enum InstantiateError {
    /// A hole had no binding, or a binding of the wrong kind.
    Binding(String),
    /// The typed layer rejected the construction.
    Vdom(VdomError),
}

impl std::fmt::Display for InstantiateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstantiateError::Binding(m) => write!(f, "binding error: {m}"),
            InstantiateError::Vdom(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for InstantiateError {}

impl From<VdomError> for InstantiateError {
    fn from(e: VdomError) -> Self {
        InstantiateError::Vdom(e)
    }
}

/// Instantiates `template` with `bindings`, producing a sealed fragment.
pub fn instantiate(
    compiled: &CompiledSchema,
    template: &Template,
    bindings: &Bindings,
) -> Result<Fragment, InstantiateError> {
    let _span = obs::span!("pxml.instantiate");
    let mut holes = 0u64;
    let result = instantiate_inner(compiled, template, bindings, &mut holes);
    if obs::enabled() {
        let metrics = obs::metrics();
        metrics
            .counter(
                "pxml_holes_instantiated_total",
                "Template holes filled with runtime bindings.",
            )
            .inc_by(holes);
        if result.is_err() {
            metrics
                .counter(
                    "pxml_instantiate_rejects_total",
                    "Instantiations rejected at runtime (bad binding or typed-layer refusal).",
                )
                .inc();
        }
    }
    result
}

fn instantiate_inner(
    compiled: &CompiledSchema,
    template: &Template,
    bindings: &Bindings,
    holes: &mut u64,
) -> Result<Fragment, InstantiateError> {
    let tag = template.root_tag().to_string();
    let type_ref = resolve_element_type(compiled.schema(), &tag).ok_or_else(|| {
        InstantiateError::Binding(format!("root element <{tag}> is not declared"))
    })?;
    let mut td = TypedDocument::new(compiled.clone());
    let root = td.create_root_typed(&tag, &type_ref)?;
    fill(&mut td, root, template, template.root, bindings, holes)?;
    let doc = td.seal()?;
    let root = doc.root_element().expect("sealed fragment has a root");
    Ok(Fragment {
        tag,
        type_ref,
        doc,
        root,
    })
}

pub(crate) fn unbound(name: &str) -> InstantiateError {
    InstantiateError::Binding(format!("unbound variable ${name}$"))
}

fn splice(
    td: &mut TypedDocument,
    dst: TypedElement,
    name: &str,
    value: &Value,
) -> Result<(), InstantiateError> {
    match value {
        Value::Text(text) => td.append_text(dst, text.as_str())?,
        Value::Fragment(frag) => {
            td.import_element(dst, &frag.doc, frag.root)?;
        }
        Value::FragmentList(frags) => {
            for frag in frags {
                td.import_element(dst, &frag.doc, frag.root)?;
            }
        }
        Value::Rendered(r) => splice_rendered(td, dst, name, r)?,
        Value::RenderedList(rs) => {
            for r in rs {
                splice_rendered(td, dst, name, r)?;
            }
        }
    }
    Ok(())
}

fn splice_rendered(
    td: &mut TypedDocument,
    dst: TypedElement,
    name: &str,
    r: &RenderedFragment,
) -> Result<(), InstantiateError> {
    let (doc, root) = xmlparse::parse_fragment(&r.xml).map_err(|e| {
        InstantiateError::Binding(format!(
            "rendered fragment for ${name}$ does not reparse: {e}"
        ))
    })?;
    td.import_element(dst, &doc, root)?;
    Ok(())
}

fn fill(
    td: &mut TypedDocument,
    dst: TypedElement,
    template: &Template,
    src: NodeId,
    bindings: &Bindings,
    holes: &mut u64,
) -> Result<(), InstantiateError> {
    let doc = &template.doc;
    // attributes, with text holes substituted
    for attr in doc.attributes(src).unwrap_or(&[]) {
        if attr.name == "xmlns" || attr.name.starts_with("xmlns:") {
            continue;
        }
        let parts =
            split_holes_ref(&attr.value).map_err(|e| InstantiateError::Binding(e.message))?;
        let mut value = String::new();
        for part in parts {
            match part {
                PartRef::Text(t) => value.push_str(&t),
                PartRef::Hole(name) => match bindings.get(name) {
                    Some(Value::Text(t)) => {
                        *holes += 1;
                        value.push_str(t);
                    }
                    Some(_) => {
                        return Err(InstantiateError::Binding(format!(
                            "element variable ${name}$ used in attribute {}",
                            attr.name
                        )))
                    }
                    None => return Err(unbound(name)),
                },
            }
        }
        td.set_attribute(dst, &attr.name, value)?;
    }
    // children
    for &child in doc.child_slice(src).unwrap_or(&[]) {
        match doc
            .kind(child)
            .map_err(|e| InstantiateError::Binding(e.to_string()))?
        {
            NodeKind::Element { .. } => {
                let name = doc.tag_name(child).unwrap_or_default();
                let new_el = td.append_element(dst, name)?;
                fill(td, new_el, template, child, bindings, holes)?;
            }
            NodeKind::Text(t) => {
                let parts = split_holes_ref(t).map_err(|e| InstantiateError::Binding(e.message))?;
                for part in parts {
                    match part {
                        PartRef::Text(text) => {
                            if text.trim().is_empty() {
                                continue; // template formatting whitespace
                            }
                            td.append_text(dst, text.into_owned())?;
                        }
                        PartRef::Hole(name) => {
                            let value = bindings.get(name).ok_or_else(|| unbound(name))?;
                            *holes += 1;
                            splice(td, dst, name, value)?;
                        }
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}
