//! **P-XML** — Parametric XML (paper Sect. 4): XML constructor
//! expressions with `$variable$` holes, statically validated against an
//! XML Schema and compiled to typed V-DOM construction code.
//!
//! The paper's workflow (Fig. 9):
//!
//! ```text
//! XML Schema ──(generator)──▶ preprocessor
//! P-XML program ──(preprocessor)──▶ V-DOM program
//! ```
//!
//! Here the "preprocessor generated from the schema" is the pair of
//! [`check_template`] (static validation, driven by the schema's content
//! DFAs) and [`emit_rust`] (rewriting constructors into V-DOM calls,
//! Fig. 11). [`instantiate()`](crate::instantiate::instantiate) is the runtime engine for programs that keep
//! templates at runtime — it replays the template through the typed API,
//! so it cannot produce invalid structure either.
//!
//! # Example (the paper's first constructor, Sect. 4)
//!
//! ```
//! use pxml::{check_template, instantiate, Bindings, Template, TypeEnv};
//! use schema::{corpus, CompiledSchema};
//!
//! let compiled = CompiledSchema::parse(corpus::PURCHASE_ORDER_XSD).unwrap();
//! let template = Template::parse(r#"
//!   <shipTo country="US">
//!     $n$
//!     <street>123 Maple Street</street>
//!     <city>Mill Valley</city>
//!     <state>CA</state>
//!     <zip>90952</zip>
//!   </shipTo>"#).unwrap();
//! let env = TypeEnv::new().element("n", "name");
//!
//! // static check: no test runs needed
//! assert!(check_template(&compiled, &template, &env).is_empty());
//!
//! // runtime instantiation with a fragment for $n$
//! let name = Template::parse("<name>Alice Smith</name>").unwrap();
//! let name_frag = instantiate(&compiled, &name, &Bindings::new()).unwrap();
//! let ship = instantiate(&compiled, &template,
//!     &Bindings::new().fragment("n", name_frag)).unwrap();
//! let xml = ship.to_xml().unwrap();
//! assert!(xml.starts_with("<shipTo country=\"US\"><name>Alice Smith</name>"));
//!
//! // or: compile once, then render pages with zero revalidation —
//! // byte-identical to the interpreter, at memcpy speed
//! let plan = pxml::plan(&compiled, &template, &env).unwrap();
//! let name_frag = instantiate(&compiled, &name, &Bindings::new()).unwrap();
//! let page = plan
//!     .render_to_string(&Bindings::new().fragment("n", name_frag))
//!     .unwrap();
//! assert_eq!(page, xml);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod emit;
pub mod error;
pub mod holes;
pub mod instantiate;
pub mod plan;
pub mod template;

pub use check::{check_template, check_template_as};
pub use emit::{emit_rust, param_name};
pub use error::{PxmlError, PxmlErrorKind};
pub use holes::{split_holes, split_holes_ref, Part, PartRef};
pub use instantiate::{instantiate, Bindings, Fragment, InstantiateError, RenderedFragment, Value};
pub use plan::{plan, plan_as, CompiledTemplate};
pub use template::{resolve_element_type, Template, TypeEnv, VarType};
