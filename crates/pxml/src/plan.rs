//! Template compilation: lowering a checked template into a
//! [`CompiledTemplate`] — a flat program of precomputed static byte
//! segments interleaved with typed hole slots.
//!
//! This realizes the promise of the paper's Fig. 9 pipeline (and of the
//! Haberland unification result in PAPERS.md): a template that passed
//! [`crate::check_template`] needs **no structural revalidation** at
//! instantiation time. Everything the static checker proved — element
//! order, attribute presence, literal values, text placement — is baked
//! into the plan as pre-escaped bytes. [`CompiledTemplate::render`] is
//! memcpy-plus-escaped-hole-fills: no DOM is built, no `seal()` runs,
//! and the only checks left are the paper's *runtime residue*:
//!
//! * facet validation of text spliced into simple-typed content and
//!   attribute values (plus `fixed` equality),
//! * fragment residue on element splices: the child must be declared in
//!   the parent's type, must step the parent's content-model DFA
//!   (occurrence counts for repeated/optional splices — resumed at the
//!   hole's precomputed entry state, no tree required), and must carry
//!   exactly the declared type,
//! * content-model completeness at each dynamic element's close.
//!
//! The interpreter in [`crate::instantiate`] is kept as the
//! differential oracle: for every binding set, `render` produces the
//! same bytes as `instantiate(..)` + [`Fragment::to_xml`] — or the same
//! typed error when exactly one fault is present (the two engines
//! discover multiple faults in different orders: the interpreter
//! validates bottom-up at `seal`, the plan in document order).
//!
//! One documented divergence: splicing a fragment whose type differs
//! from the declared child type is a typed `Binding` error here, while
//! the interpreter deep-revalidates the fragment against the declared
//! type. The compiled path trusts sealed fragments instead of
//! re-walking them — that trust is only sound for the exact type they
//! were sealed under.

use std::borrow::Cow;
use std::sync::Arc;

use automata::{ContentDfa, DfaMatcher, Matcher};
use dom::{Document, NodeId, NodeKind};
use schema::{CompiledSchema, ContentModel, TypeDef, TypeRef};
use symbols::Sym;
use vdom::VdomError;
use xmlchars::{escape_attribute, escape_text};

use crate::check::{check_template, check_template_as};
use crate::error::PxmlError;
use crate::holes::{split_holes_ref, PartRef};
use crate::instantiate::{unbound, Bindings, Fragment, InstantiateError, RenderedFragment, Value};
use crate::template::{resolve_element_type, Template, TypeEnv};

/// One literal-or-hole piece of an attribute value or simple-content
/// body, with `$$` escapes already resolved.
#[derive(Debug, Clone)]
enum TextPart {
    /// Literal text, spliced raw into the value then escaped once.
    Lit(String),
    /// A `$name$` hole filled from the bindings.
    Hole(String),
}

/// One instruction of a compiled template.
#[derive(Debug, Clone)]
enum Op {
    /// Pre-escaped bytes copied verbatim.
    Static(Vec<u8>),
    /// Assemble, residue-check, escape and emit one attribute value
    /// (the surrounding ` name="` / `"` bytes are static).
    Attr {
        element: String,
        attribute: String,
        parts: Vec<TextPart>,
        type_ref: TypeRef,
        fixed: Option<String>,
    },
    /// Start content matching at the hole region's precomputed entry
    /// state (the static prefix was verified at plan time).
    PushMatcher { dfa: Arc<ContentDfa>, entry: usize },
    /// Step the innermost matcher over a static child that follows a
    /// hole (its position depends on how many fragments were spliced).
    StepStatic {
        sym: Sym,
        name: String,
        element: String,
    },
    /// Fill one content hole from the bindings (escaped text or
    /// fragment splices, dispatched on the bound value's kind).
    Hole {
        name: String,
        element: String,
        type_name: String,
        mixed: bool,
    },
    /// Assemble simple-typed content from parts, validate the value,
    /// escape and emit it.
    SimpleBody {
        element: String,
        parts: Vec<TextPart>,
        simple: Option<TypeRef>,
    },
    /// Pop the innermost matcher and require an accepting state.
    CloseContent { element: String },
    /// Open a dynamic-shape element: remember the buffer position so an
    /// empty splice collapses `<tag>` to `<tag/>`.
    Open,
    /// Close a dynamic-shape element (`</tag>` or collapse to `/>`).
    CloseShape { tag: String },
}

/// A checked template lowered to static bytes plus typed hole slots.
///
/// Cheap to clone is not a goal — compile once (see
/// `webgen::SchemaRegistry`), render per request.
#[derive(Debug)]
pub struct CompiledTemplate {
    compiled: CompiledSchema,
    root_tag: String,
    type_ref: TypeRef,
    ops: Vec<Op>,
    static_len: u64,
    hole_count: usize,
}

/// Checks `template` and lowers it, inferring the root's type from its
/// tag. Refuses (with the checker's diagnostics) unless the check is
/// clean — compilation is only sound for fully checked templates.
pub fn plan(
    compiled: &CompiledSchema,
    template: &Template,
    env: &TypeEnv,
) -> Result<CompiledTemplate, Vec<PxmlError>> {
    let errors = check_template(compiled, template, env);
    if !errors.is_empty() {
        return Err(errors);
    }
    let type_ref = resolve_element_type(compiled.schema(), template.root_tag())
        .expect("check passed, so the root element resolves");
    lower(compiled, template, &type_ref)
}

/// Checks `template` against an explicit root type and lowers it.
pub fn plan_as(
    compiled: &CompiledSchema,
    template: &Template,
    env: &TypeEnv,
    root_type: &TypeRef,
) -> Result<CompiledTemplate, Vec<PxmlError>> {
    let errors = check_template_as(compiled, template, env, root_type);
    if !errors.is_empty() {
        return Err(errors);
    }
    lower(compiled, template, root_type)
}

fn lower(
    compiled: &CompiledSchema,
    template: &Template,
    root_type: &TypeRef,
) -> Result<CompiledTemplate, Vec<PxmlError>> {
    let _span = obs::span!("pxml.plan");
    let mut lowerer = Lowerer {
        compiled,
        template,
        ops: Vec::new(),
        holes: 0,
    };
    lowerer.lower_element(template.root, root_type);
    let static_len = lowerer
        .ops
        .iter()
        .map(|op| match op {
            Op::Static(b) => b.len() as u64,
            _ => 0,
        })
        .sum();
    if obs::enabled() {
        obs::metrics()
            .counter(
                "pxml_templates_planned_total",
                "Checked templates lowered into compiled plans.",
            )
            .inc();
    }
    Ok(CompiledTemplate {
        compiled: compiled.clone(),
        root_tag: template.root_tag().to_string(),
        type_ref: root_type.clone(),
        ops: lowerer.ops,
        static_len,
        hole_count: lowerer.holes,
    })
}

/// One content item of a complex element, after hole-splitting and
/// whitespace filtering.
enum Item {
    /// A static child element.
    Elem(NodeId, String),
    /// Non-whitespace literal text (mixed content only, post-check).
    Lit(String),
    /// A `$name$` content hole.
    Hole(String),
}

struct Lowerer<'a> {
    compiled: &'a CompiledSchema,
    template: &'a Template,
    ops: Vec<Op>,
    holes: usize,
}

impl Lowerer<'_> {
    /// Appends static bytes, merging with a trailing static segment.
    fn emit(&mut self, bytes: &[u8]) {
        if let Some(Op::Static(last)) = self.ops.last_mut() {
            last.extend_from_slice(bytes);
        } else {
            self.ops.push(Op::Static(bytes.to_vec()));
        }
    }

    /// Same classification as the checker: `(complex type name for the
    /// content DFA, mixed, simple content type)`.
    fn classify(&self, type_ref: &TypeRef) -> (Option<String>, bool, Option<TypeRef>) {
        match type_ref {
            TypeRef::Builtin(_) => (None, false, Some(type_ref.clone())),
            TypeRef::Named(n) | TypeRef::Anonymous(n) => match self.compiled.schema().type_def(n) {
                Some(TypeDef::Simple(_)) => (None, false, Some(type_ref.clone())),
                Some(TypeDef::Complex(ct)) => match &ct.content {
                    ContentModel::Simple(inner) => (None, false, Some(inner.clone())),
                    ContentModel::Mixed(_) => (Some(n.clone()), true, None),
                    _ => (Some(n.clone()), false, None),
                },
                None => (None, false, None),
            },
        }
    }

    fn lower_element(&mut self, node: NodeId, type_ref: &TypeRef) {
        let doc = &self.template.doc;
        let tag = doc.tag_name(node).unwrap_or_default().to_string();
        self.emit(b"<");
        self.emit(tag.as_bytes());
        self.lower_attributes(node, &tag, type_ref);
        let (complex_name, mixed, simple) = self.classify(type_ref);
        match complex_name {
            Some(type_name) => self.lower_complex(node, &tag, &type_name, mixed),
            None => self.lower_simple(node, &tag, simple.as_ref()),
        }
    }

    fn lower_attributes(&mut self, node: NodeId, tag: &str, type_ref: &TypeRef) {
        let doc = &self.template.doc;
        let declared = match type_ref {
            TypeRef::Named(n) | TypeRef::Anonymous(n) => self.compiled.effective_attributes(n).ok(),
            TypeRef::Builtin(_) => None,
        };
        for attr in doc.attributes(node).unwrap_or(&[]) {
            if attr.name == "xmlns" || attr.name.starts_with("xmlns:") {
                continue;
            }
            let decl = declared
                .as_deref()
                .unwrap_or(&[])
                .iter()
                .find(|d| d.name == attr.name)
                .expect("check passed, so every template attribute is declared");
            let parts: Vec<TextPart> = split_holes_ref(&attr.value)
                .expect("check passed, so hole syntax is valid")
                .into_iter()
                .map(|p| match p {
                    PartRef::Text(t) => TextPart::Lit(t.into_owned()),
                    PartRef::Hole(n) => TextPart::Hole(n.to_string()),
                })
                .collect();
            let has_hole = parts.iter().any(|p| matches!(p, TextPart::Hole(_)));
            self.emit(b" ");
            self.emit(attr.name.as_bytes());
            self.emit(b"=\"");
            if has_hole {
                self.holes += parts
                    .iter()
                    .filter(|p| matches!(p, TextPart::Hole(_)))
                    .count();
                self.ops.push(Op::Attr {
                    element: tag.to_string(),
                    attribute: attr.name.clone(),
                    parts,
                    type_ref: decl.type_ref.clone(),
                    fixed: decl.fixed.clone(),
                });
            } else {
                // The runtime value is the concatenation of the parts
                // ($$ unescaped) — validate *that*, not the raw source:
                // if it fails, keep the value as a runtime op so render
                // rejects exactly like the interpreter's set_attribute.
                let value: String = parts
                    .iter()
                    .map(|p| match p {
                        TextPart::Lit(t) => t.as_str(),
                        TextPart::Hole(_) => unreachable!(),
                    })
                    .collect();
                let valid = self
                    .compiled
                    .schema()
                    .validate_simple_value(&decl.type_ref, &value)
                    .is_ok()
                    && decl.fixed.as_ref().is_none_or(|f| f == &value);
                if valid {
                    self.emit(escape_attribute(&value).as_bytes());
                } else {
                    self.ops.push(Op::Attr {
                        element: tag.to_string(),
                        attribute: attr.name.clone(),
                        parts: vec![TextPart::Lit(value)],
                        type_ref: decl.type_ref.clone(),
                        fixed: decl.fixed.clone(),
                    });
                }
            }
            self.emit(b"\"");
        }
    }

    /// Splits the content of `node` into plan items, dropping template
    /// formatting whitespace, comments and PIs exactly like the
    /// interpreter does.
    fn content_items(&self, node: NodeId) -> Vec<Item> {
        let doc = &self.template.doc;
        let mut items = Vec::new();
        for &child in doc.child_slice(node).unwrap_or(&[]) {
            match doc.kind(child) {
                Ok(NodeKind::Element { name, .. }) => {
                    items.push(Item::Elem(child, name.clone()));
                }
                Ok(NodeKind::Text(t)) => {
                    let parts = split_holes_ref(t).expect("check passed, so hole syntax is valid");
                    for part in parts {
                        match part {
                            PartRef::Text(text) => {
                                if !text.trim().is_empty() {
                                    items.push(Item::Lit(text.into_owned()));
                                }
                            }
                            PartRef::Hole(name) => items.push(Item::Hole(name.to_string())),
                        }
                    }
                }
                _ => {}
            }
        }
        items
    }

    fn lower_complex(&mut self, node: NodeId, tag: &str, type_name: &str, mixed: bool) {
        let items = self.content_items(node);
        let has_hole = items.iter().any(|i| matches!(i, Item::Hole(_)));
        let static_node = items
            .iter()
            .any(|i| matches!(i, Item::Elem(..) | Item::Lit(_)));

        if !has_hole {
            // fully static content: the checker proved the child
            // sequence complete, so no matcher survives to runtime
            if items.is_empty() {
                self.emit(b"/>");
                return;
            }
            self.emit(b">");
            for item in items {
                match item {
                    Item::Elem(child, name) => {
                        let child_type = self
                            .compiled
                            .child_element_type(type_name, &name)
                            .expect("check passed, so every static child is declared");
                        self.lower_element(child, &child_type);
                    }
                    Item::Lit(text) => self.emit(escape_text(&text).as_bytes()),
                    Item::Hole(_) => unreachable!(),
                }
            }
            self.emit(b"</");
            self.emit(tag.as_bytes());
            self.emit(b">");
            return;
        }

        // holed content: verify the static prefix now, snapshot the DFA
        // state at the first hole, and leave the suffix to render time
        let dfa = self
            .compiled
            .content_dfa(type_name)
            .expect("check passed, so the content model compiles");
        let mut matcher = dfa.start();
        let mut entry = matcher.state();
        let mut seen_hole = false;
        // plan pass: step static children up to the first hole
        for item in &items {
            match item {
                Item::Hole(_) => {
                    if !seen_hole {
                        entry = matcher.state();
                        seen_hole = true;
                    }
                }
                Item::Elem(_, name) => {
                    if !seen_hole {
                        matcher
                            .step(name)
                            .expect("check passed, so the static prefix steps");
                    }
                }
                Item::Lit(_) => {}
            }
        }
        self.ops.push(Op::PushMatcher { dfa, entry });
        if static_node {
            self.emit(b">");
        } else {
            self.ops.push(Op::Open);
        }
        let mut before_entry = true;
        for item in items {
            match item {
                Item::Elem(child, name) => {
                    if !before_entry {
                        self.ops.push(Op::StepStatic {
                            sym: symbols::intern(&name),
                            name: name.clone(),
                            element: tag.to_string(),
                        });
                    }
                    let child_type = self
                        .compiled
                        .child_element_type(type_name, &name)
                        .expect("check passed, so every static child is declared");
                    self.lower_element(child, &child_type);
                }
                Item::Lit(text) => self.emit(escape_text(&text).as_bytes()),
                Item::Hole(name) => {
                    before_entry = false;
                    self.holes += 1;
                    self.ops.push(Op::Hole {
                        name,
                        element: tag.to_string(),
                        type_name: type_name.to_string(),
                        mixed,
                    });
                }
            }
        }
        self.ops.push(Op::CloseContent {
            element: tag.to_string(),
        });
        if static_node {
            self.emit(b"</");
            self.emit(tag.as_bytes());
            self.emit(b">");
        } else {
            self.ops.push(Op::CloseShape {
                tag: tag.to_string(),
            });
        }
    }

    fn lower_simple(&mut self, node: NodeId, tag: &str, simple: Option<&TypeRef>) {
        let items = self.content_items(node);
        let mut parts = Vec::new();
        for item in items {
            match item {
                Item::Lit(text) => parts.push(TextPart::Lit(text)),
                Item::Hole(name) => parts.push(TextPart::Hole(name)),
                Item::Elem(..) => unreachable!("check passed, so simple content has no elements"),
            }
        }
        let has_hole = parts.iter().any(|p| matches!(p, TextPart::Hole(_)));
        let static_node = parts.iter().any(|p| matches!(p, TextPart::Lit(_)));

        if !has_hole {
            // The runtime value skips formatting whitespace; validate
            // that value (not the raw source) so a plan-time pass means
            // render can never reject, and a plan-time failure becomes
            // the interpreter's exact seal-time error at render.
            let value: String = parts
                .iter()
                .map(|p| match p {
                    TextPart::Lit(t) => t.as_str(),
                    TextPart::Hole(_) => unreachable!(),
                })
                .collect();
            let valid = match simple {
                Some(s) => self
                    .compiled
                    .schema()
                    .validate_simple_value(s, &value)
                    .is_ok(),
                None => true,
            };
            if valid {
                if value.is_empty() {
                    self.emit(b"/>");
                } else {
                    self.emit(b">");
                    self.emit(escape_text(&value).as_bytes());
                    self.emit(b"</");
                    self.emit(tag.as_bytes());
                    self.emit(b">");
                }
            } else {
                self.emit(b">");
                self.ops.push(Op::SimpleBody {
                    element: tag.to_string(),
                    parts,
                    simple: simple.cloned(),
                });
                self.emit(b"</");
                self.emit(tag.as_bytes());
                self.emit(b">");
            }
            return;
        }

        self.holes += parts
            .iter()
            .filter(|p| matches!(p, TextPart::Hole(_)))
            .count();
        let body = Op::SimpleBody {
            element: tag.to_string(),
            parts,
            simple: simple.cloned(),
        };
        if static_node {
            self.emit(b">");
            self.ops.push(body);
            self.emit(b"</");
            self.emit(tag.as_bytes());
            self.emit(b">");
        } else {
            self.ops.push(Op::Open);
            self.ops.push(body);
            self.ops.push(Op::CloseShape {
                tag: tag.to_string(),
            });
        }
    }
}

impl CompiledTemplate {
    /// The template root's tag.
    pub fn root_tag(&self) -> &str {
        &self.root_tag
    }

    /// The template root's schema type.
    pub fn type_ref(&self) -> &TypeRef {
        &self.type_ref
    }

    /// Total bytes of precomputed static output.
    pub fn static_len(&self) -> u64 {
        self.static_len
    }

    /// Number of hole slots in the plan.
    pub fn hole_count(&self) -> usize {
        self.hole_count
    }

    /// Renders one page into `out`. On error, `out` is restored to its
    /// original length.
    ///
    /// Only the runtime residue can reject: facets on spliced text and
    /// attribute values, fragment declaration/ordering/type checks, and
    /// content-model completeness where fragments were spliced.
    pub fn render(&self, bindings: &Bindings, out: &mut Vec<u8>) -> Result<(), InstantiateError> {
        let span = obs::span!("pxml.render");
        let start = out.len();
        let result = self.render_inner(bindings, out);
        if result.is_err() {
            out.truncate(start);
        }
        span.finish();
        if obs::enabled() {
            let metrics = obs::metrics();
            metrics
                .counter("pxml_render_total", "Compiled template renders.")
                .inc();
            match &result {
                Ok(()) => metrics
                    .counter(
                        "pxml_static_bytes_total",
                        "Bytes emitted from precomputed static template segments.",
                    )
                    .inc_by(self.static_len),
                Err(_) => metrics
                    .counter(
                        "pxml_render_rejects_total",
                        "Compiled renders rejected by the runtime residue checks.",
                    )
                    .inc(),
            }
        }
        result
    }

    /// Renders one page into a fresh `String`.
    pub fn render_to_string(&self, bindings: &Bindings) -> Result<String, InstantiateError> {
        let mut out = Vec::with_capacity(self.static_len as usize + 64);
        self.render(bindings, &mut out)?;
        Ok(String::from_utf8(out).expect("render emits UTF-8"))
    }

    /// Renders into a splice-ready [`RenderedFragment`], so one compiled
    /// template's output can fill an element hole of another (the
    /// orders pipeline renders `<item>`s this way).
    pub fn render_fragment(
        &self,
        bindings: &Bindings,
    ) -> Result<RenderedFragment, InstantiateError> {
        Ok(RenderedFragment {
            tag: self.root_tag.clone(),
            type_ref: self.type_ref.clone(),
            xml: self.render_to_string(bindings)?,
        })
    }

    fn render_inner(&self, bindings: &Bindings, out: &mut Vec<u8>) -> Result<(), InstantiateError> {
        let mut matchers: Vec<DfaMatcher> = Vec::new();
        let mut marks: Vec<(usize, u64)> = Vec::new();
        let mut nodes: u64 = 0;
        for op in &self.ops {
            match op {
                Op::Static(bytes) => out.extend_from_slice(bytes),
                Op::Attr {
                    element,
                    attribute,
                    parts,
                    type_ref,
                    fixed,
                } => {
                    // single-part values (the common case) borrow the
                    // binding; only multi-part values concatenate
                    let raw: Cow<'_, str> = match parts.as_slice() {
                        [TextPart::Lit(t)] => Cow::Borrowed(t.as_str()),
                        [TextPart::Hole(name)] => match bindings.get(name) {
                            Some(Value::Text(t)) => Cow::Borrowed(t.as_str()),
                            Some(_) => {
                                return Err(InstantiateError::Binding(format!(
                                    "element variable ${name}$ used in attribute {attribute}"
                                )))
                            }
                            None => return Err(unbound(name)),
                        },
                        parts => {
                            let mut raw = String::new();
                            for part in parts {
                                match part {
                                    TextPart::Lit(t) => raw.push_str(t),
                                    TextPart::Hole(name) => match bindings.get(name) {
                                        Some(Value::Text(t)) => raw.push_str(t),
                                        Some(_) => {
                                            return Err(InstantiateError::Binding(format!(
                                                "element variable ${name}$ used in attribute {attribute}"
                                            )))
                                        }
                                        None => return Err(unbound(name)),
                                    },
                                }
                            }
                            Cow::Owned(raw)
                        }
                    };
                    self.compiled
                        .schema()
                        .validate_simple_value(type_ref, &raw)
                        .map_err(|error| VdomError::Simple {
                            element: element.clone(),
                            attribute: Some(attribute.clone()),
                            error,
                        })?;
                    if let Some(fixed) = fixed {
                        if raw.as_ref() != fixed {
                            return Err(VdomError::FixedMismatch {
                                element: element.clone(),
                                attribute: attribute.clone(),
                                fixed: fixed.clone(),
                            }
                            .into());
                        }
                    }
                    out.extend_from_slice(escape_attribute(&raw).as_bytes());
                }
                Op::PushMatcher { dfa, entry } => matchers.push(dfa.resume(*entry)),
                Op::Open => {
                    marks.push((out.len(), nodes));
                    out.push(b'>');
                }
                Op::CloseShape { tag } => {
                    let (mark, n) = marks.pop().expect("balanced shape ops");
                    if nodes == n {
                        // zero nodes spliced: nothing was emitted since
                        // the mark, so collapse to the empty-tag form
                        out.truncate(mark);
                        out.extend_from_slice(b"/>");
                    } else {
                        out.extend_from_slice(b"</");
                        out.extend_from_slice(tag.as_bytes());
                        out.push(b'>');
                    }
                }
                Op::StepStatic { sym, name, element } => {
                    let m = matchers.last_mut().expect("static step under a matcher");
                    if !m.try_step_sym(*sym) {
                        let step = m
                            .step(name)
                            .expect_err("sym and name transition tables agree");
                        return Err(VdomError::ContentModel {
                            parent: element.clone(),
                            step,
                        }
                        .into());
                    }
                    nodes += 1;
                }
                Op::Hole {
                    name,
                    element,
                    type_name,
                    mixed,
                } => {
                    let value = bindings.get(name).ok_or_else(|| unbound(name))?;
                    self.splice(
                        value,
                        name,
                        element,
                        type_name,
                        *mixed,
                        &mut matchers,
                        &mut nodes,
                        out,
                    )?;
                }
                Op::SimpleBody {
                    element,
                    parts,
                    simple,
                } => {
                    // single-part bodies (the common case) borrow the
                    // binding; only multi-part bodies concatenate
                    let raw: Cow<'_, str> = match parts.as_slice() {
                        [TextPart::Lit(t)] => Cow::Borrowed(t.as_str()),
                        [TextPart::Hole(name)] => {
                            let value = bindings.get(name).ok_or_else(|| unbound(name))?;
                            match value {
                                Value::Text(t) => Cow::Borrowed(t.as_str()),
                                Value::Fragment(f) => {
                                    return Err(no_elements_here(element, &f.tag))
                                }
                                Value::Rendered(r) => {
                                    return Err(no_elements_here(element, &r.tag))
                                }
                                Value::FragmentList(fs) => {
                                    if let Some(f) = fs.first() {
                                        return Err(no_elements_here(element, &f.tag));
                                    }
                                    Cow::Borrowed("")
                                }
                                Value::RenderedList(rs) => {
                                    if let Some(r) = rs.first() {
                                        return Err(no_elements_here(element, &r.tag));
                                    }
                                    Cow::Borrowed("")
                                }
                            }
                        }
                        parts => {
                            let mut raw = String::new();
                            for part in parts {
                                match part {
                                    TextPart::Lit(t) => raw.push_str(t),
                                    TextPart::Hole(name) => {
                                        let value =
                                            bindings.get(name).ok_or_else(|| unbound(name))?;
                                        match value {
                                            Value::Text(t) => raw.push_str(t),
                                            Value::Fragment(f) => {
                                                return Err(no_elements_here(element, &f.tag))
                                            }
                                            Value::Rendered(r) => {
                                                return Err(no_elements_here(element, &r.tag))
                                            }
                                            Value::FragmentList(fs) => {
                                                if let Some(f) = fs.first() {
                                                    return Err(no_elements_here(element, &f.tag));
                                                }
                                            }
                                            Value::RenderedList(rs) => {
                                                if let Some(r) = rs.first() {
                                                    return Err(no_elements_here(element, &r.tag));
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                            Cow::Owned(raw)
                        }
                    };
                    if let Some(simple) = simple {
                        self.compiled
                            .schema()
                            .validate_simple_value(simple, &raw)
                            .map_err(|error| VdomError::Simple {
                                element: element.clone(),
                                attribute: None,
                                error,
                            })?;
                    }
                    // empty text makes no node in the typed layer, so it
                    // must not force a full close tag here either
                    if !raw.is_empty() {
                        nodes += 1;
                        out.extend_from_slice(escape_text(&raw).as_bytes());
                    }
                }
                Op::CloseContent { element } => {
                    let m = matchers.pop().expect("balanced matcher ops");
                    if !m.is_accepting() {
                        return Err(VdomError::Incomplete {
                            element: element.clone(),
                            expected: m.expected(),
                        }
                        .into());
                    }
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn splice(
        &self,
        value: &Value,
        name: &str,
        element: &str,
        type_name: &str,
        mixed: bool,
        matchers: &mut [DfaMatcher],
        nodes: &mut u64,
        out: &mut Vec<u8>,
    ) -> Result<(), InstantiateError> {
        match value {
            Value::Text(t) => {
                if !mixed {
                    return Err(VdomError::TextNotAllowed {
                        element: element.to_string(),
                    }
                    .into());
                }
                // empty text makes no node in the typed layer
                if !t.is_empty() {
                    out.extend_from_slice(escape_text(t).as_bytes());
                    *nodes += 1;
                }
            }
            Value::Fragment(f) => {
                self.splice_fragment(f, name, element, type_name, matchers, nodes, out)?
            }
            Value::FragmentList(fs) => {
                for f in fs {
                    self.splice_fragment(f, name, element, type_name, matchers, nodes, out)?;
                }
            }
            Value::Rendered(r) => {
                self.check_splice(&r.tag, &r.type_ref, name, element, type_name, matchers)?;
                out.extend_from_slice(r.xml.as_bytes());
                *nodes += 1;
            }
            Value::RenderedList(rs) => {
                for r in rs {
                    self.check_splice(&r.tag, &r.type_ref, name, element, type_name, matchers)?;
                    out.extend_from_slice(r.xml.as_bytes());
                    *nodes += 1;
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn splice_fragment(
        &self,
        f: &Fragment,
        name: &str,
        element: &str,
        type_name: &str,
        matchers: &mut [DfaMatcher],
        nodes: &mut u64,
        out: &mut Vec<u8>,
    ) -> Result<(), InstantiateError> {
        self.check_splice(&f.tag, &f.type_ref, name, element, type_name, matchers)?;
        write_filtered(&f.doc, f.root, out).map_err(|e| VdomError::Dom(e.to_string()))?;
        *nodes += 1;
        Ok(())
    }

    /// The fragment residue: declared child, content-model step,
    /// declared type. Mirrors the typed `append_element` check order
    /// (lookup, then step), with the type-equality residue last.
    fn check_splice(
        &self,
        tag: &str,
        frag_type: &TypeRef,
        name: &str,
        element: &str,
        type_name: &str,
        matchers: &mut [DfaMatcher],
    ) -> Result<(), InstantiateError> {
        let child_type = self
            .compiled
            .child_element_type(type_name, tag)
            .ok_or_else(|| VdomError::UnknownChild {
                parent: element.to_string(),
                child: tag.to_string(),
            })?;
        let m = matchers.last_mut().expect("hole under a matcher");
        m.step(tag).map_err(|step| VdomError::ContentModel {
            parent: element.to_string(),
            step,
        })?;
        if frag_type != &child_type {
            return Err(InstantiateError::Binding(format!(
                "fragment for ${name}$ has type {frag_type:?} \
                 but <{tag}> in <{element}> is declared as {child_type:?}"
            )));
        }
        Ok(())
    }
}

/// The error the typed layer raises when an element is spliced into
/// simple-typed content: the child lookup fails (no element particles
/// exist), so `append_element` reports it as an unknown child.
fn no_elements_here(element: &str, tag: &str) -> InstantiateError {
    VdomError::UnknownChild {
        parent: element.to_string(),
        child: tag.to_string(),
    }
    .into()
}

/// Serializes a subtree with the same filtering the typed import
/// applies — xmlns attributes skipped, whitespace-only text dropped,
/// comments and PIs dropped — so splicing these bytes is byte-identical
/// to replaying the subtree through `import_element` and serializing.
pub(crate) fn write_filtered(
    doc: &Document,
    node: NodeId,
    out: &mut Vec<u8>,
) -> Result<(), dom::DomError> {
    let tag = doc.tag_name(node)?;
    out.push(b'<');
    out.extend_from_slice(tag.as_bytes());
    for attr in doc.attributes(node)? {
        if attr.name == "xmlns" || attr.name.starts_with("xmlns:") {
            continue;
        }
        out.push(b' ');
        out.extend_from_slice(attr.name.as_bytes());
        out.extend_from_slice(b"=\"");
        out.extend_from_slice(escape_attribute(&attr.value).as_bytes());
        out.push(b'"');
    }
    let mark = out.len();
    out.push(b'>');
    let mut wrote_child = false;
    for &child in doc.child_slice(node)? {
        match doc.kind(child)? {
            NodeKind::Element { .. } => {
                write_filtered(doc, child, out)?;
                wrote_child = true;
            }
            NodeKind::Text(t) => {
                // sealed fragments carry no formatting whitespace (the
                // typed layer refuses text in element-only content), so
                // every non-empty text node is significant
                if t.is_empty() {
                    continue;
                }
                out.extend_from_slice(escape_text(t).as_bytes());
                wrote_child = true;
            }
            _ => {}
        }
    }
    if wrote_child {
        out.extend_from_slice(b"</");
        out.extend_from_slice(tag.as_bytes());
        out.push(b'>');
    } else {
        out.truncate(mark);
        out.extend_from_slice(b"/>");
    }
    Ok(())
}
