//! The `$variable$` hole syntax of P-XML constructors (paper Sect. 4:
//! "The variable is marked by the notation `$`").
//!
//! A hole is `$name$` where `name` is a host-language reference —
//! identifiers plus the `.`/`[…]` selectors seen in the paper's
//! `$subDirs[i]$`. A literal dollar sign is written `$$`.

use xmlchars::Position;

/// One segment of text-with-holes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Part {
    /// Literal text.
    Text(String),
    /// A `$name$` hole.
    Hole(String),
}

/// An error in hole syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoleSyntaxError {
    /// Byte offset within the segment.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for HoleSyntaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at offset {}", self.message, self.at)
    }
}

impl std::error::Error for HoleSyntaxError {}

fn is_ref_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '.' | '[' | ']')
}

/// Splits a text segment into literal and hole parts.
pub fn split_holes(text: &str) -> Result<Vec<Part>, HoleSyntaxError> {
    let mut parts = Vec::new();
    let mut literal = String::new();
    let mut chars = text.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        if c != '$' {
            literal.push(c);
            continue;
        }
        // `$$` escapes a literal dollar
        if let Some(&(_, '$')) = chars.peek() {
            chars.next();
            literal.push('$');
            continue;
        }
        // read the reference up to the closing '$'
        let mut name = String::new();
        let mut closed = false;
        for (_, rc) in chars.by_ref() {
            if rc == '$' {
                closed = true;
                break;
            }
            if !is_ref_char(rc) {
                return Err(HoleSyntaxError {
                    at: i,
                    message: format!("illegal character {rc:?} in $…$ reference"),
                });
            }
            name.push(rc);
        }
        if !closed {
            return Err(HoleSyntaxError {
                at: i,
                message: "unterminated $…$ reference".to_string(),
            });
        }
        if name.is_empty() {
            return Err(HoleSyntaxError {
                at: i,
                message: "empty $…$ reference".to_string(),
            });
        }
        if !literal.is_empty() {
            parts.push(Part::Text(std::mem::take(&mut literal)));
        }
        parts.push(Part::Hole(name));
    }
    if !literal.is_empty() {
        parts.push(Part::Text(literal));
    }
    Ok(parts)
}

/// All hole names appearing in a segment, in order.
pub fn hole_names(text: &str) -> Result<Vec<String>, HoleSyntaxError> {
    Ok(split_holes(text)?
        .into_iter()
        .filter_map(|p| match p {
            Part::Hole(n) => Some(n),
            Part::Text(_) => None,
        })
        .collect())
}

/// Attaches a source position to a hole syntax error (for diagnostics
/// carrying template positions).
pub fn at_position(err: HoleSyntaxError, base: Position) -> (Position, String) {
    (base, err.message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_is_one_part() {
        assert_eq!(
            split_holes("hello").unwrap(),
            vec![Part::Text("hello".into())]
        );
        assert_eq!(split_holes("").unwrap(), Vec::<Part>::new());
    }

    #[test]
    fn single_hole() {
        assert_eq!(split_holes("$n$").unwrap(), vec![Part::Hole("n".into())]);
    }

    #[test]
    fn mixed_text_and_holes() {
        assert_eq!(
            split_holes("dir: $currentDir$ ($count$)").unwrap(),
            vec![
                Part::Text("dir: ".into()),
                Part::Hole("currentDir".into()),
                Part::Text(" (".into()),
                Part::Hole("count".into()),
                Part::Text(")".into()),
            ]
        );
    }

    #[test]
    fn indexed_reference_like_the_paper() {
        assert_eq!(
            split_holes("$subDirs[i]$").unwrap(),
            vec![Part::Hole("subDirs[i]".into())]
        );
        assert_eq!(
            split_holes("$mdmo.getName$").unwrap(),
            vec![Part::Hole("mdmo.getName".into())]
        );
    }

    #[test]
    fn escaped_dollar() {
        assert_eq!(
            split_holes("price: $$5").unwrap(),
            vec![Part::Text("price: $5".into())]
        );
        assert_eq!(
            split_holes("$$$n$").unwrap(),
            vec![Part::Text("$".into()), Part::Hole("n".into())]
        );
    }

    #[test]
    fn syntax_errors() {
        assert!(split_holes("$unterminated").is_err());
        assert!(split_holes("$ bad$").is_err());
        assert!(split_holes("$$$").is_err()); // escaped $ then unterminated
        assert!(split_holes("$$ok$$").is_ok());
        let err = split_holes("abc$").unwrap_err();
        assert_eq!(err.at, 3);
    }

    #[test]
    fn hole_names_helper() {
        assert_eq!(
            hole_names("a $x$ b $y$").unwrap(),
            vec!["x".to_string(), "y".to_string()]
        );
    }
}
