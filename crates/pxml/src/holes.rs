//! The `$variable$` hole syntax of P-XML constructors (paper Sect. 4:
//! "The variable is marked by the notation `$`").
//!
//! A hole is `$name$` where `name` is a host-language reference —
//! identifiers plus the `.`/`[…]` selectors seen in the paper's
//! `$subDirs[i]$`. A literal dollar sign is written `$$`.

use std::borrow::Cow;

use xmlchars::Position;

/// One segment of text-with-holes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Part {
    /// Literal text.
    Text(String),
    /// A `$name$` hole.
    Hole(String),
}

/// A borrowing view of one segment of text-with-holes: the zero-copy
/// twin of [`Part`] used by the instantiation and rendering hot paths.
/// Literal text only becomes owned when a `$$` escape forces a rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartRef<'a> {
    /// Literal text (borrowed unless a `$$` escape was rewritten).
    Text(Cow<'a, str>),
    /// A `$name$` hole; the name borrows the source segment.
    Hole(&'a str),
}

impl PartRef<'_> {
    /// Converts into an owned [`Part`].
    pub fn into_owned(self) -> Part {
        match self {
            PartRef::Text(t) => Part::Text(t.into_owned()),
            PartRef::Hole(n) => Part::Hole(n.to_string()),
        }
    }
}

/// An error in hole syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoleSyntaxError {
    /// Byte offset within the segment.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for HoleSyntaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at offset {}", self.message, self.at)
    }
}

impl std::error::Error for HoleSyntaxError {}

fn is_ref_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '.' | '[' | ']')
}

/// Splits a text segment into literal and hole parts without copying:
/// literals and hole names borrow `text` unless a `$$` escape forces a
/// rewrite of one literal run.
pub fn split_holes_ref(text: &str) -> Result<Vec<PartRef<'_>>, HoleSyntaxError> {
    let mut parts = Vec::new();
    // Current literal run: borrowed `text[lit_start..i]` until a `$$`
    // escape forces `lit_owned` to take over.
    let mut lit_start = 0usize;
    let mut lit_owned: Option<String> = None;
    let mut chars = text.char_indices().peekable();

    while let Some((i, c)) = chars.next() {
        if c != '$' {
            if let Some(owned) = lit_owned.as_mut() {
                owned.push(c);
            }
            continue;
        }
        // `$$` escapes a literal dollar
        if let Some(&(_, '$')) = chars.peek() {
            chars.next();
            let owned = lit_owned.get_or_insert_with(|| text[lit_start..i].to_string());
            owned.push('$');
            lit_start = i + 2;
            continue;
        }
        // flush the pending literal
        match lit_owned.take() {
            Some(owned) => {
                if !owned.is_empty() {
                    parts.push(PartRef::Text(Cow::Owned(owned)));
                }
            }
            None => {
                if lit_start < i {
                    parts.push(PartRef::Text(Cow::Borrowed(&text[lit_start..i])));
                }
            }
        }
        // read the reference up to the closing '$'
        let name_start = i + 1;
        let mut name_end = None;
        for (j, rc) in chars.by_ref() {
            if rc == '$' {
                name_end = Some(j);
                break;
            }
            if !is_ref_char(rc) {
                return Err(HoleSyntaxError {
                    at: i,
                    message: format!("illegal character {rc:?} in $…$ reference"),
                });
            }
        }
        let Some(name_end) = name_end else {
            return Err(HoleSyntaxError {
                at: i,
                message: "unterminated $…$ reference".to_string(),
            });
        };
        if name_start == name_end {
            return Err(HoleSyntaxError {
                at: i,
                message: "empty $…$ reference".to_string(),
            });
        }
        parts.push(PartRef::Hole(&text[name_start..name_end]));
        lit_start = name_end + 1;
    }
    match lit_owned {
        Some(owned) => {
            if !owned.is_empty() {
                parts.push(PartRef::Text(Cow::Owned(owned)));
            }
        }
        None => {
            if lit_start < text.len() {
                parts.push(PartRef::Text(Cow::Borrowed(&text[lit_start..])));
            }
        }
    }
    Ok(parts)
}

/// Splits a text segment into owned literal and hole parts.
pub fn split_holes(text: &str) -> Result<Vec<Part>, HoleSyntaxError> {
    Ok(split_holes_ref(text)?
        .into_iter()
        .map(PartRef::into_owned)
        .collect())
}

/// All hole names appearing in a segment, in order.
pub fn hole_names(text: &str) -> Result<Vec<String>, HoleSyntaxError> {
    Ok(split_holes(text)?
        .into_iter()
        .filter_map(|p| match p {
            Part::Hole(n) => Some(n),
            Part::Text(_) => None,
        })
        .collect())
}

/// Attaches a source position to a hole syntax error (for diagnostics
/// carrying template positions).
pub fn at_position(err: HoleSyntaxError, base: Position) -> (Position, String) {
    (base, err.message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_is_one_part() {
        assert_eq!(
            split_holes("hello").unwrap(),
            vec![Part::Text("hello".into())]
        );
        assert_eq!(split_holes("").unwrap(), Vec::<Part>::new());
    }

    #[test]
    fn single_hole() {
        assert_eq!(split_holes("$n$").unwrap(), vec![Part::Hole("n".into())]);
    }

    #[test]
    fn mixed_text_and_holes() {
        assert_eq!(
            split_holes("dir: $currentDir$ ($count$)").unwrap(),
            vec![
                Part::Text("dir: ".into()),
                Part::Hole("currentDir".into()),
                Part::Text(" (".into()),
                Part::Hole("count".into()),
                Part::Text(")".into()),
            ]
        );
    }

    #[test]
    fn indexed_reference_like_the_paper() {
        assert_eq!(
            split_holes("$subDirs[i]$").unwrap(),
            vec![Part::Hole("subDirs[i]".into())]
        );
        assert_eq!(
            split_holes("$mdmo.getName$").unwrap(),
            vec![Part::Hole("mdmo.getName".into())]
        );
    }

    #[test]
    fn escaped_dollar() {
        assert_eq!(
            split_holes("price: $$5").unwrap(),
            vec![Part::Text("price: $5".into())]
        );
        assert_eq!(
            split_holes("$$$n$").unwrap(),
            vec![Part::Text("$".into()), Part::Hole("n".into())]
        );
    }

    #[test]
    fn syntax_errors() {
        assert!(split_holes("$unterminated").is_err());
        assert!(split_holes("$ bad$").is_err());
        assert!(split_holes("$$$").is_err()); // escaped $ then unterminated
        assert!(split_holes("$$ok$$").is_ok());
        let err = split_holes("abc$").unwrap_err();
        assert_eq!(err.at, 3);
    }

    #[test]
    fn ref_parts_borrow_unless_escaped() {
        let parts = split_holes_ref("a $x$ b").unwrap();
        assert!(matches!(&parts[0], PartRef::Text(Cow::Borrowed("a "))));
        assert!(matches!(&parts[1], PartRef::Hole("x")));
        assert!(matches!(&parts[2], PartRef::Text(Cow::Borrowed(" b"))));

        let parts = split_holes_ref("$$5 and $n$").unwrap();
        assert!(matches!(&parts[0], PartRef::Text(Cow::Owned(_))));
        assert_eq!(parts[0], PartRef::Text(Cow::Borrowed("$5 and ")));
        assert!(matches!(&parts[1], PartRef::Hole("n")));
    }

    #[test]
    fn hole_names_helper() {
        assert_eq!(
            hole_names("a $x$ b $y$").unwrap(),
            vec!["x".to_string(), "y".to_string()]
        );
    }
}
