//! Diagnostics produced by the P-XML static checker — the errors the
//! paper's preprocessor reports *without running the program* (Fig. 9).

use std::fmt;

use xmlchars::Position;

/// One static P-XML diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PxmlError {
    /// What is wrong.
    pub kind: PxmlErrorKind,
    /// Position within the template source.
    pub position: Position,
}

impl PxmlError {
    pub(crate) fn at(kind: PxmlErrorKind, position: Position) -> Self {
        PxmlError { kind, position }
    }
}

/// The kinds of static P-XML errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PxmlErrorKind {
    /// The template text is not a well-formed XML fragment.
    Parse(String),
    /// Bad `$…$` syntax.
    HoleSyntax(String),
    /// The root element's type cannot be determined from the schema.
    UnknownRootElement(String),
    /// A `$var$` that is not in the type environment.
    UnboundVariable(String),
    /// An element-typed variable used inside an attribute value.
    ElementHoleInAttribute {
        /// The variable.
        variable: String,
        /// The attribute.
        attribute: String,
    },
    /// A child (element or element-typed hole) violates the content model.
    ContentModel {
        /// Parent element.
        parent: String,
        /// What was found.
        got: String,
        /// What the model expected.
        expected: Vec<String>,
    },
    /// A child element not declared in the parent's type at all.
    UnknownChild {
        /// Parent element.
        parent: String,
        /// The child.
        child: String,
    },
    /// Literal text (or a text hole) in element-only content.
    TextNotAllowed {
        /// The element.
        element: String,
    },
    /// Content ended before the model was satisfied.
    Incomplete {
        /// The element.
        element: String,
        /// Still expected.
        expected: Vec<String>,
    },
    /// An attribute not declared for the element's type.
    UndeclaredAttribute {
        /// The element.
        element: String,
        /// The attribute.
        attribute: String,
    },
    /// A literal attribute value failing its simple type or `fixed`.
    BadAttributeValue {
        /// The element.
        element: String,
        /// The attribute.
        attribute: String,
        /// Why.
        message: String,
    },
    /// A required attribute missing from the constructor.
    MissingAttribute {
        /// The element.
        element: String,
        /// The attribute.
        attribute: String,
    },
    /// Literal simple-typed content failing validation.
    BadSimpleValue {
        /// The element.
        element: String,
        /// Why.
        message: String,
    },
}

impl fmt::Display for PxmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.position)
    }
}

impl fmt::Display for PxmlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PxmlErrorKind::Parse(m) => write!(f, "template parse error: {m}"),
            PxmlErrorKind::HoleSyntax(m) => write!(f, "hole syntax error: {m}"),
            PxmlErrorKind::UnknownRootElement(n) => {
                write!(f, "cannot determine the schema type of root element <{n}>")
            }
            PxmlErrorKind::UnboundVariable(v) => write!(f, "unbound variable ${v}$"),
            PxmlErrorKind::ElementHoleInAttribute {
                variable,
                attribute,
            } => write!(
                f,
                "element variable ${variable}$ cannot appear in attribute {attribute}"
            ),
            PxmlErrorKind::ContentModel {
                parent,
                got,
                expected,
            } => write!(
                f,
                "<{got}> is not allowed here in <{parent}>; expected: {}",
                expected.join(", ")
            ),
            PxmlErrorKind::UnknownChild { parent, child } => {
                write!(f, "<{child}> is not declared inside the type of <{parent}>")
            }
            PxmlErrorKind::TextNotAllowed { element } => {
                write!(f, "character data is not allowed in <{element}>")
            }
            PxmlErrorKind::Incomplete { element, expected } => write!(
                f,
                "<{element}> is incomplete; still expecting: {}",
                expected.join(", ")
            ),
            PxmlErrorKind::UndeclaredAttribute { element, attribute } => {
                write!(f, "attribute {attribute} is not declared for <{element}>")
            }
            PxmlErrorKind::BadAttributeValue {
                element,
                attribute,
                message,
            } => write!(f, "attribute {attribute} of <{element}>: {message}"),
            PxmlErrorKind::MissingAttribute { element, attribute } => {
                write!(f, "<{element}> is missing required attribute {attribute}")
            }
            PxmlErrorKind::BadSimpleValue { element, message } => {
                write!(f, "content of <{element}>: {message}")
            }
        }
    }
}

impl std::error::Error for PxmlError {}
