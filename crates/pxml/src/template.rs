//! Templates (the paper's *XML constructors*) and the typed environment
//! they are checked in.

use std::collections::BTreeMap;

use dom::{Document, NodeId};
use schema::{Schema, TypeRef};

use crate::error::{PxmlError, PxmlErrorKind};

/// A parsed P-XML constructor: an XML fragment whose text and attribute
/// values may contain `$var$` holes.
#[derive(Debug, Clone)]
pub struct Template {
    /// The template source (kept for diagnostics and the emitter header).
    pub source: String,
    /// The parsed fragment.
    pub doc: Document,
    /// The fragment's root element.
    pub root: NodeId,
}

impl Template {
    /// Parses a constructor fragment.
    pub fn parse(source: &str) -> Result<Template, PxmlError> {
        let (doc, root) = xmlparse::parse_fragment(source)
            .map_err(|e| PxmlError::at(PxmlErrorKind::Parse(e.kind.to_string()), e.position))?;
        Ok(Template {
            source: source.to_string(),
            doc,
            root,
        })
    }

    /// The root element's tag name.
    pub fn root_tag(&self) -> &str {
        self.doc.tag_name(self.root).expect("fragment root")
    }
}

/// The declared kind of a template variable — the paper's V-DOM element
/// variables and plain string variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarType {
    /// A string variable: usable wherever character data is allowed and
    /// inside attribute values ("Variables of interface String can be
    /// used as short-hand for objects of the Dom interface Text").
    Text,
    /// A V-DOM element variable holding an element with this tag name.
    Element(String),
}

/// The static type environment of a constructor: variable name → type.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    vars: BTreeMap<String, VarType>,
}

impl TypeEnv {
    /// An empty environment.
    pub fn new() -> TypeEnv {
        TypeEnv::default()
    }

    /// Declares a text (string) variable.
    pub fn text(mut self, name: impl Into<String>) -> TypeEnv {
        self.vars.insert(name.into(), VarType::Text);
        self
    }

    /// Declares an element variable with the given tag.
    pub fn element(mut self, name: impl Into<String>, tag: impl Into<String>) -> TypeEnv {
        self.vars.insert(name.into(), VarType::Element(tag.into()));
        self
    }

    /// Looks up a variable.
    pub fn get(&self, name: &str) -> Option<&VarType> {
        self.vars.get(name)
    }

    /// Iterates over the declared variables.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &VarType)> {
        self.vars.iter()
    }
}

/// Resolves the schema type of an element tag: a global declaration if
/// one exists, otherwise the first local declaration with that name found
/// in any complex type (deterministic by type-name order).
///
/// This mirrors the paper's inference: the V-DOM interface of the
/// variable (`shipToElement`) determines where the constructor's result
/// may be used, hence which type it is checked against.
pub fn resolve_element_type(schema: &Schema, tag: &str) -> Option<TypeRef> {
    if let Some(decl) = schema.element(tag) {
        return Some(decl.type_ref.clone());
    }
    for type_name in schema.types.keys() {
        if let Some(t) = schema.child_element_type(type_name, tag) {
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::corpus::PURCHASE_ORDER_XSD;
    use schema::parse_schema;

    #[test]
    fn parse_and_root_tag() {
        let t = Template::parse("<shipTo country=\"US\">$n$</shipTo>").unwrap();
        assert_eq!(t.root_tag(), "shipTo");
        assert!(Template::parse("<a><b></a>").is_err());
    }

    #[test]
    fn env_builder() {
        let env = TypeEnv::new().text("s").element("n", "name");
        assert_eq!(env.get("s"), Some(&VarType::Text));
        assert_eq!(env.get("n"), Some(&VarType::Element("name".into())));
        assert_eq!(env.get("zz"), None);
    }

    #[test]
    fn resolve_global_and_local_elements() {
        let schema = parse_schema(PURCHASE_ORDER_XSD).unwrap();
        // global
        assert_eq!(
            resolve_element_type(&schema, "purchaseOrder"),
            Some(TypeRef::Named("PurchaseOrderType".into()))
        );
        // local (shipTo is declared inside PurchaseOrderType)
        assert_eq!(
            resolve_element_type(&schema, "shipTo"),
            Some(TypeRef::Named("USAddress".into()))
        );
        assert_eq!(resolve_element_type(&schema, "nope"), None);
    }
}
