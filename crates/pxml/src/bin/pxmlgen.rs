//! `pxmlgen` — the P-XML preprocessor as a command-line tool (the
//! paper's Fig. 9 pipeline: schema + P-XML constructor → V-DOM code).
//!
//! Usage:
//! ```text
//! pxmlgen <schema.xsd> <template.pxml> [--env NAME=text|NAME=element:TAG]...
//!         [--fn NAME] [--out FILE] [--check-only]
//! ```

use std::process::ExitCode;

use pxml::{check_template, emit_rust, Template, TypeEnv};
use schema::CompiledSchema;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut env = TypeEnv::new();
    let mut fn_name = "build_template".to_string();
    let mut out_path = None;
    let mut check_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--env" => {
                i += 1;
                let spec = args.get(i).cloned().unwrap_or_default();
                let Some((name, kind)) = spec.split_once('=') else {
                    eprintln!("--env expects NAME=text or NAME=element:TAG, got {spec:?}");
                    return ExitCode::FAILURE;
                };
                if kind == "text" {
                    env = env.text(name);
                } else if let Some(tag) = kind.strip_prefix("element:") {
                    env = env.element(name, tag);
                } else {
                    eprintln!("unknown env kind {kind:?}");
                    return ExitCode::FAILURE;
                }
            }
            "--fn" => {
                i += 1;
                fn_name = args.get(i).cloned().unwrap_or(fn_name);
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned();
            }
            "--check-only" => check_only = true,
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    let [schema_path, template_path] = positional.as_slice() else {
        eprintln!("usage: pxmlgen <schema.xsd> <template.pxml> [--env …] [--fn NAME] [--out FILE]");
        return ExitCode::FAILURE;
    };
    let schema_src = match std::fs::read_to_string(schema_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {schema_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let template_src = match std::fs::read_to_string(template_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {template_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = match CompiledSchema::parse(&schema_src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("schema error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let template = match Template::parse(&template_src) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{template_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if check_only {
        let errors = check_template(&compiled, &template, &env);
        if errors.is_empty() {
            println!("{template_path}: OK");
            return ExitCode::SUCCESS;
        }
        for e in &errors {
            eprintln!("{template_path}: {e}");
        }
        return ExitCode::FAILURE;
    }
    match emit_rust(&compiled, &template, &env, &fn_name) {
        Ok(code) => match out_path {
            Some(p) => {
                if let Err(e) = std::fs::write(&p, code) {
                    eprintln!("cannot write {p}: {e}");
                    return ExitCode::FAILURE;
                }
                ExitCode::SUCCESS
            }
            None => {
                print!("{code}");
                ExitCode::SUCCESS
            }
        },
        Err(errors) => {
            for e in &errors {
                eprintln!("{template_path}: {e}");
            }
            ExitCode::FAILURE
        }
    }
}
