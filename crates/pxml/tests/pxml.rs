//! End-to-end tests of the P-XML pipeline: static checking (Fig. 9),
//! runtime instantiation, and the emitted V-DOM code (Fig. 11),
//! including the paper's Sect. 1 "wrong server page" scenario.

use pxml::{check_template, emit_rust, instantiate, Bindings, PxmlErrorKind, Template, TypeEnv};
use schema::corpus::{PURCHASE_ORDER_XSD, WML_XSD};
use schema::CompiledSchema;

mod emitted {
    include!("golden/emitted_ship_to.rs");
}

fn po() -> CompiledSchema {
    CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap()
}

fn wml() -> CompiledSchema {
    CompiledSchema::parse(WML_XSD).unwrap()
}

const SHIP_TO: &str = r#"<shipTo country="US">
  $n$
  <street>123 Maple Street</street>
  <city>Mill Valley</city>
  <state>CA</state>
  <zip>90952</zip>
</shipTo>"#;

#[test]
fn paper_constructor_checks_clean() {
    let t = Template::parse(SHIP_TO).unwrap();
    let env = TypeEnv::new().element("n", "name");
    assert!(check_template(&po(), &t, &env).is_empty());
}

#[test]
fn misplaced_element_caught_statically() {
    // the paper's "A Wrong Server Page": structure errors surface at
    // preprocess time, not in test runs
    let t = Template::parse(
        "<shipTo country=\"US\"><street>s</street><name>n</name>\
         <city>c</city><state>st</state><zip>1</zip></shipTo>",
    )
    .unwrap();
    let errors = check_template(&po(), &t, &TypeEnv::new());
    assert!(errors
        .iter()
        .any(|e| matches!(e.kind, PxmlErrorKind::ContentModel { .. })));
}

#[test]
fn incomplete_content_caught_statically() {
    let t = Template::parse("<shipTo country=\"US\"><name>n</name></shipTo>").unwrap();
    let errors = check_template(&po(), &t, &TypeEnv::new());
    assert!(errors.iter().any(
        |e| matches!(&e.kind, PxmlErrorKind::Incomplete { expected, .. }
            if expected.contains(&"street".to_string()))
    ));
}

#[test]
fn missing_required_attribute_caught_statically() {
    let t = Template::parse(
        "<item><productName>x</productName><quantity>1</quantity>\
         <USPrice>1.0</USPrice></item>",
    )
    .unwrap();
    let errors = check_template(&po(), &t, &TypeEnv::new());
    assert!(errors.iter().any(|e| matches!(
        &e.kind,
        PxmlErrorKind::MissingAttribute { attribute, .. } if attribute == "partNum"
    )));
}

#[test]
fn literal_values_checked_statically() {
    // bad SKU pattern in a literal attribute
    let t = Template::parse(
        "<item partNum=\"WRONG\"><productName>x</productName>\
         <quantity>1</quantity><USPrice>1.0</USPrice></item>",
    )
    .unwrap();
    let errors = check_template(&po(), &t, &TypeEnv::new());
    assert!(errors
        .iter()
        .any(|e| matches!(e.kind, PxmlErrorKind::BadAttributeValue { .. })));

    // bad literal simple content (quantity ≥ 100)
    let t = Template::parse(
        "<item partNum=\"123-AB\"><productName>x</productName>\
         <quantity>150</quantity><USPrice>1.0</USPrice></item>",
    )
    .unwrap();
    let errors = check_template(&po(), &t, &TypeEnv::new());
    assert!(errors
        .iter()
        .any(|e| matches!(e.kind, PxmlErrorKind::BadSimpleValue { .. })));

    // fixed attribute violated
    let t = Template::parse(
        "<shipTo country=\"DE\"><name>n</name><street>s</street>\
         <city>c</city><state>st</state><zip>1</zip></shipTo>",
    )
    .unwrap();
    let errors = check_template(&po(), &t, &TypeEnv::new());
    assert!(errors
        .iter()
        .any(|e| matches!(e.kind, PxmlErrorKind::BadAttributeValue { .. })));
}

#[test]
fn hole_values_are_deferred_to_runtime() {
    // a hole in partNum cannot be checked statically — and must not
    // produce a static error
    let t = Template::parse(
        "<item partNum=\"$pn$\"><productName>x</productName>\
         <quantity>1</quantity><USPrice>1.0</USPrice></item>",
    )
    .unwrap();
    let env = TypeEnv::new().text("pn");
    assert!(check_template(&po(), &t, &env).is_empty());
    // instantiation with a bad value fails at seal (facet check)
    let result = instantiate(&po(), &t, &Bindings::new().text("pn", "WRONG"));
    assert!(result.is_err());
    let ok = instantiate(&po(), &t, &Bindings::new().text("pn", "926-AA"));
    assert!(ok.is_ok());
}

#[test]
fn unbound_and_mistyped_variables_caught() {
    let t = Template::parse(SHIP_TO).unwrap();
    // unbound $n$
    let errors = check_template(&po(), &t, &TypeEnv::new());
    assert!(errors
        .iter()
        .any(|e| matches!(e.kind, PxmlErrorKind::UnboundVariable(_))));
    // $n$ bound to the wrong element type steps the DFA wrongly
    let env = TypeEnv::new().element("n", "zip");
    let errors = check_template(&po(), &t, &env);
    assert!(errors
        .iter()
        .any(|e| matches!(e.kind, PxmlErrorKind::ContentModel { .. })));
    // element variable in attribute position
    let t = Template::parse("<shipTo country=\"$n$\"><name>x</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>").unwrap();
    let env = TypeEnv::new().element("n", "name");
    let errors = check_template(&po(), &t, &env);
    assert!(errors
        .iter()
        .any(|e| matches!(e.kind, PxmlErrorKind::ElementHoleInAttribute { .. })));
}

#[test]
fn text_in_element_only_content_caught() {
    let t = Template::parse(
        "<purchaseOrder>stray $s$<shipTo country=\"US\"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo></purchaseOrder>",
    )
    .unwrap();
    let env = TypeEnv::new().text("s");
    let errors = check_template(&po(), &t, &env);
    assert!(
        errors
            .iter()
            .filter(|e| matches!(e.kind, PxmlErrorKind::TextNotAllowed { .. }))
            .count()
            >= 2 // the literal text and the $s$ hole
    );
}

#[test]
fn instantiation_produces_valid_fragments() {
    let c = po();
    let name = Template::parse("<name>Alice Smith</name>").unwrap();
    let name_frag = instantiate(&c, &name, &Bindings::new()).unwrap();
    let t = Template::parse(SHIP_TO).unwrap();
    let frag = instantiate(&c, &t, &Bindings::new().fragment("n", name_frag)).unwrap();
    assert_eq!(
        frag.to_xml().unwrap(),
        "<shipTo country=\"US\"><name>Alice Smith</name><street>123 Maple Street</street>\
         <city>Mill Valley</city><state>CA</state><zip>90952</zip></shipTo>"
    );
}

#[test]
fn wml_fig10_page_assembled_from_templates() {
    // the Sect. 5 example: a card with a select of directory options,
    // driven by runtime data, assembled from checked templates
    let c = wml();
    let option_t = Template::parse("<option value=\"$subDir$\">$label$</option>").unwrap();
    let env = TypeEnv::new().text("subDir").text("label");
    assert!(check_template(&c, &option_t, &env).is_empty());

    let sub_dirs = ["audio", "video", "images"];
    let current_dir = "/workspace/media";

    // build the select with one option per subdirectory plus ".."
    let mut td = vdom::TypedDocument::new(c.clone());
    let root = td.create_root("wml").unwrap();
    let card = td.append_element(root, "card").unwrap();
    td.set_attribute(card, "id", "dirs").unwrap();
    let p = td.append_element(card, "p").unwrap();
    td.append_text(p, current_dir).unwrap();
    let select = td.append_element(p, "select").unwrap();
    td.set_attribute(select, "name", "directories").unwrap();

    let parent = instantiate(
        &c,
        &option_t,
        &Bindings::new()
            .text("subDir", "/workspace")
            .text("label", ".."),
    )
    .unwrap();
    td.import_element(select, &parent.doc, parent.root).unwrap();
    for dir in sub_dirs {
        let frag = instantiate(
            &c,
            &option_t,
            &Bindings::new()
                .text("subDir", format!("{current_dir}/{dir}"))
                .text("label", dir),
        )
        .unwrap();
        td.import_element(select, &frag.doc, frag.root).unwrap();
    }
    let doc = td.seal().unwrap();
    assert!(validator::validate_document(&c, &doc).is_empty());
    let xml = dom::serialize(&doc, doc.root_element().unwrap()).unwrap();
    assert!(xml.contains("<option value=\"/workspace/media/audio\">audio</option>"));
}

#[test]
fn emitted_code_compiles_and_runs() {
    // the Fig. 11 path: the checked-in emitted function builds the same
    // fragment as runtime instantiation
    let c = po();
    let name = Template::parse("<name>Alice Smith</name>").unwrap();
    let name_frag = instantiate(&c, &name, &Bindings::new()).unwrap();
    let mut td = vdom::TypedDocument::new(c.clone());
    emitted::build_ship_to(&mut td, &name_frag).unwrap();
    let doc = td.seal().unwrap();
    let xml = dom::serialize(&doc, doc.root_element().unwrap()).unwrap();
    let t = Template::parse(SHIP_TO).unwrap();
    let name_frag2 = instantiate(&c, &name, &Bindings::new()).unwrap();
    let frag = instantiate(&c, &t, &Bindings::new().fragment("n", name_frag2)).unwrap();
    assert_eq!(xml, frag.to_xml().unwrap());
}

#[test]
fn emitted_code_matches_golden() {
    let t = Template::parse(
        &std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/testdata/ship_to.pxml"
        ))
        .unwrap(),
    )
    .unwrap();
    let env = TypeEnv::new().element("n", "name");
    let fresh = emit_rust(&po(), &t, &env, "build_ship_to").unwrap();
    let golden = include_str!("golden/emitted_ship_to.rs");
    assert_eq!(
        fresh, golden,
        "preprocessor output drifted; regenerate with pxmlgen"
    );
}

#[test]
fn bad_template_refuses_emission() {
    let t = Template::parse("<shipTo country=\"US\"><zip>1</zip></shipTo>").unwrap();
    assert!(emit_rust(&po(), &t, &TypeEnv::new(), "f").is_err());
}

#[test]
fn attribute_interpolation() {
    let c = wml();
    let t = Template::parse("<a href=\"http://$host$/media/$path$\">$label$</a>").unwrap();
    let env = TypeEnv::new().text("host").text("path").text("label");
    assert!(check_template(&c, &t, &env).is_empty());
    let frag = instantiate(
        &c,
        &t,
        &Bindings::new()
            .text("host", "example.com")
            .text("path", "a b") // space must fail anyURI
            .text("label", "x"),
    );
    assert!(frag.is_err());
    let frag = instantiate(
        &c,
        &t,
        &Bindings::new()
            .text("host", "example.com")
            .text("path", "a%20b")
            .text("label", "x"),
    )
    .unwrap();
    assert_eq!(
        frag.to_xml().unwrap(),
        "<a href=\"http://example.com/media/a%20b\">x</a>"
    );
}
