//! A regular-expression engine for XML Schema `pattern` facets.
//!
//! XML Schema Part 2 (Appendix F) defines its own regex dialect: patterns
//! are implicitly anchored at both ends, there are no backreferences or
//! lookarounds, and character classes include the multi-character escapes
//! `\d \D \w \W \s \S \i \c` plus class subtraction. This crate implements
//! that dialect from scratch:
//!
//! * [`ast`] + [`parser`] — the pattern grammar;
//! * [`charset`] — sets of Unicode scalar values as sorted range lists;
//! * [`nfa`] — Thompson construction and direct NFA simulation;
//! * [`dfa`] — subset construction over a partition of the alphabet,
//!   used by the `schema` crate when a pattern is matched many times.
//!
//! The engine is used by simple-type validation (e.g. the purchase-order
//! schema's `SKU` type, `\d{3}-[A-Z]{2}`, paper Fig. 3).
//!
//! # Example
//!
//! ```
//! use xsdregex::Regex;
//! let sku = Regex::parse(r"\d{3}-[A-Z]{2}").unwrap();
//! assert!(sku.is_match("926-AA"));
//! assert!(!sku.is_match("926-aa"));
//! assert!(!sku.is_match("x926-AA")); // implicitly anchored
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod charset;
pub mod dfa;
pub mod nfa;
pub mod parser;

pub use charset::CharSet;
pub use dfa::Dfa;
pub use nfa::Nfa;
pub use parser::{ParsePatternError, PatternErrorKind};

/// A compiled XSD pattern.
///
/// Compilation builds a Thompson NFA eagerly; a DFA can be derived with
/// [`Regex::dfa`] and cached by callers that match repeatedly.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    nfa: Nfa,
}

impl Regex {
    /// Parses and compiles `pattern`.
    pub fn parse(pattern: &str) -> Result<Self, ParsePatternError> {
        let ast = parser::parse(pattern)?;
        let nfa = Nfa::compile(&ast);
        Ok(Regex {
            pattern: pattern.to_string(),
            nfa,
        })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Whether `input` matches the whole pattern (XSD anchoring).
    pub fn is_match(&self, input: &str) -> bool {
        self.nfa.is_match(input)
    }

    /// The underlying NFA.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// Builds a DFA for this pattern.
    pub fn dfa(&self) -> Dfa {
        Dfa::from_nfa(&self.nfa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sku_pattern_from_the_paper() {
        let re = Regex::parse(r"\d{3}-[A-Z]{2}").unwrap();
        assert!(re.is_match("926-AA"));
        assert!(re.is_match("000-ZZ"));
        assert!(!re.is_match("92-AA"));
        assert!(!re.is_match("9266-AA"));
        assert!(!re.is_match("926-A"));
        assert!(!re.is_match(""));
    }

    #[test]
    fn dfa_agrees_with_nfa() {
        let re = Regex::parse(r"(a|b)*abb").unwrap();
        let dfa = re.dfa();
        for input in ["abb", "aabb", "babb", "ab", "", "abba", "aaabb"] {
            assert_eq!(re.is_match(input), dfa.is_match(input), "input {input:?}");
        }
    }

    #[test]
    fn pattern_accessor() {
        let re = Regex::parse("a+").unwrap();
        assert_eq!(re.pattern(), "a+");
    }
}
