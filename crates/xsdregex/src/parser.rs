//! Recursive-descent parser for the XSD pattern grammar (XML Schema
//! Part 2, Appendix F).
//!
//! Grammar (simplified to what we support — the full Appendix F minus
//! `\p{…}` block escapes, which the schema corpus in this reproduction
//! does not use; they are rejected with a clear error):
//!
//! ```text
//! regExp     ::= branch ( '|' branch )*
//! branch     ::= piece*
//! piece      ::= atom quantifier?
//! quantifier ::= '?' | '*' | '+' | '{' n (',' m?)? '}'
//! atom       ::= char | charClass | '(' regExp ')'
//! charClass  ::= charClassEsc | charClassExpr | '.'
//! charClassExpr ::= '[' '^'? group ('-' '[' … ']')? ']'
//! ```

use std::fmt;

use crate::ast::Ast;
use crate::charset::CharSet;

/// Where and why a pattern failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePatternError {
    /// The failure kind.
    pub kind: PatternErrorKind,
    /// Byte offset in the pattern.
    pub at: usize,
}

/// The kinds of pattern syntax errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternErrorKind {
    /// Pattern ended unexpectedly.
    UnexpectedEnd,
    /// A character that cannot appear here.
    Unexpected(char),
    /// Unknown escape sequence.
    BadEscape(char),
    /// `{n,m}` with `n > m` or unparsable numbers.
    BadQuantifier,
    /// A quantifier with nothing to repeat (`*` at start, `a**`).
    NothingToRepeat,
    /// Character range with `lo > hi`, e.g. `[z-a]`.
    BadRange(char, char),
    /// `\p{…}` category escapes are not supported by this profile.
    UnsupportedCategoryEscape,
    /// Unmatched `)` or `]` or `}`.
    Unbalanced(char),
}

impl fmt::Display for ParsePatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match &self.kind {
            PatternErrorKind::UnexpectedEnd => "pattern ended unexpectedly".to_string(),
            PatternErrorKind::Unexpected(c) => format!("unexpected {c:?}"),
            PatternErrorKind::BadEscape(c) => format!("unknown escape \\{c}"),
            PatternErrorKind::BadQuantifier => "malformed {n,m} quantifier".to_string(),
            PatternErrorKind::NothingToRepeat => "quantifier with nothing to repeat".to_string(),
            PatternErrorKind::BadRange(lo, hi) => format!("bad character range {lo:?}-{hi:?}"),
            PatternErrorKind::UnsupportedCategoryEscape => {
                "\\p{…} category escapes are not supported".to_string()
            }
            PatternErrorKind::Unbalanced(c) => format!("unbalanced {c:?}"),
        };
        write!(f, "{k} at offset {}", self.at)
    }
}

impl std::error::Error for ParsePatternError {}

/// Parses an XSD pattern into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, ParsePatternError> {
    let mut p = Parser {
        chars: pattern.char_indices().collect(),
        pos: 0,
    };
    let ast = p.regexp()?;
    match p.peek() {
        None => Ok(ast),
        Some(c) => Err(p.error(PatternErrorKind::Unbalanced(c))),
    }
}

struct Parser {
    chars: Vec<(usize, char)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|&(i, _)| i)
            .unwrap_or_else(|| {
                self.chars
                    .last()
                    .map(|&(i, c)| i + c.len_utf8())
                    .unwrap_or(0)
            })
    }

    fn error(&self, kind: PatternErrorKind) -> ParsePatternError {
        ParsePatternError {
            kind,
            at: self.offset(),
        }
    }

    fn regexp(&mut self) -> Result<Ast, ParsePatternError> {
        let mut branches = vec![self.branch()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.branch()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().unwrap())
        } else {
            Ok(Ast::Alternate(branches))
        }
    }

    fn branch(&mut self) -> Result<Ast, ParsePatternError> {
        let mut parts = Vec::new();
        loop {
            match self.peek() {
                None | Some('|') | Some(')') => break,
                Some(q @ ('?' | '*' | '+')) => {
                    let _ = q;
                    return Err(self.error(PatternErrorKind::NothingToRepeat));
                }
                Some('{') => return Err(self.error(PatternErrorKind::NothingToRepeat)),
                _ => {
                    let atom = self.atom()?;
                    parts.push(self.quantified(atom)?);
                }
            }
        }
        match parts.len() {
            0 => Ok(Ast::Empty),
            1 => Ok(parts.pop().unwrap()),
            _ => Ok(Ast::Concat(parts)),
        }
    }

    fn quantified(&mut self, atom: Ast) -> Result<Ast, ParsePatternError> {
        let (min, max) = match self.peek() {
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('{') => {
                self.bump();
                self.braced_quantifier()?
            }
            _ => return Ok(atom),
        };
        // Reject double quantifiers like `a*+` explicitly.
        if matches!(self.peek(), Some('?' | '*' | '+' | '{')) {
            return Err(self.error(PatternErrorKind::NothingToRepeat));
        }
        Ok(Ast::Repeat {
            inner: Box::new(atom),
            min,
            max,
        })
    }

    fn braced_quantifier(&mut self) -> Result<(u32, Option<u32>), ParsePatternError> {
        let min = self.number()?;
        match self.bump() {
            Some('}') => Ok((min, Some(min))),
            Some(',') => match self.peek() {
                Some('}') => {
                    self.bump();
                    Ok((min, None))
                }
                _ => {
                    let max = self.number()?;
                    if self.bump() != Some('}') {
                        return Err(self.error(PatternErrorKind::BadQuantifier));
                    }
                    if max < min {
                        return Err(self.error(PatternErrorKind::BadQuantifier));
                    }
                    Ok((min, Some(max)))
                }
            },
            _ => Err(self.error(PatternErrorKind::BadQuantifier)),
        }
    }

    fn number(&mut self) -> Result<u32, ParsePatternError> {
        let mut digits = String::new();
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            digits.push(self.bump().unwrap());
        }
        digits
            .parse()
            .map_err(|_| self.error(PatternErrorKind::BadQuantifier))
    }

    fn atom(&mut self) -> Result<Ast, ParsePatternError> {
        match self.peek() {
            Some('(') => {
                self.bump();
                let inner = self.regexp()?;
                if self.bump() != Some(')') {
                    return Err(self.error(PatternErrorKind::Unbalanced('(')));
                }
                Ok(inner)
            }
            Some('[') => {
                self.bump();
                let set = self.char_class_expr()?;
                Ok(Ast::Class(set))
            }
            Some('.') => {
                self.bump();
                // XSD '.' is every char except newline and carriage return.
                Ok(Ast::Class(
                    CharSet::from_ranges([('\n', '\n'), ('\r', '\r')]).negate(),
                ))
            }
            Some('\\') => {
                self.bump();
                let set = self.escape()?;
                Ok(Ast::Class(set))
            }
            Some(c @ (']' | '}')) => Err(self.error(PatternErrorKind::Unbalanced(c))),
            Some(c) => {
                self.bump();
                Ok(Ast::Class(CharSet::single(c)))
            }
            None => Err(self.error(PatternErrorKind::UnexpectedEnd)),
        }
    }

    /// Single- and multi-character escapes, shared between atoms and
    /// class expressions.
    fn escape(&mut self) -> Result<CharSet, ParsePatternError> {
        let c = self
            .bump()
            .ok_or_else(|| self.error(PatternErrorKind::UnexpectedEnd))?;
        let set = match c {
            // single-character escapes
            'n' => CharSet::single('\n'),
            'r' => CharSet::single('\r'),
            't' => CharSet::single('\t'),
            '\\' | '|' | '.' | '-' | '^' | '?' | '*' | '+' | '{' | '}' | '(' | ')' | '[' | ']' => {
                CharSet::single(c)
            }
            // multi-character escapes
            'd' => CharSet::digit(),
            'D' => CharSet::digit().negate(),
            's' => CharSet::space(),
            'S' => CharSet::space().negate(),
            'w' => CharSet::word(),
            'W' => CharSet::word().negate(),
            'i' => CharSet::name_start(),
            'I' => CharSet::name_start().negate(),
            'c' => CharSet::name_char(),
            'C' => CharSet::name_char().negate(),
            'p' | 'P' => return Err(self.error(PatternErrorKind::UnsupportedCategoryEscape)),
            other => return Err(self.error(PatternErrorKind::BadEscape(other))),
        };
        Ok(set)
    }

    /// Parses the inside of `[...]` after the opening bracket.
    fn char_class_expr(&mut self) -> Result<CharSet, ParsePatternError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut set = CharSet::empty();
        let mut first = true;
        loop {
            match self.peek() {
                Some(']') if !first => {
                    self.bump();
                    break;
                }
                None => return Err(self.error(PatternErrorKind::UnexpectedEnd)),
                Some('-') if !first => {
                    // could be subtraction `-[...]` or a literal trailing '-'
                    self.bump();
                    match self.peek() {
                        Some('[') => {
                            self.bump();
                            let sub = self.char_class_expr()?;
                            if self.bump() != Some(']') {
                                return Err(self.error(PatternErrorKind::Unbalanced('[')));
                            }
                            let base = if negated { set.negate() } else { set };
                            return Ok(base.subtract(&sub));
                        }
                        Some(']') => {
                            self.bump();
                            set = set.union(&CharSet::single('-'));
                            break;
                        }
                        _ => return Err(self.error(PatternErrorKind::Unexpected('-'))),
                    }
                }
                _ => {
                    let lo_set = self.class_member()?;
                    // range only applies when the member was a single char
                    if self.peek() == Some('-') && lo_set.len() == 1 {
                        // peek past '-' to distinguish range from subtraction
                        let save = self.pos;
                        self.bump();
                        match self.peek() {
                            Some('[') | Some(']') | None => {
                                self.pos = save; // not a range; loop handles it
                                set = set.union(&lo_set);
                            }
                            _ => {
                                let hi_set = self.class_member()?;
                                let lo = lo_set.example().unwrap();
                                let hi = hi_set
                                    .example()
                                    .ok_or_else(|| self.error(PatternErrorKind::UnexpectedEnd))?;
                                if hi_set.len() != 1 || hi < lo {
                                    return Err(self.error(PatternErrorKind::BadRange(lo, hi)));
                                }
                                set = set.union(&CharSet::range(lo, hi));
                            }
                        }
                    } else {
                        set = set.union(&lo_set);
                    }
                }
            }
            first = false;
        }
        Ok(if negated { set.negate() } else { set })
    }

    fn class_member(&mut self) -> Result<CharSet, ParsePatternError> {
        match self.bump() {
            Some('\\') => self.escape(),
            Some(c) => Ok(CharSet::single(c)),
            None => Err(self.error(PatternErrorKind::UnexpectedEnd)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_of(pattern: &str) -> CharSet {
        match parse(pattern).unwrap() {
            Ast::Class(set) => set,
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn literals_and_concat() {
        let ast = parse("abc").unwrap();
        match ast {
            Ast::Concat(parts) => assert_eq!(parts.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_pattern_is_empty_ast() {
        assert_eq!(parse("").unwrap(), Ast::Empty);
        // empty alternation branch
        match parse("a|").unwrap() {
            Ast::Alternate(bs) => assert_eq!(bs[1], Ast::Empty),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quantifiers() {
        for (p, min, max) in [
            ("a?", 0, Some(1)),
            ("a*", 0, None),
            ("a+", 1, None),
            ("a{3}", 3, Some(3)),
            ("a{2,}", 2, None),
            ("a{2,5}", 2, Some(5)),
        ] {
            match parse(p).unwrap() {
                Ast::Repeat { min: m, max: x, .. } => {
                    assert_eq!((m, x), (min, max), "{p}");
                }
                other => panic!("{p}: {other:?}"),
            }
        }
    }

    #[test]
    fn bad_quantifiers_rejected() {
        assert!(parse("a{5,2}").is_err());
        assert!(parse("a{}").is_err());
        assert!(parse("*a").is_err());
        assert!(parse("a**").is_err());
        assert!(parse("{2}").is_err());
    }

    #[test]
    fn char_classes() {
        let set = class_of("[a-f0-9]");
        assert!(set.contains('c') && set.contains('7'));
        assert!(!set.contains('g'));

        let neg = class_of("[^a-z]");
        assert!(!neg.contains('m'));
        assert!(neg.contains('M'));

        let dash = class_of("[a-]");
        assert!(dash.contains('a') && dash.contains('-'));
    }

    #[test]
    fn class_subtraction() {
        let set = class_of("[a-z-[aeiou]]");
        assert!(set.contains('b'));
        assert!(!set.contains('e'));
    }

    #[test]
    fn escapes() {
        assert!(class_of(r"\d").contains('5'));
        assert!(!class_of(r"\D").contains('5'));
        assert!(class_of(r"\s").contains(' '));
        assert!(class_of(r"\.").contains('.'));
        assert!(class_of(r"\\").contains('\\'));
        assert!(class_of(r"\n").contains('\n'));
        assert!(parse(r"\q").is_err());
        assert!(matches!(
            parse(r"\p{L}").unwrap_err().kind,
            PatternErrorKind::UnsupportedCategoryEscape
        ));
    }

    #[test]
    fn dot_excludes_newlines() {
        let set = class_of(".");
        assert!(set.contains('x'));
        assert!(!set.contains('\n'));
        assert!(!set.contains('\r'));
    }

    #[test]
    fn groups_and_alternation() {
        let ast = parse("(a|b)c").unwrap();
        match ast {
            Ast::Concat(parts) => {
                assert!(matches!(parts[0], Ast::Alternate(_)));
                assert!(matches!(parts[1], Ast::Class(_)));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse("(a").is_err());
        assert!(parse("a)").is_err());
    }

    #[test]
    fn bad_range_rejected() {
        assert!(matches!(
            parse("[z-a]").unwrap_err().kind,
            PatternErrorKind::BadRange('z', 'a')
        ));
    }

    #[test]
    fn error_offsets_are_byte_positions() {
        let err = parse("ab\\q").unwrap_err();
        assert_eq!(err.at, 4);
    }
}
