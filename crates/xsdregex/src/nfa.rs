//! Thompson construction and direct NFA simulation.
//!
//! Counted repetitions `{n,m}` are compiled by structural repetition of
//! the sub-automaton, which keeps simulation simple; the schema corpus
//! uses small counts (`{3}`, `{2}`), and construction cost is measured in
//! the `automata` bench (B5 ablates counter automata for the content-model
//! case, where counts can be large).

use crate::ast::Ast;
use crate::charset::CharSet;

/// State index within an [`Nfa`].
pub type StateId = usize;

/// A transition: consume one character from `on`, go to `to`.
#[derive(Debug, Clone)]
pub struct Transition {
    /// The labelled character set.
    pub on: CharSet,
    /// Target state.
    pub to: StateId,
}

/// A single NFA state: character transitions plus ε-moves.
#[derive(Debug, Clone, Default)]
pub struct State {
    /// Character-consuming transitions.
    pub transitions: Vec<Transition>,
    /// ε-transitions.
    pub epsilon: Vec<StateId>,
}

/// A Thompson NFA with a single start and a single accept state.
#[derive(Debug, Clone)]
pub struct Nfa {
    states: Vec<State>,
    start: StateId,
    accept: StateId,
}

impl Nfa {
    /// Compiles an AST into an NFA.
    pub fn compile(ast: &Ast) -> Nfa {
        let mut builder = Builder { states: Vec::new() };
        let start = builder.new_state();
        let accept = builder.new_state();
        builder.build(ast, start, accept);
        Nfa {
            states: builder.states,
            start,
            accept,
        }
    }

    /// Number of states (bench metric).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The accept state.
    pub fn accept(&self) -> StateId {
        self.accept
    }

    /// The states, indexable by [`StateId`].
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// ε-closure of a set of states, as a sorted deduplicated vec.
    pub fn epsilon_closure(&self, seeds: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<StateId> = seeds.to_vec();
        for &s in seeds {
            seen[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &t in &self.states[s].epsilon {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        seen.iter()
            .enumerate()
            .filter_map(|(i, &v)| v.then_some(i))
            .collect()
    }

    /// Whole-string match by breadth-first NFA simulation.
    pub fn is_match(&self, input: &str) -> bool {
        let mut current = self.epsilon_closure(&[self.start]);
        for c in input.chars() {
            if current.is_empty() {
                return false;
            }
            let mut next: Vec<StateId> = Vec::new();
            for &s in &current {
                for t in &self.states[s].transitions {
                    if t.on.contains(c) && !next.contains(&t.to) {
                        next.push(t.to);
                    }
                }
            }
            current = self.epsilon_closure(&next);
        }
        current.contains(&self.accept)
    }
}

struct Builder {
    states: Vec<State>,
}

impl Builder {
    fn new_state(&mut self) -> StateId {
        self.states.push(State::default());
        self.states.len() - 1
    }

    fn epsilon(&mut self, from: StateId, to: StateId) {
        self.states[from].epsilon.push(to);
    }

    fn transition(&mut self, from: StateId, on: CharSet, to: StateId) {
        self.states[from].transitions.push(Transition { on, to });
    }

    /// Builds `ast` between `from` and `to`.
    fn build(&mut self, ast: &Ast, from: StateId, to: StateId) {
        match ast {
            Ast::Empty => self.epsilon(from, to),
            Ast::Class(set) => self.transition(from, set.clone(), to),
            Ast::Concat(parts) => {
                let mut current = from;
                for (i, part) in parts.iter().enumerate() {
                    let next = if i + 1 == parts.len() {
                        to
                    } else {
                        self.new_state()
                    };
                    self.build(part, current, next);
                    current = next;
                }
                if parts.is_empty() {
                    self.epsilon(from, to);
                }
            }
            Ast::Alternate(branches) => {
                for branch in branches {
                    let s = self.new_state();
                    let e = self.new_state();
                    self.epsilon(from, s);
                    self.build(branch, s, e);
                    self.epsilon(e, to);
                }
            }
            Ast::Repeat { inner, min, max } => {
                match max {
                    Some(max) => {
                        // chain of `max` copies; copies past `min` are skippable
                        let mut current = from;
                        for i in 0..*max {
                            let next = if i + 1 == *max { to } else { self.new_state() };
                            if i >= *min {
                                self.epsilon(current, to);
                            }
                            self.build(inner, current, next);
                            current = next;
                        }
                        if *max == 0 {
                            self.epsilon(from, to);
                        }
                    }
                    None => {
                        // `min` mandatory copies, then a Kleene loop
                        let mut current = from;
                        for _ in 0..*min {
                            let next = self.new_state();
                            self.build(inner, current, next);
                            current = next;
                        }
                        let loop_start = self.new_state();
                        let loop_end = self.new_state();
                        self.epsilon(current, loop_start);
                        self.epsilon(current, to);
                        self.build(inner, loop_start, loop_end);
                        self.epsilon(loop_end, loop_start);
                        self.epsilon(loop_end, to);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn nfa(pattern: &str) -> Nfa {
        Nfa::compile(&parse(pattern).unwrap())
    }

    #[test]
    fn literal_match() {
        let n = nfa("abc");
        assert!(n.is_match("abc"));
        assert!(!n.is_match("ab"));
        assert!(!n.is_match("abcd"));
        assert!(!n.is_match(""));
    }

    #[test]
    fn empty_pattern_matches_only_empty() {
        let n = nfa("");
        assert!(n.is_match(""));
        assert!(!n.is_match("a"));
    }

    #[test]
    fn alternation_and_kleene() {
        let n = nfa("(ab|cd)*");
        assert!(n.is_match(""));
        assert!(n.is_match("ab"));
        assert!(n.is_match("abcdab"));
        assert!(!n.is_match("abc"));
    }

    #[test]
    fn counted_repetition() {
        let n = nfa("a{2,4}");
        assert!(!n.is_match("a"));
        assert!(n.is_match("aa"));
        assert!(n.is_match("aaa"));
        assert!(n.is_match("aaaa"));
        assert!(!n.is_match("aaaaa"));

        let n = nfa("a{0,2}");
        assert!(n.is_match(""));
        assert!(n.is_match("aa"));
        assert!(!n.is_match("aaa"));

        let n = nfa("a{3}");
        assert!(n.is_match("aaa"));
        assert!(!n.is_match("aa"));
        assert!(!n.is_match("aaaa"));

        let n = nfa("a{2,}");
        assert!(!n.is_match("a"));
        assert!(n.is_match("aaaaaaa"));
    }

    #[test]
    fn zero_max_repeat() {
        let n = nfa("a{0,0}");
        assert!(n.is_match(""));
        assert!(!n.is_match("a"));
    }

    #[test]
    fn optional_plus() {
        let n = nfa("ab?c+");
        assert!(n.is_match("ac"));
        assert!(n.is_match("abc"));
        assert!(n.is_match("abccc"));
        assert!(!n.is_match("ab"));
    }

    #[test]
    fn classes_in_nfa() {
        let n = nfa(r"[A-Z][a-z]*");
        assert!(n.is_match("Hello"));
        assert!(!n.is_match("hello"));
        assert!(n.is_match("X"));
    }

    #[test]
    fn epsilon_closure_reaches_through_chains() {
        let n = nfa("a*b*");
        assert!(n.is_match(""));
        assert!(n.is_match("aaabbb"));
        assert!(n.is_match("b"));
        assert!(!n.is_match("ba"));
    }

    #[test]
    fn nested_quantified_groups() {
        let n = nfa("(a{2}b){2}");
        assert!(n.is_match("aabaab"));
        assert!(!n.is_match("aab"));
        assert!(!n.is_match("aabab"));
    }
}
