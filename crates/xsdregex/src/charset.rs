//! Sets of Unicode scalar values, represented as sorted, disjoint,
//! non-adjacent inclusive ranges.
//!
//! This is the alphabet type shared by the NFA and DFA: transitions are
//! labelled with `CharSet`s, and the DFA construction partitions the
//! alphabet into equivalence classes derived from the range boundaries.

/// The maximum Unicode scalar value.
const MAX_CHAR: u32 = char::MAX as u32;

/// An immutable set of characters as sorted disjoint inclusive ranges.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CharSet {
    /// Sorted, disjoint, non-adjacent `(lo, hi)` inclusive ranges.
    ranges: Vec<(u32, u32)>,
}

impl CharSet {
    /// The empty set.
    pub fn empty() -> Self {
        CharSet::default()
    }

    /// The set of every XML character (approximated as all scalar values;
    /// the parser rejects non-XML chars before matching is attempted).
    pub fn any() -> Self {
        CharSet {
            ranges: vec![(0, MAX_CHAR)],
        }
    }

    /// A single character.
    pub fn single(c: char) -> Self {
        CharSet {
            ranges: vec![(c as u32, c as u32)],
        }
    }

    /// An inclusive range `lo..=hi`.
    pub fn range(lo: char, hi: char) -> Self {
        assert!(lo <= hi, "invalid range {lo:?}..={hi:?}");
        CharSet {
            ranges: vec![(lo as u32, hi as u32)],
        }
    }

    /// Builds a set from arbitrary `(lo, hi)` pairs, normalizing.
    pub fn from_ranges(pairs: impl IntoIterator<Item = (char, char)>) -> Self {
        let mut set = CharSet::empty();
        for (lo, hi) in pairs {
            set = set.union(&CharSet::range(lo, hi));
        }
        set
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of characters in the set.
    pub fn len(&self) -> u64 {
        self.ranges
            .iter()
            .map(|&(lo, hi)| u64::from(hi - lo) + 1)
            .sum()
    }

    /// Membership test.
    pub fn contains(&self, c: char) -> bool {
        let cp = c as u32;
        self.ranges
            .binary_search_by(|&(lo, hi)| {
                if cp < lo {
                    std::cmp::Ordering::Greater
                } else if cp > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// The sorted disjoint ranges.
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }

    /// Set union.
    pub fn union(&self, other: &CharSet) -> CharSet {
        let mut all: Vec<(u32, u32)> = self
            .ranges
            .iter()
            .chain(other.ranges.iter())
            .copied()
            .collect();
        all.sort_unstable();
        let mut out: Vec<(u32, u32)> = Vec::with_capacity(all.len());
        for (lo, hi) in all {
            match out.last_mut() {
                // merge overlapping or adjacent ranges
                Some(&mut (_, ref mut phi)) if lo <= phi.saturating_add(1) => {
                    *phi = (*phi).max(hi);
                }
                _ => out.push((lo, hi)),
            }
        }
        CharSet { ranges: out }
    }

    /// Set complement (relative to all scalar values).
    pub fn negate(&self) -> CharSet {
        let mut out = Vec::with_capacity(self.ranges.len() + 1);
        let mut next = 0u32;
        for &(lo, hi) in &self.ranges {
            if lo > next {
                out.push((next, lo - 1));
            }
            next = hi.saturating_add(1);
            if next > MAX_CHAR {
                return CharSet { ranges: out };
            }
        }
        if next <= MAX_CHAR {
            out.push((next, MAX_CHAR));
        }
        CharSet { ranges: out }
    }

    /// Set difference `self - other` (XSD class subtraction `[a-z-[aeiou]]`).
    pub fn subtract(&self, other: &CharSet) -> CharSet {
        self.intersect(&other.negate())
    }

    /// Set intersection.
    pub fn intersect(&self, other: &CharSet) -> CharSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (alo, ahi) = self.ranges[i];
            let (blo, bhi) = other.ranges[j];
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if lo <= hi {
                out.push((lo, hi));
            }
            if ahi < bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        CharSet { ranges: out }
    }

    /// An arbitrary member, if non-empty (used by tests and error demos).
    pub fn example(&self) -> Option<char> {
        self.ranges.first().and_then(|&(lo, _)| char::from_u32(lo))
    }

    // ---- the multi-character escape classes of XSD ----------------------

    /// `\d`: Unicode decimal digits (approximated by `char::is_numeric`
    /// restricted to `Nd` via `is_ascii_digit` ∪ common digit blocks; for
    /// schema validation ASCII digits dominate, but we include the BMP
    /// decimal-digit blocks used in practice).
    pub fn digit() -> CharSet {
        CharSet::from_ranges([
            ('0', '9'),
            ('\u{0660}', '\u{0669}'), // Arabic-Indic
            ('\u{06F0}', '\u{06F9}'), // Extended Arabic-Indic
            ('\u{0966}', '\u{096F}'), // Devanagari
            ('\u{FF10}', '\u{FF19}'), // Fullwidth
        ])
    }

    /// `\s`: the XSD whitespace class — exactly space, tab, CR, LF.
    pub fn space() -> CharSet {
        CharSet::from_ranges([('\t', '\n'), ('\r', '\r'), (' ', ' ')])
    }

    /// `\i`: initial name characters (`NameStartChar`).
    pub fn name_start() -> CharSet {
        CharSet::from_ranges([
            (':', ':'),
            ('A', 'Z'),
            ('_', '_'),
            ('a', 'z'),
            ('\u{C0}', '\u{D6}'),
            ('\u{D8}', '\u{F6}'),
            ('\u{F8}', '\u{2FF}'),
            ('\u{370}', '\u{37D}'),
            ('\u{37F}', '\u{1FFF}'),
            ('\u{200C}', '\u{200D}'),
            ('\u{2070}', '\u{218F}'),
            ('\u{2C00}', '\u{2FEF}'),
            ('\u{3001}', '\u{D7FF}'),
            ('\u{F900}', '\u{FDCF}'),
            ('\u{FDF0}', '\u{FFFD}'),
            ('\u{10000}', '\u{EFFFF}'),
        ])
    }

    /// `\c`: name characters (`NameChar`).
    pub fn name_char() -> CharSet {
        CharSet::name_start().union(&CharSet::from_ranges([
            ('-', '.'),
            ('0', '9'),
            ('\u{B7}', '\u{B7}'),
            ('\u{300}', '\u{36F}'),
            ('\u{203F}', '\u{2040}'),
        ]))
    }

    /// `\w`: word characters — everything except punctuation, separators
    /// and control/other. We approximate with letters, digits, marks,
    /// connector punctuation over the ASCII + common ranges used by the
    /// schema corpus, as permitted for a profile implementation.
    pub fn word() -> CharSet {
        CharSet::from_ranges([('0', '9'), ('A', 'Z'), ('_', '_'), ('a', 'z')])
            .union(&CharSet::range('\u{C0}', '\u{2FF}'))
            .union(&CharSet::range('\u{370}', '\u{1FFF}'))
            .union(&CharSet::range('\u{3040}', '\u{9FFF}'))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_merges_overlaps_and_adjacency() {
        let s = CharSet::range('a', 'f').union(&CharSet::range('d', 'k'));
        assert_eq!(s.ranges(), &[('a' as u32, 'k' as u32)]);
        let s = CharSet::range('a', 'b').union(&CharSet::range('c', 'd'));
        assert_eq!(s.ranges(), &[('a' as u32, 'd' as u32)]);
        let s = CharSet::range('a', 'b').union(&CharSet::range('x', 'z'));
        assert_eq!(s.ranges().len(), 2);
    }

    #[test]
    fn contains_uses_binary_search() {
        let s = CharSet::from_ranges([('a', 'f'), ('x', 'z'), ('0', '4')]);
        for c in ['a', 'f', 'c', 'x', 'z', '0', '4'] {
            assert!(s.contains(c), "{c}");
        }
        for c in ['g', 'w', '5', ' '] {
            assert!(!s.contains(c), "{c}");
        }
    }

    #[test]
    fn negate_partitions_the_alphabet() {
        let s = CharSet::range('b', 'd');
        let n = s.negate();
        assert!(!n.contains('b') && !n.contains('c') && !n.contains('d'));
        assert!(n.contains('a') && n.contains('e') && n.contains('\u{10FFFF}'));
        assert_eq!(n.negate(), s);
        assert_eq!(CharSet::any().negate(), CharSet::empty());
        assert_eq!(CharSet::empty().negate(), CharSet::any());
    }

    #[test]
    fn intersect_and_subtract() {
        let az = CharSet::range('a', 'z');
        let vowels =
            CharSet::from_ranges([('a', 'a'), ('e', 'e'), ('i', 'i'), ('o', 'o'), ('u', 'u')]);
        let consonants = az.subtract(&vowels);
        assert!(consonants.contains('b'));
        assert!(!consonants.contains('e'));
        assert_eq!(consonants.len(), 21);
        assert_eq!(az.intersect(&vowels), vowels);
    }

    #[test]
    fn len_counts_characters() {
        assert_eq!(CharSet::range('a', 'z').len(), 26);
        assert_eq!(CharSet::single('x').len(), 1);
        assert_eq!(CharSet::empty().len(), 0);
    }

    #[test]
    fn class_escapes_sanity() {
        assert!(CharSet::digit().contains('7'));
        assert!(!CharSet::digit().contains('x'));
        assert!(CharSet::space().contains('\t'));
        assert!(!CharSet::space().contains('\u{A0}'));
        assert!(CharSet::name_start().contains('A'));
        assert!(!CharSet::name_start().contains('-'));
        assert!(CharSet::name_char().contains('-'));
        assert!(CharSet::word().contains('_'));
    }
}
