//! Subset construction: NFA → DFA over a partition of the alphabet.
//!
//! Transition labels are [`CharSet`]s, so the classic construction is
//! adapted: for each DFA state (a set of NFA states) we collect the
//! outgoing `CharSet`s and refine them into disjoint cells; each cell
//! yields at most one successor. Matching then walks one state per input
//! character — the representation the paper's Sect. 6 preprocessor uses
//! for repeated validation.

use std::collections::HashMap;

use crate::charset::CharSet;
use crate::nfa::{Nfa, StateId};

/// A deterministic automaton for whole-string matching.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// Per-state transition table: disjoint `(CharSet, target)` pairs.
    transitions: Vec<Vec<(CharSet, usize)>>,
    accepting: Vec<bool>,
}

impl Dfa {
    /// Builds a DFA from `nfa` by subset construction.
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        let start_set = nfa.epsilon_closure(&[nfa.start()]);
        let mut index: HashMap<Vec<StateId>, usize> = HashMap::new();
        index.insert(start_set.clone(), 0);
        let mut worklist = vec![start_set];
        let mut transitions: Vec<Vec<(CharSet, usize)>> = vec![Vec::new()];
        let mut accepting = vec![false];
        let mut processed = 0;

        while processed < worklist.len() {
            let current = worklist[processed].clone();
            let current_id = index[&current];
            accepting[current_id] = current.contains(&nfa.accept());

            // Gather all outgoing labels and refine into disjoint cells.
            let labels: Vec<&CharSet> = current
                .iter()
                .flat_map(|&s| nfa.states()[s].transitions.iter().map(|t| &t.on))
                .collect();
            for cell in refine(&labels) {
                // successor under any character of `cell` (cells are
                // equivalence classes, so one representative suffices)
                let repr = cell.example().expect("cells are non-empty");
                let mut next: Vec<StateId> = Vec::new();
                for &s in &current {
                    for t in &nfa.states()[s].transitions {
                        if t.on.contains(repr) && !next.contains(&t.to) {
                            next.push(t.to);
                        }
                    }
                }
                let next = nfa.epsilon_closure(&next);
                if next.is_empty() {
                    continue;
                }
                let next_id = *index.entry(next.clone()).or_insert_with(|| {
                    worklist.push(next.clone());
                    transitions.push(Vec::new());
                    accepting.push(false);
                    transitions.len() - 1
                });
                transitions[current_id].push((cell, next_id));
            }
            processed += 1;
        }

        Dfa {
            transitions,
            accepting,
        }
    }

    /// Number of DFA states (bench metric).
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// Whole-string match.
    pub fn is_match(&self, input: &str) -> bool {
        let mut state = 0usize;
        for c in input.chars() {
            match self.transitions[state]
                .iter()
                .find(|(set, _)| set.contains(c))
            {
                Some(&(_, next)) => state = next,
                None => return false,
            }
        }
        self.accepting[state]
    }
}

/// Refines a collection of possibly-overlapping `CharSet`s into the
/// coarsest partition of their union such that every cell is contained in
/// or disjoint from every input set.
fn refine(labels: &[&CharSet]) -> Vec<CharSet> {
    // Collect boundary points from every range.
    let mut bounds: Vec<u32> = Vec::new();
    for set in labels {
        for &(lo, hi) in set.ranges() {
            bounds.push(lo);
            bounds.push(hi.saturating_add(1));
        }
    }
    bounds.sort_unstable();
    bounds.dedup();

    let mut cells = Vec::new();
    for window in bounds.windows(2) {
        let (lo, hi_excl) = (window[0], window[1]);
        let lo_char = match char::from_u32(lo) {
            Some(c) => c,
            None => continue, // lo inside the surrogate gap: cell boundary only
        };
        // a cell is relevant only if some label contains it
        if labels.iter().any(|s| s.contains(lo_char)) {
            let hi_char = char::from_u32(hi_excl - 1)
                .or_else(|| char::from_u32(0xD7FF))
                .expect("valid char below boundary");
            cells.push(CharSet::range(lo_char, hi_char.max(lo_char)));
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn dfa(pattern: &str) -> Dfa {
        Dfa::from_nfa(&Nfa::compile(&parse(pattern).unwrap()))
    }

    #[test]
    fn dragon_book_example() {
        // (a|b)*abb — the classic Aho–Sethi–Ullman example from the
        // paper's implementation section.
        let d = dfa("(a|b)*abb");
        assert!(d.is_match("abb"));
        assert!(d.is_match("aabb"));
        assert!(d.is_match("bbbabb"));
        assert!(!d.is_match("ab"));
        assert!(!d.is_match("abba"));
        assert!(!d.is_match(""));
        // minimal DFA for this language has 4 states; subset construction
        // may add a few more but must stay small
        assert!(d.state_count() <= 8, "states = {}", d.state_count());
    }

    #[test]
    fn overlapping_classes_are_refined() {
        // [a-m] and [g-z] overlap in [g-m]
        let d = dfa("[a-m][g-z]");
        assert!(d.is_match("am".replace('m', "g").as_str()));
        assert!(d.is_match("gz"));
        assert!(d.is_match("mz"));
        assert!(!d.is_match("za"));
        assert!(!d.is_match("af"));
    }

    #[test]
    fn counted_pattern_in_dfa() {
        let d = dfa(r"\d{3}-[A-Z]{2}");
        assert!(d.is_match("926-AA"));
        assert!(!d.is_match("926-Aa"));
    }

    #[test]
    fn empty_language_never_matches_nonempty() {
        let d = dfa("");
        assert!(d.is_match(""));
        assert!(!d.is_match("x"));
    }

    #[test]
    fn refine_produces_disjoint_cells() {
        let a = CharSet::range('a', 'm');
        let b = CharSet::range('g', 'z');
        let cells = refine(&[&a, &b]);
        assert_eq!(cells.len(), 3); // [a-f] [g-m] [n-z]
        for (i, x) in cells.iter().enumerate() {
            for y in cells.iter().skip(i + 1) {
                assert!(x.intersect(y).is_empty());
            }
        }
        let union = cells.iter().fold(CharSet::empty(), |acc, c| acc.union(c));
        assert_eq!(union, a.union(&b));
    }

    #[test]
    fn negated_class_cells_handle_huge_ranges() {
        let d = dfa("[^a]+");
        assert!(d.is_match("xyz"));
        assert!(d.is_match("\u{10FFFF}"));
        assert!(!d.is_match("xay"));
    }
}
