//! The abstract syntax of XSD patterns.

use crate::charset::CharSet;

/// A parsed pattern expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// The empty string.
    Empty,
    /// Any single character from the set.
    Class(CharSet),
    /// Concatenation of parts, in order.
    Concat(Vec<Ast>),
    /// Alternation between branches.
    Alternate(Vec<Ast>),
    /// `inner{min, max}` with `max = None` meaning unbounded.
    Repeat {
        /// Repeated expression.
        inner: Box<Ast>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions, `None` = unbounded.
        max: Option<u32>,
    },
}

impl Ast {
    /// Counts AST nodes (used by tests and the tooling bench).
    pub fn size(&self) -> usize {
        match self {
            Ast::Empty | Ast::Class(_) => 1,
            Ast::Concat(parts) | Ast::Alternate(parts) => {
                1 + parts.iter().map(Ast::size).sum::<usize>()
            }
            Ast::Repeat { inner, .. } => 1 + inner.size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_counts_nodes() {
        let ast = Ast::Concat(vec![
            Ast::Class(CharSet::single('a')),
            Ast::Repeat {
                inner: Box::new(Ast::Class(CharSet::single('b'))),
                min: 0,
                max: None,
            },
        ]);
        assert_eq!(ast.size(), 4);
    }
}
