//! Property tests: the DFA must agree with the NFA on every input, and
//! parsing must never panic.

use proptest::prelude::*;
use xsdregex::Regex;

/// A small generator of syntactically valid XSD patterns.
fn arb_pattern() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        "[a-c]".prop_map(|s: String| s),
        Just("a".to_string()),
        Just("b".to_string()),
        Just("[ab]".to_string()),
        Just(r"\d".to_string()),
        Just(".".to_string()),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a}{b}")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}|{b})")),
            inner.clone().prop_map(|a| format!("({a})*")),
            inner.clone().prop_map(|a| format!("({a})?")),
            inner.clone().prop_map(|a| format!("({a})+")),
            (inner, 0u32..4, 0u32..4)
                .prop_map(|(a, lo, extra)| format!("({a}){{{lo},{}}}", lo + extra)),
        ]
    })
}

proptest! {
    #[test]
    fn dfa_equals_nfa(pattern in arb_pattern(), input in "[abc0-9]{0,12}") {
        let re = Regex::parse(&pattern).expect("generated patterns are valid");
        let dfa = re.dfa();
        prop_assert_eq!(re.is_match(&input), dfa.is_match(&input),
            "pattern {} input {}", pattern, input);
    }

    #[test]
    fn parse_never_panics(pattern in "\\PC{0,24}") {
        let _ = Regex::parse(&pattern);
    }

    #[test]
    fn literal_patterns_match_themselves(lit in "[a-z]{1,10}") {
        let re = Regex::parse(&lit).unwrap();
        prop_assert!(re.is_match(&lit));
        let extended = format!("{lit}x");
        prop_assert!(!re.is_match(&extended));
    }

    #[test]
    fn charset_union_commutes(
        a in proptest::char::range('a', 'm'), b in proptest::char::range('a', 'm'), c in proptest::char::range('n', 'z'), d in proptest::char::range('n', 'z')
    ) {
        use xsdregex::CharSet;
        let (a, b) = (a.min(b), a.max(b));
        let (c, d) = (c.min(d), c.max(d));
        let x = CharSet::range(a, b);
        let y = CharSet::range(c, d);
        prop_assert_eq!(x.union(&y), y.union(&x));
        prop_assert_eq!(x.union(&y).negate().negate(), x.union(&y));
    }

    #[test]
    fn charset_demorgan(a in proptest::char::range('a', 'z'), b in proptest::char::range('a', 'z')) {
        use xsdregex::CharSet;
        let (a, b) = (a.min(b), a.max(b));
        let x = CharSet::range(a, b);
        let y = CharSet::range('f', 'q');
        // ¬(x ∪ y) = ¬x ∩ ¬y
        prop_assert_eq!(x.union(&y).negate(), x.negate().intersect(&y.negate()));
    }
}
