//! Schema normalization and the V-DOM interface model — the paper's
//! Sect. 3 transformation.
//!
//! Given a checked [`schema::Schema`], this crate provides:
//!
//! * [`naming`] — the paper's *inherited* and *synthesized* naming
//!   schemes for unnamed group expressions and their merge rule;
//! * [`normalform`] — the schema normal form (rules 1–3): named types
//!   only, nested groups lifted into generated named group definitions;
//! * [`model`] + [`build`] — the interface model produced by
//!   transformation rules 1–8: one interface per element declaration,
//!   type definition and model group, with choice groups as inheritance
//!   hierarchies (Fig. 6) and lists as generic list instantiations.
//!
//! The `codegen` crate renders this model as IDL (reproducing the paper's
//! figures) and as Rust (the compile-time guarantee).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod model;
pub mod naming;
pub mod normalform;

pub use build::{
    build_model, element_interface_name, group_interface_name, type_interface_name, BuildError,
};
pub use model::{Field, FieldType, Interface, InterfaceKind, InterfaceModel};
pub use naming::NamePath;
pub use normalform::{normalize_schema, render_particle, NormalizedSchema};
