//! The paper's naming schemes for unnamed group expressions (Sect. 3).
//!
//! * **Synthesized naming** derives a name from the nested subexpressions
//!   (`singAddr | twoAddr` → `singAddrORtwoAddr`). Stable positions, but
//!   adding a choice alternative renames the group — every use site
//!   breaks.
//! * **Inherited naming** derives the name from the defining complex type
//!   and the position path (`PurchaseOrderTypeCC1` = first component of
//!   `PurchaseOrderType`'s content). Adding alternatives keeps the name;
//!   *reordering sequence components* changes it.
//! * The **merged scheme** the paper settles on: inherited names for
//!   choice groups, synthesized names for sequence and list expressions —
//!   plus explicit named groups as the escape hatch when neither works.

/// A position path into a content expression: the `C`-chain of the
/// paper's inherited naming (`PurchaseOrderTypeC`, `…CC1`, `…CC1C2`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamePath {
    segments: Vec<u32>,
    type_name: String,
}

impl NamePath {
    /// The path denoting the entire content expression of `type_name`.
    pub fn root(type_name: impl Into<String>) -> NamePath {
        NamePath {
            segments: Vec::new(),
            type_name: type_name.into(),
        }
    }

    /// The path of the `index`-th (1-based) component of this expression.
    pub fn child(&self, index: u32) -> NamePath {
        let mut segments = self.segments.clone();
        segments.push(index);
        NamePath {
            segments,
            type_name: self.type_name.clone(),
        }
    }

    /// Renders the inherited name: `{Type}C` then `C{i}` per segment.
    pub fn inherited_name(&self) -> String {
        let mut out = format!("{}C", self.type_name);
        for seg in &self.segments {
            out.push('C');
            out.push_str(&seg.to_string());
        }
        out
    }
}

/// Synthesized name of a choice over the given alternative names:
/// `aORbORc` (the paper's original DTD-era scheme, kept for the Fig. 5
/// union-mode reproduction and the evolution ablation).
pub fn synthesized_choice_name(alternatives: &[String]) -> String {
    alternatives.join("OR")
}

/// Synthesized name of a sequence over the given component names.
///
/// The paper prescribes synthesized naming for sequences without fixing
/// the separator; we use `AND`, the obvious dual of its `OR`.
pub fn synthesized_sequence_name(components: &[String]) -> String {
    components.join("AND")
}

/// Synthesized name of a list expression (`maxOccurs > 1`) over `inner`.
pub fn synthesized_list_name(inner: &str) -> String {
    format!("{inner}List")
}

/// Capitalizes the first character (`shipTo` → `ShipTo`), used when an
/// element name participates in a type-level identifier.
pub fn capitalize(name: &str) -> String {
    let mut chars = name.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().chain(chars).collect(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inherited_names_match_the_paper() {
        // Sect. 3: "The entire expression is named by PurchaseOrderTypeC,
        // the first element of the sequence, the choice group, by
        // PurchaseOrderTypeCC1, … the items element by
        // PurchaseOrderTypeCC3. Recursively the singAddr in the choice
        // expression gets the name PurchaseOrderTypeCC1C1 and the twoAddr
        // element the name PurchaseOrderTypeCC1C2."
        let root = NamePath::root("PurchaseOrderType");
        assert_eq!(root.inherited_name(), "PurchaseOrderTypeC");
        assert_eq!(root.child(1).inherited_name(), "PurchaseOrderTypeCC1");
        assert_eq!(root.child(2).inherited_name(), "PurchaseOrderTypeCC2");
        assert_eq!(root.child(3).inherited_name(), "PurchaseOrderTypeCC3");
        assert_eq!(
            root.child(1).child(1).inherited_name(),
            "PurchaseOrderTypeCC1C1"
        );
        assert_eq!(
            root.child(1).child(2).inherited_name(),
            "PurchaseOrderTypeCC1C2"
        );
    }

    #[test]
    fn inherited_name_stable_under_added_alternative() {
        // the choice keeps its name no matter how many alternatives it has
        let choice = NamePath::root("PurchaseOrderType").child(1);
        let before = choice.inherited_name();
        // … schema evolves, alternative added …
        let after = choice.inherited_name();
        assert_eq!(before, after);
    }

    #[test]
    fn synthesized_choice_matches_the_paper() {
        // Sect. 3: "singAddrORtwoAddr" and after evolution
        // "singAddrORtwoAddrORmultAddr"
        assert_eq!(
            synthesized_choice_name(&["singAddr".into(), "twoAddr".into()]),
            "singAddrORtwoAddr"
        );
        assert_eq!(
            synthesized_choice_name(&["singAddr".into(), "twoAddr".into(), "multAddr".into()]),
            "singAddrORtwoAddrORmultAddr"
        );
    }

    #[test]
    fn synthesized_sequence_changes_when_content_changes() {
        let before = synthesized_sequence_name(&["comment".into(), "items".into()]);
        let after = synthesized_sequence_name(&["comment".into(), "note".into(), "items".into()]);
        assert_ne!(before, after);
    }

    #[test]
    fn list_and_capitalize() {
        assert_eq!(synthesized_list_name("item"), "itemList");
        assert_eq!(capitalize("shipTo"), "ShipTo");
        assert_eq!(capitalize(""), "");
        assert_eq!(capitalize("übermaß"), "Übermaß");
    }
}
