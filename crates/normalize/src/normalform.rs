//! Schema normal form (Sect. 3, rules 1–3):
//!
//! 1. element declarations have *named* types (the reader already lifts
//!    anonymous types, so this holds on entry and is verified here);
//! 2. complex type definitions have no nested group expressions;
//! 3. every unnamed nested group becomes a separate named group
//!    definition, named by the merged scheme (inherited for choices,
//!    synthesized for sequences and lists).
//!
//! The output is a new [`Schema`] in which nested groups are replaced by
//! `GroupRef`s to generated group definitions — exactly the shape shown
//! in the paper's normal-form example.

use schema::{ContentModel, GroupDef, Occurs, Particle, Schema, Term, TypeDef};

use crate::naming::{synthesized_list_name, synthesized_sequence_name, NamePath};

/// The result of normalization.
#[derive(Debug, Clone)]
pub struct NormalizedSchema {
    /// The rewritten schema (normal form).
    pub schema: Schema,
    /// Names of group definitions generated during normalization, in
    /// creation order.
    pub generated_groups: Vec<String>,
}

/// Normalizes `schema` per the paper's rules 1–3.
pub fn normalize_schema(schema: &Schema) -> NormalizedSchema {
    let mut out = schema.clone();
    let mut generated = Vec::new();
    let type_names: Vec<String> = out.types.keys().cloned().collect();
    for name in type_names {
        let def = out.types.get(&name).cloned();
        if let Some(TypeDef::Complex(mut ct)) = def {
            let path = NamePath::root(&ct.name);
            ct.content = match ct.content {
                ContentModel::ElementOnly(p) => {
                    ContentModel::ElementOnly(flatten_top(p, &path, &mut out, &mut generated))
                }
                ContentModel::Mixed(p) => {
                    ContentModel::Mixed(flatten_top(p, &path, &mut out, &mut generated))
                }
                other => other,
            };
            out.types.insert(name, TypeDef::Complex(ct));
        }
    }
    NormalizedSchema {
        schema: out,
        generated_groups: generated,
    }
}

/// Keeps the outermost group of a content model in place but lifts every
/// nested group expression into a generated named group.
fn flatten_top(
    p: Particle,
    path: &NamePath,
    schema: &mut Schema,
    generated: &mut Vec<String>,
) -> Particle {
    match p.term {
        Term::Sequence(children) => Particle {
            term: Term::Sequence(
                children
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| lift_nested(c, &path.child(i as u32 + 1), schema, generated))
                    .collect(),
            ),
            occurs: p.occurs,
        },
        Term::Choice(children) => Particle {
            term: Term::Choice(
                children
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| lift_nested(c, &path.child(i as u32 + 1), schema, generated))
                    .collect(),
            ),
            occurs: p.occurs,
        },
        Term::All(children) => Particle {
            // `all` is treated as sequence (paper Sect. 3)
            term: Term::Sequence(
                children
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| lift_nested(c, &path.child(i as u32 + 1), schema, generated))
                    .collect(),
            ),
            occurs: p.occurs,
        },
        other => Particle {
            term: other,
            occurs: p.occurs,
        },
    }
}

/// Replaces a nested group expression by a reference to a generated named
/// group (recursively normalizing the group's own content).
fn lift_nested(
    p: Particle,
    path: &NamePath,
    schema: &mut Schema,
    generated: &mut Vec<String>,
) -> Particle {
    match &p.term {
        Term::Element { .. } | Term::ElementRef(_) | Term::GroupRef(_) => p,
        Term::Choice(_) => {
            // inherited naming for choices
            let name = path.inherited_name();
            register_group(p.clone(), name.clone(), path, schema, generated);
            Particle {
                term: Term::GroupRef(name),
                occurs: p.occurs,
            }
        }
        Term::Sequence(children) | Term::All(children) => {
            // synthesized naming for sequences/lists
            let names: Vec<String> = children.iter().map(component_name).collect();
            let name = if p.occurs.is_list() && children.len() == 1 {
                synthesized_list_name(&names[0])
            } else {
                synthesized_sequence_name(&names)
            };
            register_group(p.clone(), name.clone(), path, schema, generated);
            Particle {
                term: Term::GroupRef(name),
                occurs: p.occurs,
            }
        }
    }
}

fn register_group(
    p: Particle,
    name: String,
    path: &NamePath,
    schema: &mut Schema,
    generated: &mut Vec<String>,
) {
    if schema.groups.contains_key(&name) {
        return;
    }
    // group definitions hold the group with default occurrence; the use
    // site keeps the occurrence bounds
    let inner = Particle {
        term: p.term,
        occurs: Occurs::ONCE,
    };
    let flattened = flatten_top(inner, path, schema, generated);
    schema.groups.insert(
        name.clone(),
        GroupDef {
            name: name.clone(),
            particle: flattened,
        },
    );
    generated.push(name);
}

fn component_name(p: &Particle) -> String {
    match &p.term {
        Term::Element { name, .. } | Term::ElementRef(name) | Term::GroupRef(name) => name.clone(),
        Term::Choice(children) => {
            let names: Vec<String> = children.iter().map(component_name).collect();
            names.join("OR")
        }
        Term::Sequence(children) | Term::All(children) => {
            let names: Vec<String> = children.iter().map(component_name).collect();
            synthesized_sequence_name(&names)
        }
    }
}

/// Renders a particle in the compact notation used by tests and docs
/// (`(shipTo, billTo, comment?, items)`).
pub fn render_particle(p: &Particle) -> String {
    let inner = match &p.term {
        Term::Element { name, .. } => name.clone(),
        Term::ElementRef(name) => format!("ref:{name}"),
        Term::GroupRef(name) => format!("group:{name}"),
        Term::Sequence(children) | Term::All(children) => {
            let parts: Vec<String> = children.iter().map(render_particle).collect();
            format!("({})", parts.join(", "))
        }
        Term::Choice(children) => {
            let parts: Vec<String> = children.iter().map(render_particle).collect();
            format!("({})", parts.join(" | "))
        }
    };
    match (p.occurs.min, p.occurs.max) {
        (1, Some(1)) => inner,
        (0, Some(1)) => format!("{inner}?"),
        (0, None) => format!("{inner}*"),
        (1, None) => format!("{inner}+"),
        (min, Some(max)) => format!("{inner}{{{min},{max}}}"),
        (min, None) => format!("{inner}{{{min},}}"),
    }
}
