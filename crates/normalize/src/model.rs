//! The V-DOM interface model: the target of the paper's transformation
//! rules 1–8 (Sect. 3), independent of any concrete output language.
//!
//! The `codegen` crate renders this model either as IDL (reproducing the
//! paper's Figs. 5–6 and Appendix A) or as Rust types (the actual
//! compile-time guarantee in this reproduction).

use schema::BuiltinType;

/// The kind of a generated interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterfaceKind {
    /// One per element declaration (rule 1): `purchaseOrderElement`.
    Element,
    /// One per type definition (rule 2): `PurchaseOrderTypeType`.
    Type,
    /// One per (named or generated) model group (rule 3):
    /// `PurchaseOrderTypeCC1Group`, `AddressGroup`.
    Group,
    /// A named simple-type restriction (rule 8): `SKU: string`.
    SimpleRestriction,
}

/// The type of a generated field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldType {
    /// Another generated interface, by name.
    Interface(String),
    /// A primitive (a built-in simple type).
    Primitive(BuiltinType),
    /// The generic list interface instantiated at an inner type (rule 5).
    List(Box<FieldType>),
}

impl FieldType {
    /// The IDL rendering of this field type (paper's notation).
    pub fn idl(&self) -> String {
        match self {
            FieldType::Interface(n) => n.clone(),
            FieldType::Primitive(b) => idl_primitive(*b).to_string(),
            FieldType::List(inner) => format!("list<{}>", inner.idl()),
        }
    }

    /// The Rust rendering of this field type.
    pub fn rust(&self) -> String {
        match self {
            FieldType::Interface(n) => n.clone(),
            FieldType::Primitive(b) => rust_primitive(*b).to_string(),
            FieldType::List(inner) => format!("Vec<{}>", inner.rust()),
        }
    }
}

/// The IDL primitive name of a built-in (paper's `string`, `decimal` …).
pub fn idl_primitive(b: BuiltinType) -> &'static str {
    use BuiltinType::*;
    match b {
        Boolean => "boolean",
        Decimal => "decimal",
        Integer | NonPositiveInteger | NegativeInteger | NonNegativeInteger | PositiveInteger
        | Long | Int | Short | Byte | UnsignedLong | UnsignedInt | UnsignedShort | UnsignedByte => {
            b.name()
        }
        Float => "float",
        Double => "double",
        Date => "Date",
        DateTime => "DateTime",
        Time => "Time",
        NmToken => "NMToken",
        _ => "string",
    }
}

/// The Rust type a built-in maps to in generated code.
pub fn rust_primitive(b: BuiltinType) -> &'static str {
    use BuiltinType::*;
    match b {
        Boolean => "bool",
        Long | Int | Short | Byte => "i64",
        UnsignedLong | UnsignedInt | UnsignedShort | UnsignedByte => "u64",
        Float | Double => "f64",
        // decimal/integer keep exactness; dates keep lexical form — both
        // are validated, schema-typed strings in generated code
        _ => "String",
    }
}

/// One generated field (the paper's IDL `attribute` declarations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name (`shipTo`, `PurchaseOrderTypeCC1`, `orderDate`).
    pub name: String,
    /// Field type.
    pub ty: FieldType,
    /// `minOccurs="0"` on the particle, or `use` ≠ required on an
    /// attribute: the field may be absent.
    pub optional: bool,
    /// Whether the field came from an XML attribute (vs. a child
    /// element); drives serialization in generated code.
    pub from_attribute: bool,
    /// Occurrence bounds for list fields `(min, max)`; `None` for
    /// non-list fields.
    pub bounds: Option<(u32, Option<u32>)>,
    /// Whether this field is the element's *character content* (simple
    /// or text-only mixed content) rather than a child element; it
    /// serializes as raw text.
    pub char_content: bool,
}

impl Field {
    /// An element-derived field occurring exactly once.
    pub fn element(name: impl Into<String>, ty: FieldType) -> Field {
        Field {
            name: name.into(),
            ty,
            optional: false,
            from_attribute: false,
            bounds: None,
            char_content: false,
        }
    }

    /// The character-content field of a simple-content or text-only
    /// mixed type.
    pub fn char_content(ty: FieldType) -> Field {
        Field {
            name: "content".to_string(),
            ty,
            optional: false,
            from_attribute: false,
            bounds: None,
            char_content: true,
        }
    }

    /// An attribute-derived field.
    pub fn attribute(name: impl Into<String>, ty: FieldType, required: bool) -> Field {
        Field {
            name: name.into(),
            ty,
            optional: !required,
            from_attribute: true,
            bounds: None,
            char_content: false,
        }
    }
}

/// One generated interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interface {
    /// Interface name (`purchaseOrderElement`, `PurchaseOrderTypeType`…).
    pub name: String,
    /// What the interface stands for.
    pub kind: InterfaceKind,
    /// Supertypes: choice-group membership, type extension/restriction,
    /// substitution groups, simple-type bases — all become inheritance
    /// (paper Sect. 3).
    pub extends: Vec<String>,
    /// The interface's fields.
    pub fields: Vec<Field>,
    /// Name of the owning interface for nested rendering (Appendix A
    /// nests local element interfaces inside their type interface).
    pub owner: Option<String>,
    /// Abstract elements/types yield abstract interfaces.
    pub is_abstract: bool,
    /// For [`InterfaceKind::Element`]: the XML tag name; for
    /// [`InterfaceKind::Type`]: the schema type name.
    pub xml_name: String,
    /// For choice groups: the alternatives, in declaration order (used by
    /// the union-mode renderer reproducing Fig. 5).
    pub choice_alternatives: Vec<String>,
    /// For [`InterfaceKind::Type`]: whether the content model is mixed
    /// (interleaved character data allowed).
    pub mixed: bool,
}

impl Interface {
    /// Creates an interface with no fields or supertypes.
    pub fn new(name: impl Into<String>, kind: InterfaceKind, xml_name: impl Into<String>) -> Self {
        Interface {
            name: name.into(),
            kind,
            extends: Vec::new(),
            fields: Vec::new(),
            owner: None,
            is_abstract: false,
            xml_name: xml_name.into(),
            choice_alternatives: Vec::new(),
            mixed: false,
        }
    }
}

/// The complete generated model for one schema.
#[derive(Debug, Clone, Default)]
pub struct InterfaceModel {
    /// All interfaces, in deterministic order: top-level elements, then
    /// types (each followed by its nested interfaces), then groups.
    pub interfaces: Vec<Interface>,
}

impl InterfaceModel {
    /// Looks up an interface by name.
    pub fn interface(&self, name: &str) -> Option<&Interface> {
        self.interfaces.iter().find(|i| i.name == name)
    }

    /// The interfaces owned by (nested in) `owner`.
    pub fn nested_in<'a>(&'a self, owner: &'a str) -> impl Iterator<Item = &'a Interface> + 'a {
        self.interfaces
            .iter()
            .filter(move |i| i.owner.as_deref() == Some(owner))
    }

    /// Top-level interfaces (no owner).
    pub fn top_level(&self) -> impl Iterator<Item = &Interface> {
        self.interfaces.iter().filter(|i| i.owner.is_none())
    }

    /// All interfaces that (directly) extend `name`.
    pub fn subtypes_of<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Interface> + 'a {
        self.interfaces
            .iter()
            .filter(move |i| i.extends.iter().any(|e| e == name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_type_renderings() {
        let t = FieldType::List(Box::new(FieldType::Interface("itemElement".into())));
        assert_eq!(t.idl(), "list<itemElement>");
        assert_eq!(t.rust(), "Vec<itemElement>");
        assert_eq!(FieldType::Primitive(BuiltinType::Decimal).idl(), "decimal");
        assert_eq!(FieldType::Primitive(BuiltinType::Decimal).rust(), "String");
        assert_eq!(FieldType::Primitive(BuiltinType::Boolean).rust(), "bool");
    }

    #[test]
    fn model_lookups() {
        let mut m = InterfaceModel::default();
        let mut a = Interface::new("AType", InterfaceKind::Type, "A");
        a.fields.push(Field::element(
            "x",
            FieldType::Primitive(BuiltinType::String),
        ));
        let mut b = Interface::new("bElement", InterfaceKind::Element, "b");
        b.owner = Some("AType".into());
        b.extends.push("AType".into());
        m.interfaces.push(a);
        m.interfaces.push(b);

        assert!(m.interface("AType").is_some());
        assert_eq!(m.nested_in("AType").count(), 1);
        assert_eq!(m.top_level().count(), 1);
        assert_eq!(m.subtypes_of("AType").count(), 1);
    }
}
