//! Builds the V-DOM interface model from a schema: the paper's
//! transformation rules 1–8 (Sect. 3), using the merged naming scheme
//! (inherited names for choice groups, synthesized names for sequences
//! and lists).

use schema::{ContentModel, Occurs, Particle, Schema, Term, TypeDef, TypeRef};

use crate::model::{Field, FieldType, Interface, InterfaceKind, InterfaceModel};
use crate::naming::{synthesized_list_name, synthesized_sequence_name, NamePath};

/// An error while building the interface model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A reference did not resolve (the schema should be checked first).
    Unresolved(String),
    /// A structure outside the transformation's domain.
    Unsupported(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Unresolved(n) => write!(f, "unresolved reference {n:?}"),
            BuildError::Unsupported(m) => write!(f, "unsupported structure: {m}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds the interface model for `schema` (rules 1–8 of Sect. 3).
pub fn build_model(schema: &Schema) -> Result<InterfaceModel, BuildError> {
    let mut b = Builder {
        schema,
        model: InterfaceModel::default(),
    };
    b.run()?;
    Ok(b.model)
}

/// The interface name of a global element declaration (rule 1).
pub fn element_interface_name(element: &str) -> String {
    format!("{element}Element")
}

/// The interface name of a complex type definition (rule 2).
pub fn type_interface_name(type_name: &str) -> String {
    format!("{type_name}Type")
}

/// The interface name of a model group (rule 3). Explicitly named groups
/// keep their name; generated names get a `Group` suffix.
pub fn group_interface_name(group_name: &str, generated: bool) -> String {
    if generated {
        format!("{group_name}Group")
    } else {
        group_name.to_string()
    }
}

struct Builder<'a> {
    schema: &'a Schema,
    model: InterfaceModel,
}

impl<'a> Builder<'a> {
    fn run(&mut self) -> Result<(), BuildError> {
        // Rule 1: global element declarations → element interfaces.
        for decl in self.schema.elements.values() {
            let mut iface = Interface::new(
                element_interface_name(&decl.name),
                InterfaceKind::Element,
                decl.name.clone(),
            );
            iface.is_abstract = decl.is_abstract;
            if let Some(head) = &decl.substitution_group {
                iface.extends.push(element_interface_name(head));
            }
            iface.fields.push(Field::element(
                "content",
                self.field_type_of(&decl.type_ref)?,
            ));
            self.model.interfaces.push(iface);
        }

        // Rules 2 & 8: type definitions.
        for def in self.schema.types.values() {
            match def {
                TypeDef::Simple(s) => {
                    let mut iface = Interface::new(
                        s.name.clone(),
                        InterfaceKind::SimpleRestriction,
                        s.name.clone(),
                    );
                    iface.extends.push(match &s.base {
                        TypeRef::Builtin(b) => crate::model::idl_primitive(*b).to_string(),
                        TypeRef::Named(n) | TypeRef::Anonymous(n) => n.clone(),
                    });
                    self.model.interfaces.push(iface);
                }
                TypeDef::Complex(ct) => {
                    let iface_name = type_interface_name(&ct.name);
                    let mut iface =
                        Interface::new(iface_name.clone(), InterfaceKind::Type, ct.name.clone());
                    iface.is_abstract = ct.is_abstract;
                    iface.mixed = matches!(ct.content, ContentModel::Mixed(_));
                    if let Some(d) = &ct.derivation {
                        iface.extends.push(type_interface_name(&d.base));
                    }
                    // attributes (rule 7), own + attribute groups
                    let mut attr_uses = ct.attributes.clone();
                    for g in &ct.attribute_groups {
                        let group = self
                            .schema
                            .attribute_groups
                            .get(g)
                            .ok_or_else(|| BuildError::Unresolved(g.clone()))?;
                        attr_uses.extend(group.attributes.iter().cloned());
                    }
                    // content (rules 4–6)
                    let mut fields = Vec::new();
                    match &ct.content {
                        ContentModel::Empty => {}
                        ContentModel::Simple(simple) => {
                            fields.push(Field::char_content(self.field_type_of(simple)?));
                        }
                        ContentModel::ElementOnly(p) => {
                            let path = NamePath::root(&ct.name);
                            self.fields_of_particle(p, &path, &iface_name, &mut fields)?;
                        }
                        ContentModel::Mixed(p) => {
                            if particle_is_empty(p) {
                                // text-only mixed content (e.g. WML's
                                // option): a plain string content field
                                fields.push(Field::char_content(FieldType::Primitive(
                                    schema::BuiltinType::String,
                                )));
                            } else {
                                let path = NamePath::root(&ct.name);
                                self.fields_of_particle(p, &path, &iface_name, &mut fields)?;
                            }
                        }
                    }
                    for a in &attr_uses {
                        fields.push(Field::attribute(
                            a.name.clone(),
                            self.field_type_of(&a.type_ref)?,
                            a.required,
                        ));
                    }
                    iface.fields = fields;
                    self.model.interfaces.push(iface);
                }
            }
        }

        // Rule 3: named model groups.
        for group in self.schema.groups.values() {
            let gname = group_interface_name(&group.name, false);
            self.group_interface(&group.particle, gname, None)?;
        }

        // deterministic order: elements, types (with their nested), groups
        self.model.interfaces.sort_by(|a, b| {
            let rank = |i: &Interface| match i.kind {
                InterfaceKind::Element if i.owner.is_none() => 0,
                InterfaceKind::Type => 1,
                InterfaceKind::SimpleRestriction => 3,
                _ => 2,
            };
            (rank(a), a.owner.clone(), a.name.clone()).cmp(&(
                rank(b),
                b.owner.clone(),
                b.name.clone(),
            ))
        });
        Ok(())
    }

    /// Rule 4 (sequences → one field per component) applied to the top
    /// particle of a complex type, recursing per rules 5 (lists) and 6
    /// (choices).
    fn fields_of_particle(
        &mut self,
        p: &Particle,
        path: &NamePath,
        owner: &str,
        fields: &mut Vec<Field>,
    ) -> Result<(), BuildError> {
        // A non-default occurrence on the whole content expression wraps
        // everything in a list field.
        if p.occurs.is_list() {
            let (name, ty) = self.component_field(p, path, owner, true)?;
            fields.push(Field {
                name,
                ty: FieldType::List(Box::new(ty)),
                optional: false,
                from_attribute: false,
                bounds: Some((p.occurs.min, p.occurs.max)),
                char_content: false,
            });
            return Ok(());
        }
        match &p.term {
            Term::Sequence(children) | Term::All(children) => {
                for (i, child) in children.iter().enumerate() {
                    let child_path = path.child(i as u32 + 1);
                    self.component_to_field(child, &child_path, owner, fields)?;
                }
                Ok(())
            }
            // a bare choice/element/group as the whole content model
            _ => self.component_to_field(p, &path.child(1), owner, fields),
        }
    }

    /// Transforms one component of a sequence into a field.
    fn component_to_field(
        &mut self,
        p: &Particle,
        path: &NamePath,
        owner: &str,
        fields: &mut Vec<Field>,
    ) -> Result<(), BuildError> {
        let is_list = p.occurs.is_list();
        let (name, ty) = self.component_field(p, path, owner, is_list)?;
        let field = if is_list {
            Field {
                name,
                ty: FieldType::List(Box::new(ty)),
                optional: false,
                from_attribute: false,
                bounds: Some((p.occurs.min, p.occurs.max)),
                char_content: false,
            }
        } else {
            Field {
                name,
                ty,
                optional: p.occurs.min == 0,
                from_attribute: false,
                bounds: None,
                char_content: false,
            }
        };
        fields.push(field);
        Ok(())
    }

    /// The (field name, field type) of a component, creating nested
    /// interfaces as needed.
    fn component_field(
        &mut self,
        p: &Particle,
        path: &NamePath,
        owner: &str,
        for_list: bool,
    ) -> Result<(String, FieldType), BuildError> {
        match &p.term {
            Term::Element { name, type_ref } => {
                let iface_name = element_interface_name(name);
                // local element interface, nested in the owning type
                if self.model.interface(&iface_name).is_none()
                    || !self.nested_exists(owner, &iface_name)
                {
                    self.ensure_local_element(owner, name, type_ref, None)?;
                }
                Ok((name.clone(), FieldType::Interface(iface_name)))
            }
            Term::ElementRef(name) => {
                if !self.schema.elements.contains_key(name) {
                    return Err(BuildError::Unresolved(name.clone()));
                }
                Ok((
                    name.clone(),
                    FieldType::Interface(element_interface_name(name)),
                ))
            }
            Term::Choice(alternatives) => {
                // Rule 6 with inherited naming.
                let group_name = path.inherited_name();
                let iface_name = group_interface_name(&group_name, true);
                self.choice_group(alternatives, path, owner, iface_name.clone())?;
                Ok((group_name, FieldType::Interface(iface_name)))
            }
            Term::Sequence(children) | Term::All(children) => {
                // Synthesized naming for nested sequences.
                let component_names: Vec<String> = children
                    .iter()
                    .map(|c| self.component_name(c, path))
                    .collect();
                let group_name = synthesized_sequence_name(&component_names);
                let group_name = if for_list && children.len() == 1 {
                    synthesized_list_name(&component_names[0])
                } else {
                    group_name
                };
                let iface_name = group_interface_name(&group_name, true);
                if self.model.interface(&iface_name).is_none() {
                    let mut iface = Interface::new(
                        iface_name.clone(),
                        InterfaceKind::Group,
                        group_name.clone(),
                    );
                    iface.owner = Some(owner.to_string());
                    let mut inner_fields = Vec::new();
                    for (i, child) in children.iter().enumerate() {
                        let child_path = path.child(i as u32 + 1);
                        self.component_to_field(child, &child_path, owner, &mut inner_fields)?;
                    }
                    iface.fields = inner_fields;
                    self.model.interfaces.push(iface);
                }
                Ok((group_name, FieldType::Interface(iface_name)))
            }
            Term::GroupRef(name) => {
                let group = self
                    .schema
                    .groups
                    .get(name)
                    .ok_or_else(|| BuildError::Unresolved(name.clone()))?;
                let iface_name = group_interface_name(&group.name, false);
                Ok((name.clone(), FieldType::Interface(iface_name)))
            }
        }
    }

    /// A short name for a component, used by synthesized naming.
    fn component_name(&self, p: &Particle, path: &NamePath) -> String {
        match &p.term {
            Term::Element { name, .. } | Term::ElementRef(name) => name.clone(),
            Term::GroupRef(name) => name.clone(),
            Term::Choice(_) => path.inherited_name(),
            Term::Sequence(children) | Term::All(children) => {
                let names: Vec<String> = children
                    .iter()
                    .map(|c| self.component_name(c, path))
                    .collect();
                synthesized_sequence_name(&names)
            }
        }
    }

    /// Builds the choice-group super-interface plus alternative
    /// interfaces extending it (rule 6, Fig. 6).
    fn choice_group(
        &mut self,
        alternatives: &[Particle],
        path: &NamePath,
        owner: &str,
        iface_name: String,
    ) -> Result<(), BuildError> {
        if self.model.interface(&iface_name).is_some() {
            return Ok(());
        }
        let mut group = Interface::new(
            iface_name.clone(),
            InterfaceKind::Group,
            path.inherited_name(),
        );
        group.owner = Some(owner.to_string());
        let mut alt_names = Vec::new();
        // placeholder position so the group appears before its members
        let group_index = self.model.interfaces.len();
        self.model.interfaces.push(group);
        for (i, alt) in alternatives.iter().enumerate() {
            let alt_path = path.child(i as u32 + 1);
            match &alt.term {
                Term::Element { name, type_ref } => {
                    self.ensure_local_element(owner, name, type_ref, Some(&iface_name))?;
                    alt_names.push(element_interface_name(name));
                }
                Term::ElementRef(name) => {
                    // the global interface gains the group as supertype
                    let global = element_interface_name(name);
                    if let Some(iface) = self.model.interfaces.iter_mut().find(|i| i.name == global)
                    {
                        if !iface.extends.contains(&iface_name) {
                            iface.extends.push(iface_name.clone());
                        }
                    } else {
                        return Err(BuildError::Unresolved(name.clone()));
                    }
                    alt_names.push(global);
                }
                _ => {
                    // nested group alternative: give it a synthesized or
                    // inherited interface extending the choice group
                    let (_, ty) = self.component_field(alt, &alt_path, owner, false)?;
                    if let FieldType::Interface(n) = ty {
                        if let Some(iface) = self.model.interfaces.iter_mut().find(|i| i.name == n)
                        {
                            if !iface.extends.contains(&iface_name) {
                                iface.extends.push(iface_name.clone());
                            }
                        }
                        alt_names.push(n);
                    }
                }
            }
        }
        self.model.interfaces[group_index].choice_alternatives = alt_names;
        Ok(())
    }

    /// Builds a named group's interface (rule 3): choice groups become
    /// supertype markers, sequence groups carry fields.
    fn group_interface(
        &mut self,
        particle: &Particle,
        iface_name: String,
        owner: Option<&str>,
    ) -> Result<(), BuildError> {
        let path = NamePath::root(iface_name.trim_end_matches("Group"));
        match &particle.term {
            Term::Choice(alts) => {
                let owner_name = owner.unwrap_or("");
                self.choice_group(alts, &path, owner_name, iface_name.clone())?;
                if owner.is_none() {
                    // detach from the placeholder owner
                    for iface in &mut self.model.interfaces {
                        if iface.owner.as_deref() == Some("") {
                            iface.owner = None;
                        }
                    }
                }
                Ok(())
            }
            _ => {
                let mut iface =
                    Interface::new(iface_name.clone(), InterfaceKind::Group, iface_name.clone());
                iface.owner = owner.map(str::to_string);
                let mut fields = Vec::new();
                self.fields_of_particle(particle, &path, &iface_name, &mut fields)?;
                iface.fields = fields;
                self.model.interfaces.push(iface);
                Ok(())
            }
        }
    }

    fn nested_exists(&self, owner: &str, name: &str) -> bool {
        self.model
            .interfaces
            .iter()
            .any(|i| i.name == name && i.owner.as_deref() == Some(owner))
    }

    /// Creates the nested interface for a local element declaration,
    /// optionally extending a choice-group interface.
    fn ensure_local_element(
        &mut self,
        owner: &str,
        name: &str,
        type_ref: &TypeRef,
        extends: Option<&str>,
    ) -> Result<(), BuildError> {
        let iface_name = element_interface_name(name);
        if let Some(existing) = self
            .model
            .interfaces
            .iter_mut()
            .find(|i| i.name == iface_name)
        {
            if let Some(sup) = extends {
                if !existing.extends.contains(&sup.to_string()) {
                    existing.extends.push(sup.to_string());
                }
            }
            return Ok(());
        }
        let mut iface = Interface::new(iface_name, InterfaceKind::Element, name.to_string());
        iface.owner = Some(owner.to_string());
        if let Some(sup) = extends {
            iface.extends.push(sup.to_string());
        }
        iface
            .fields
            .push(Field::element("content", self.field_type_of(type_ref)?));
        self.model.interfaces.push(iface);
        Ok(())
    }

    /// The field type denoting values of `type_ref` (rules 2 & 8).
    fn field_type_of(&self, type_ref: &TypeRef) -> Result<FieldType, BuildError> {
        Ok(match type_ref {
            TypeRef::Builtin(b) => FieldType::Primitive(*b),
            TypeRef::Named(n) | TypeRef::Anonymous(n) => match self.schema.types.get(n) {
                Some(TypeDef::Simple(_)) => FieldType::Interface(n.clone()),
                Some(TypeDef::Complex(_)) => FieldType::Interface(type_interface_name(n)),
                None => return Err(BuildError::Unresolved(n.clone())),
            },
        })
    }
}

/// Convenience wrapper: [`Occurs`]-aware optionality used by tests.
pub fn occurs_is_optional(o: Occurs) -> bool {
    o.min == 0 && !o.is_list()
}

/// Whether a particle contains no element particles at all (an empty
/// sequence, as in mixed text-only types).
fn particle_is_empty(p: &Particle) -> bool {
    match &p.term {
        Term::Element { .. } | Term::ElementRef(_) => false,
        Term::GroupRef(_) => false,
        Term::Sequence(children) | Term::Choice(children) | Term::All(children) => {
            children.iter().all(particle_is_empty)
        }
    }
}
