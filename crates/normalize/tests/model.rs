//! Tests of the interface-model builder and normal form against the
//! paper's Sect. 3 examples, Fig. 6 and Appendix A.

use normalize::{build_model, normalize_schema, render_particle, FieldType, InterfaceKind};
use schema::corpus::*;
use schema::parse_schema;

#[test]
fn purchase_order_interfaces_exist() {
    let schema = parse_schema(PURCHASE_ORDER_XSD).unwrap();
    let model = build_model(&schema).unwrap();
    // Appendix A names
    for name in [
        "purchaseOrderElement",
        "commentElement",
        "PurchaseOrderTypeType",
        "USAddressType",
        "ItemsType",
        "SKU",
        "shipToElement",
        "billToElement",
        "itemsElement",
        "nameElement",
        "zipElement",
    ] {
        assert!(model.interface(name).is_some(), "{name} missing");
    }
}

#[test]
fn purchase_order_type_fields_match_appendix_a() {
    let schema = parse_schema(PURCHASE_ORDER_XSD).unwrap();
    let model = build_model(&schema).unwrap();
    let po = model.interface("PurchaseOrderTypeType").unwrap();
    let field_names: Vec<&str> = po.fields.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(
        field_names,
        ["shipTo", "billTo", "comment", "items", "orderDate"]
    );
    // comment is optional (minOccurs="0")
    let comment = po.fields.iter().find(|f| f.name == "comment").unwrap();
    assert!(comment.optional);
    assert_eq!(comment.ty, FieldType::Interface("commentElement".into()));
    // orderDate is an attribute of type date
    let od = po.fields.iter().find(|f| f.name == "orderDate").unwrap();
    assert!(od.from_attribute);
    assert_eq!(od.ty, FieldType::Primitive(schema::BuiltinType::Date));
}

#[test]
fn items_type_has_list_field() {
    let schema = parse_schema(PURCHASE_ORDER_XSD).unwrap();
    let model = build_model(&schema).unwrap();
    let items = model.interface("ItemsType").unwrap();
    let item = &items.fields[0];
    assert_eq!(item.name, "item");
    assert!(matches!(&item.ty, FieldType::List(inner)
        if **inner == FieldType::Interface("itemElement".into())));
    assert_eq!(item.bounds, Some((0, None)));
}

#[test]
fn sku_is_simple_restriction_of_string() {
    let schema = parse_schema(PURCHASE_ORDER_XSD).unwrap();
    let model = build_model(&schema).unwrap();
    let sku = model.interface("SKU").unwrap();
    assert_eq!(sku.kind, InterfaceKind::SimpleRestriction);
    assert_eq!(sku.extends, ["string"]);
}

#[test]
fn choice_group_gets_inherited_name_and_inheritance() {
    // the Fig. 6 reproduction
    let schema = parse_schema(CHOICE_PO_XSD).unwrap();
    let model = build_model(&schema).unwrap();
    let group = model.interface("PurchaseOrderTypeCC1Group").unwrap();
    assert_eq!(group.kind, InterfaceKind::Group);
    assert_eq!(
        group.choice_alternatives,
        ["singAddrElement", "twoAddrElement"]
    );
    // alternatives extend the group interface
    let sing = model.interface("singAddrElement").unwrap();
    assert!(sing
        .extends
        .contains(&"PurchaseOrderTypeCC1Group".to_string()));
    let two = model.interface("twoAddrElement").unwrap();
    assert!(two
        .extends
        .contains(&"PurchaseOrderTypeCC1Group".to_string()));
    // the type's field uses the group as its type (Fig. 6 line 6)
    let po = model.interface("PurchaseOrderTypeType").unwrap();
    let choice_field = &po.fields[0];
    assert_eq!(choice_field.name, "PurchaseOrderTypeCC1");
    assert_eq!(
        choice_field.ty,
        FieldType::Interface("PurchaseOrderTypeCC1Group".into())
    );
}

#[test]
fn evolution_keeps_choice_name_stable() {
    // Sect. 3: adding multAddr must not change the generated names
    let before = build_model(&parse_schema(CHOICE_PO_XSD).unwrap()).unwrap();
    let after = build_model(&parse_schema(CHOICE_PO_EVOLVED_XSD).unwrap()).unwrap();
    assert!(before.interface("PurchaseOrderTypeCC1Group").is_some());
    let evolved = after.interface("PurchaseOrderTypeCC1Group").unwrap();
    assert_eq!(
        evolved.choice_alternatives,
        ["singAddrElement", "twoAddrElement", "multAddrElement"]
    );
    // field names in the owning type unchanged
    let f_before: Vec<_> = before
        .interface("PurchaseOrderTypeType")
        .unwrap()
        .fields
        .iter()
        .map(|f| f.name.clone())
        .collect();
    let f_after: Vec<_> = after
        .interface("PurchaseOrderTypeType")
        .unwrap()
        .fields
        .iter()
        .map(|f| f.name.clone())
        .collect();
    assert_eq!(f_before, f_after);
}

#[test]
fn extension_becomes_inheritance() {
    let schema = parse_schema(ADDRESS_EXTENSION_XSD).unwrap();
    let model = build_model(&schema).unwrap();
    let us = model.interface("USAddressType").unwrap();
    assert_eq!(us.extends, ["AddressType"]);
    // own fields only (state, zip), base fields stay on AddressType
    let names: Vec<&str> = us.fields.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, ["state", "zip"]);
    let base = model.interface("AddressType").unwrap();
    let base_names: Vec<&str> = base.fields.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(base_names, ["name", "street", "city"]);
}

#[test]
fn substitution_groups_become_inheritance() {
    let schema = parse_schema(SUBSTITUTION_XSD).unwrap();
    let model = build_model(&schema).unwrap();
    let ship = model.interface("shipCommentElement").unwrap();
    assert!(ship.extends.contains(&"commentElement".to_string()));
    let cust = model.interface("customerCommentElement").unwrap();
    assert!(cust.extends.contains(&"commentElement".to_string()));
}

#[test]
fn named_group_yields_named_interface() {
    // Sect. 3: "this declaration yields a named interface AddressGroup
    // as a super type of singAddrElement/twoAddrElement"
    let schema = parse_schema(NAMED_GROUP_XSD).unwrap();
    let model = build_model(&schema).unwrap();
    let group = model.interface("AddressGroup").unwrap();
    assert_eq!(group.kind, InterfaceKind::Group);
    let sing = model.interface("singAddrElement").unwrap();
    assert!(sing.extends.contains(&"AddressGroup".to_string()));
}

#[test]
fn normal_form_lifts_nested_choice() {
    let schema = parse_schema(CHOICE_PO_XSD).unwrap();
    let nf = normalize_schema(&schema);
    assert_eq!(nf.generated_groups, ["PurchaseOrderTypeCC1"]);
    let group = nf.schema.groups.get("PurchaseOrderTypeCC1").unwrap();
    assert_eq!(render_particle(&group.particle), "(singAddr | twoAddr)");
    // the type now references the group
    match nf.schema.type_def("PurchaseOrderType").unwrap() {
        schema::TypeDef::Complex(ct) => match &ct.content {
            schema::ContentModel::ElementOnly(p) => {
                assert_eq!(
                    render_particle(p),
                    "(group:PurchaseOrderTypeCC1, ref:comment?, items)"
                );
            }
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
    // normalized schema still checks and accepts the same language
    nf.schema.check().unwrap();
    let before = schema.content_expr("PurchaseOrderType").unwrap();
    let after = nf.schema.content_expr("PurchaseOrderType").unwrap();
    let da = automata::ContentDfa::compile(&before).unwrap();
    let db = automata::ContentDfa::compile(&after).unwrap();
    for children in [
        vec!["singAddr", "comment", "items"],
        vec!["twoAddr", "items"],
        vec!["singAddr", "twoAddr", "items"],
        vec!["items"],
    ] {
        assert_eq!(
            da.accepts(children.iter().copied()),
            db.accepts(children.iter().copied()),
            "{children:?}"
        );
    }
}

#[test]
fn normal_form_is_idempotent() {
    let schema = parse_schema(CHOICE_PO_XSD).unwrap();
    let once = normalize_schema(&schema);
    let twice = normalize_schema(&once.schema);
    assert!(twice.generated_groups.is_empty());
}

#[test]
fn already_flat_schema_unchanged() {
    let schema = parse_schema(PURCHASE_ORDER_XSD).unwrap();
    let nf = normalize_schema(&schema);
    assert!(nf.generated_groups.is_empty());
}

#[test]
fn wml_model_builds() {
    let schema = parse_schema(WML_XSD).unwrap();
    let model = build_model(&schema).unwrap();
    for name in [
        "wmlElement",
        "WmlTypeType",
        "CardTypeType",
        "PTypeType",
        "SelectTypeType",
        "optionElement",
    ] {
        assert!(model.interface(name).is_some(), "{name} missing");
    }
    // select has a required name attribute
    let select = model.interface("SelectTypeType").unwrap();
    let name_attr = select.fields.iter().find(|f| f.name == "name").unwrap();
    assert!(name_attr.from_attribute);
    assert!(!name_attr.optional);
}
