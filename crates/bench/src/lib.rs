//! Shared helpers for the benchmark targets (experiments B1–B7 of
//! DESIGN.md). The benches themselves live in `benches/`.

use schema::CompiledSchema;

/// The compiled purchase-order schema, built once per bench process.
pub fn po_schema() -> CompiledSchema {
    CompiledSchema::parse(schema::corpus::PURCHASE_ORDER_XSD).expect("corpus schema")
}

/// The compiled WML schema.
pub fn wml_schema() -> CompiledSchema {
    CompiledSchema::parse(schema::corpus::WML_XSD).expect("corpus schema")
}

/// The item counts swept by the generation benches.
pub const ITEM_SIZES: &[usize] = &[1, 10, 100, 1000];
