//! **B4 — tooling cost.** The V-DOM/P-XML approach introduces two tools:
//! the interface generator (schema → interfaces) and the preprocessor
//! (constructor → code). Both must be fast enough to sit in a build. We
//! measure schema compilation, interface-model building, IDL/Rust
//! rendering, and template check/emit throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::po_schema;
use pxml::{Template, TypeEnv};

/// Builds a synthetic schema with `n` complex types to sweep generator
/// scaling.
fn synthetic_schema(n: usize) -> String {
    let mut out = String::from("<xsd:schema xmlns:xsd=\"http://www.w3.org/2001/XMLSchema\">\n");
    for i in 0..n {
        out.push_str(&format!(
            "<xsd:element name=\"record{i}\" type=\"Record{i}\"/>\n\
             <xsd:complexType name=\"Record{i}\">\n<xsd:sequence>\n\
             <xsd:element name=\"id{i}\" type=\"xsd:string\"/>\n\
             <xsd:element name=\"value{i}\" type=\"xsd:decimal\" minOccurs=\"0\"/>\n\
             <xsd:element name=\"note{i}\" type=\"xsd:string\" minOccurs=\"0\" maxOccurs=\"unbounded\"/>\n\
             </xsd:sequence>\n<xsd:attribute name=\"key{i}\" type=\"xsd:NMTOKEN\" use=\"required\"/>\n\
             </xsd:complexType>\n"
        ));
    }
    out.push_str("</xsd:schema>\n");
    out
}

fn tooling(c: &mut Criterion) {
    let mut group = c.benchmark_group("B4-tooling");
    group.sample_size(20);

    // schema → compiled (parse + check + DFAs on demand)
    let po_src = schema::corpus::PURCHASE_ORDER_XSD;
    group.bench_function("schema-compile/purchase-order", |b| {
        b.iter(|| black_box(schema::CompiledSchema::parse(po_src).unwrap()))
    });

    for n in [10usize, 50, 200] {
        let src = synthetic_schema(n);
        group.bench_function(format!("schema-compile/synthetic-{n}"), |b| {
            b.iter(|| black_box(schema::CompiledSchema::parse(&src).unwrap()))
        });
        let parsed = schema::parse_schema(&src).unwrap();
        group.bench_function(format!("codegen-rust/synthetic-{n}"), |b| {
            b.iter(|| {
                let model = normalize::build_model(&parsed).unwrap();
                black_box(codegen::render_rust(
                    &model,
                    &codegen::RustGenOptions::default(),
                ))
            })
        });
    }

    // interface generation for the paper schema (IDL + Rust)
    let parsed = schema::parse_schema(po_src).unwrap();
    group.bench_function("codegen-idl/purchase-order", |b| {
        b.iter(|| {
            let model = normalize::build_model(&parsed).unwrap();
            black_box(codegen::render_idl(&model))
        })
    });

    // preprocessor: check and emit for the Sect. 4 constructor
    let compiled = po_schema();
    let template = Template::parse(
        "<shipTo country=\"US\">$n$<street>123 Maple Street</street>\
         <city>Mill Valley</city><state>CA</state><zip>90952</zip></shipTo>",
    )
    .unwrap();
    let env = TypeEnv::new().element("n", "name");
    group.bench_function("pxml-check/shipTo", |b| {
        b.iter(|| black_box(pxml::check_template(&compiled, &template, &env).len()))
    });
    group.bench_function("pxml-emit/shipTo", |b| {
        b.iter(|| black_box(pxml::emit_rust(&compiled, &template, &env, "f").unwrap()))
    });
    group.bench_function("pxml-parse/shipTo", |b| {
        b.iter(|| black_box(Template::parse(&template.source).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, tooling);
criterion_main!(benches);
