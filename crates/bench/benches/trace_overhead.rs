//! **B13 — flight-recorder overhead.** The `obs::trace` recorder's
//! contract mirrors B8's: with recording off, an instrumented span site
//! pays one relaxed atomic load (`span_enabled()`) and nothing else; with
//! recording on, each span costs two ring pushes behind a thread-local
//! mutex nobody else contends, plus one wide-event sample per document.
//! This bench runs the B8 streaming-validation workload four ways:
//!
//! * `disabled`   — neither metrics nor recorder on, the shipping default;
//! * `trace`      — recorder only (ring records + wide events, no metrics);
//! * `collector`  — metrics only, the B8 `collector` configuration;
//! * `trace+collector` — both, the xmldiag configuration.
//!
//! Expected shape: `disabled` within noise (<3%) of B8's `disabled`;
//! `trace` a few percent behind (two clock reads and two ring pushes per
//! span, one sampler pass per document); `trace+collector` roughly the
//! sum of both overheads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bench::{po_schema, wml_schema};

fn configure(metrics: bool, trace: bool) {
    obs::shutdown();
    obs::trace::stop();
    if metrics {
        obs::install_collector();
    }
    if trace {
        // big enough that the hot loop never wraps mid-measurement
        obs::trace::start(1 << 16);
    }
    assert_eq!(obs::enabled(), metrics);
    assert_eq!(obs::trace::enabled(), trace);
}

fn trace_overhead(c: &mut Criterion) {
    let po = po_schema();
    let wml = wml_schema();
    let order = webgen::generate_order(17, 1000);
    let po_xml = webgen::render_order_string(&order);
    let data = webgen::DirectoryPageData {
        sub_dirs: (0..512).map(|i| format!("dir{i:04}")).collect(),
        current_dir: "/media/archive".into(),
        parent_dir: "/media".into(),
    };
    let wml_xml = webgen::render_string(&data);

    let mut group = c.benchmark_group("B13-trace-overhead");
    group.sample_size(20);
    let modes = [
        ("disabled", false, false),
        ("trace", false, true),
        ("collector", true, false),
        ("trace+collector", true, true),
    ];
    for (mode, metrics, trace) in modes {
        configure(metrics, trace);
        group.throughput(Throughput::Bytes(po_xml.len() as u64));
        group.bench_with_input(
            BenchmarkId::new(format!("po-streaming-{mode}"), 1000),
            &po_xml,
            |b, xml| b.iter(|| black_box(validator::validate_str_streaming(&po, xml).len())),
        );
        group.throughput(Throughput::Bytes(wml_xml.len() as u64));
        group.bench_with_input(
            BenchmarkId::new(format!("wml-streaming-{mode}"), 512),
            &wml_xml,
            |b, xml| b.iter(|| black_box(validator::validate_str_streaming(&wml, xml).len())),
        );
    }
    obs::trace::stop();
    obs::shutdown();
    group.finish();
}

criterion_group!(benches, trace_overhead);
criterion_main!(benches);
