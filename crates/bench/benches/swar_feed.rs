//! **B12 — SWAR scanning and chunked feed** (group `B12-swar-feed`).
//!
//! Two questions, one bench:
//!
//! * What does the u64 SWAR sweep buy over the byte-at-a-time loop it
//!   replaced? `scan-swar` vs `scan-scalar` run the two classifiers over
//!   the same buffers — an unbroken plain-ASCII run (peak rate), 79-char
//!   LF-terminated prose lines (realistic text), and a rendered 1000-item
//!   purchase order (markup-dense worst case, runs of a few dozen bytes).
//!   The acceptance bar is SWAR ≥ 1.3× scalar on the LF-only text-heavy
//!   inputs.
//! * What does chunked feeding cost against the whole-input borrowed
//!   parse? `feed-chunked` drives the same document through `FeedReader`
//!   in 64 KiB chunks; `whole-borrowed` is the PR 4 baseline path.
//!
//! Before the criterion groups run, a one-shot pass streams a **1 GiB**
//! synthetic purchase order (a repeated `<item>` block between one
//! prefix and one suffix — never materialized in memory) through
//! `FeedReader` alone and through `validate_chunks_streaming`, printing
//! GB/s; EXPERIMENTS.md B12 records those numbers. Peak buffering stays
//! at one token regardless of stream size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

use bench::po_schema;
use limits::Limits;
use xmlparse::scan::{scan_plain, scan_plain_scalar};
use xmlparse::{BorrowedEvent, FeedReader, Reader};

/// Walks a whole buffer with the given classifier the way the reader
/// does: take the plain run, step over the stop byte, repeat.
fn sweep(bytes: &[u8], scan: fn(&[u8], usize, [u8; 2]) -> usize) -> usize {
    let mut pos = 0;
    let mut runs = 0;
    while pos < bytes.len() {
        let next = scan(bytes, pos, [b'<', b']']);
        pos = if next == pos { pos + 1 } else { next };
        runs += 1;
    }
    runs
}

fn drain_borrowed(src: &str) -> usize {
    let mut reader = Reader::new(src);
    let mut events = 0;
    loop {
        match reader
            .next_event_borrowed()
            .expect("bench corpus is well-formed")
        {
            BorrowedEvent::Eof => return events,
            _ => events += 1,
        }
    }
}

fn drain_fed(chunks: &[&[u8]]) -> usize {
    // FeedReader delivers Eof to the sink; skip it to match drain_borrowed
    let mut events = 0;
    let mut count = |e: &BorrowedEvent<'_, '_>| {
        if !matches!(e, BorrowedEvent::Eof) {
            events += 1;
        }
        true
    };
    let mut feeder = FeedReader::new();
    for chunk in chunks {
        feeder
            .feed(chunk, &mut count)
            .expect("bench corpus is well-formed");
    }
    feeder
        .finish(&mut count)
        .expect("bench corpus is well-formed");
    events
}

/// (prefix, repeatable `<item>…</item>` block of ~256 KiB, suffix): a
/// purchase order whose `<items>` section can be repeated to any length
/// without ever holding the whole document in memory.
fn stream_parts() -> (String, String, String) {
    let one = webgen::render_order_string(&webgen::generate_order(17, 1));
    let open = one.find("<items>").expect("items") + "<items>".len();
    let close = one.find("</items>").expect("items close");
    let item = &one[open..close];
    (
        one[..open].to_string(),
        item.repeat(256 * 1024 / item.len() + 1),
        one[close..].to_string(),
    )
}

/// One-shot GiB-scale pass, printed rather than criterion-timed: a
/// multi-second single iteration is better reported directly than
/// sampled.
fn gigabyte_pass() {
    const TARGET: usize = 1 << 30;
    let (prefix, block, suffix) = stream_parts();
    let reps = (TARGET - prefix.len() - suffix.len()) / block.len() + 1;
    let total = prefix.len() + reps * block.len() + suffix.len();

    // parse only
    let started = Instant::now();
    let mut events = 0u64;
    let mut peak_buffered = 0;
    let mut feeder = FeedReader::with_limits(Limits::unbounded());
    let mut push = |chunk: &[u8], feeder: &mut FeedReader| {
        feeder
            .feed(chunk, |_| {
                events += 1;
                true
            })
            .expect("synthetic stream is well-formed");
    };
    push(prefix.as_bytes(), &mut feeder);
    for _ in 0..reps {
        push(block.as_bytes(), &mut feeder);
        peak_buffered = peak_buffered.max(feeder.buffered_bytes());
    }
    push(suffix.as_bytes(), &mut feeder);
    feeder.finish(|_| true).expect("stream is well-formed");
    let parse_secs = started.elapsed().as_secs_f64();
    eprintln!(
        "B12 feed-parse: {:.2} GiB in {parse_secs:.2}s = {:.3} GB/s \
         ({events} events, peak buffer {peak_buffered} B)",
        total as f64 / (1u64 << 30) as f64,
        total as f64 / 1e9 / parse_secs,
    );

    // parse + O(depth) streaming validation
    let po = po_schema();
    po.warm();
    let chunks = std::iter::once(prefix.as_bytes())
        .chain(std::iter::repeat_n(block.as_bytes(), reps))
        .chain(std::iter::once(suffix.as_bytes()));
    let started = Instant::now();
    let errors =
        validator::validate_chunks_streaming_with_limits(&po, chunks, &Limits::unbounded());
    let validate_secs = started.elapsed().as_secs_f64();
    assert!(errors.is_empty(), "synthetic stream must validate");
    eprintln!(
        "B12 feed-validate: {:.2} GiB in {validate_secs:.2}s = {:.3} GB/s",
        total as f64 / (1u64 << 30) as f64,
        total as f64 / 1e9 / validate_secs,
    );
}

fn swar_feed(c: &mut Criterion) {
    gigabyte_pass();

    let mut group = c.benchmark_group("B12-swar-feed");
    group.sample_size(20);

    // classifier head-to-head on three byte distributions
    let unbroken = "the quick brown fox jumps over the lazy dog ".repeat(24_000);
    let prose =
        "a line of ordinary prose text, just under eighty columns wide as usual\n".repeat(15_000);
    let markup = webgen::render_order_string(&webgen::generate_order(17, 1000));
    for (name, buf) in [
        ("unbroken-run", unbroken.as_str()),
        ("prose-lines", prose.as_str()),
        ("markup-dense", markup.as_str()),
    ] {
        let bytes = buf.as_bytes();
        assert_eq!(sweep(bytes, scan_plain), sweep(bytes, scan_plain_scalar));
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("scan-swar", name), &bytes, |b, bytes| {
            b.iter(|| black_box(sweep(bytes, scan_plain)))
        });
        group.bench_with_input(BenchmarkId::new("scan-scalar", name), &bytes, |b, bytes| {
            b.iter(|| black_box(sweep(bytes, scan_plain_scalar)))
        });
    }

    // chunked feed vs whole-input borrowed parse, same document
    let chunks: Vec<&[u8]> = markup.as_bytes().chunks(64 * 1024).collect();
    assert_eq!(drain_fed(&chunks), drain_borrowed(&markup));
    group.throughput(Throughput::Bytes(markup.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("feed-chunked", 1000),
        &chunks,
        |b, chunks| b.iter(|| black_box(drain_fed(chunks))),
    );
    group.bench_with_input(
        BenchmarkId::new("whole-borrowed", 1000),
        &markup,
        |b, xml| b.iter(|| black_box(drain_borrowed(xml))),
    );
    group.finish();
}

criterion_group!(benches, swar_feed);
criterion_main!(benches);
