//! **B8 — observability overhead.** The `obs` layer's contract is that
//! an uninstrumented process pays a single relaxed atomic load per probe
//! site: instrumented code asks `obs::enabled()` once and skips every
//! field rendering, clock read, and registry lookup when no sink is
//! installed. This bench puts a number on that claim by running the
//! B2b streaming-validation workload (purchase-order and WML corpora)
//! two ways:
//!
//! * `disabled`  — no sink installed, the shipping default;
//! * `collector` — the in-process `CollectingSink` plus live metrics,
//!   the xmlstat configuration;
//!
//! Expected shape: `disabled` within noise (<3%) of the pre-obs B2b
//! baselines recorded in EXPERIMENTS.md; `collector` a few percent
//! behind, dominated by the terminal-flush counter updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bench::{po_schema, wml_schema};

fn obs_overhead(c: &mut Criterion) {
    let po = po_schema();
    let wml = wml_schema();
    let order = webgen::generate_order(17, 1000);
    let po_xml = webgen::render_order_string(&order);
    let data = webgen::DirectoryPageData {
        sub_dirs: (0..512).map(|i| format!("dir{i:04}")).collect(),
        current_dir: "/media/archive".into(),
        parent_dir: "/media".into(),
    };
    let wml_xml = webgen::render_string(&data);

    let mut group = c.benchmark_group("B8-obs-overhead");
    group.sample_size(20);
    for (mode, install) in [("disabled", false), ("collector", true)] {
        if install {
            obs::install_collector();
        } else {
            obs::shutdown();
        }
        assert_eq!(obs::enabled(), install);
        group.throughput(Throughput::Bytes(po_xml.len() as u64));
        group.bench_with_input(
            BenchmarkId::new(format!("po-streaming-{mode}"), 1000),
            &po_xml,
            |b, xml| b.iter(|| black_box(validator::validate_str_streaming(&po, xml).len())),
        );
        group.throughput(Throughput::Bytes(wml_xml.len() as u64));
        group.bench_with_input(
            BenchmarkId::new(format!("wml-streaming-{mode}"), 512),
            &wml_xml,
            |b, xml| b.iter(|| black_box(validator::validate_str_streaming(&wml, xml).len())),
        );
    }
    obs::shutdown();
    group.finish();
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
