//! **B1 — generation cost.** The paper's claim: validity "without test
//! runs" should not make generation more expensive than the unchecked
//! status quo plus the validation it forces. We compare, per document:
//!
//! * `string`   — unchecked concatenation (JSP style, the floor);
//! * `dom`      — generic DOM build, no validation (invalid output risk);
//! * `dom+validate` — generic DOM build + full runtime validation
//!   (what correctness actually costs without V-DOM);
//! * `vdom`     — typed construction with incremental checking.
//!
//! Expected shape: `string` < `vdom` ≈ small-constant × `dom`, and
//! `vdom` ≤ `dom+validate` (one pass instead of build-then-walk).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::{po_schema, ITEM_SIZES};

fn generation(c: &mut Criterion) {
    let compiled = po_schema();
    let mut group = c.benchmark_group("B1-generation");
    group.sample_size(20);
    for &n in ITEM_SIZES {
        let order = webgen::generate_order(7, n);
        group.bench_with_input(BenchmarkId::new("string", n), &order, |b, order| {
            b.iter(|| black_box(webgen::render_order_string(order)))
        });
        group.bench_with_input(BenchmarkId::new("dom", n), &order, |b, order| {
            b.iter(|| {
                let mut doc = dom::Document::new();
                webgen::build_order_dom(&mut doc, order);
                let root = doc.root_element().unwrap();
                black_box(dom::serialize(&doc, root).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("dom+validate", n), &order, |b, order| {
            b.iter(|| black_box(webgen::render_order_dom(&compiled, order).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("vdom", n), &order, |b, order| {
            b.iter(|| black_box(webgen::render_order_vdom(&compiled, order).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, generation);
criterion_main!(benches);
