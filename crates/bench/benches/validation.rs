//! **B2 — incremental vs whole-document validation.** Without V-DOM, a
//! program that wants validity after every mutation must re-validate the
//! whole document each time ("extensive testing at runtime"). V-DOM's
//! incremental enforcement pays O(1) per mutation instead. We append `n`
//! items to an order under three regimes:
//!
//! * `revalidate-each` — generic DOM, full validation after every append
//!   (cost grows quadratically in `n`);
//! * `validate-once`   — generic DOM, one validation at the end (linear,
//!   but validity violations surface only at the end);
//! * `vdom-incremental` — typed appends, each checked as it happens
//!   (linear, violations surface immediately).
//!
//! Expected shape: `revalidate-each` explodes; the crossover against
//! `vdom-incremental` appears at single-digit mutation counts.
//!
//! **B2b** (group `B2b-streaming-validation`) compares the two ways to
//! check a *rendered* page: build a DOM from the text and run the tree
//! validator (`dom-then-validate`) vs. feeding parser events straight to
//! `validator::validate_str_streaming` (`streaming`), on purchase-order
//! and WML corpora. Expected shape: identical verdicts, with streaming
//! ahead by the cost of tree construction and with O(depth) instead of
//! O(document) memory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bench::{po_schema, wml_schema};

fn append_items_dom(order: &webgen::Order, compiled: &schema::CompiledSchema, per_step: bool) {
    let mut doc = dom::Document::new();
    let shell = webgen::Order {
        items: Vec::new(),
        ..order.clone()
    };
    webgen::build_order_dom(&mut doc, &shell);
    let root = doc.root_element().unwrap();
    let items = doc.child_element_named(root, "items").unwrap();
    for item in &order.items {
        let el = doc.create_element("item").unwrap();
        doc.append_child(items, el).unwrap();
        doc.set_attribute(el, "partNum", item.part_num.clone())
            .unwrap();
        for (child, value) in [
            ("productName", item.product_name.clone()),
            ("quantity", item.quantity.to_string()),
            ("USPrice", item.us_price.clone()),
        ] {
            let c = doc.create_element(child).unwrap();
            doc.append_child(el, c).unwrap();
            let t = doc.create_text(value);
            doc.append_child(c, t).unwrap();
        }
        if per_step {
            assert!(validator::validate_document(compiled, &doc).is_empty());
        }
    }
    if !per_step {
        assert!(validator::validate_document(compiled, &doc).is_empty());
    }
    black_box(doc.len());
}

fn append_items_vdom(order: &webgen::Order, compiled: &schema::CompiledSchema) {
    let s = webgen::render_order_vdom(compiled, order).unwrap();
    black_box(s.len());
}

fn validation(c: &mut Criterion) {
    let compiled = po_schema();
    let mut group = c.benchmark_group("B2-validation");
    group.sample_size(15);
    for &n in &[1usize, 10, 50, 200] {
        let order = webgen::generate_order(13, n);
        group.bench_with_input(
            BenchmarkId::new("revalidate-each", n),
            &order,
            |b, order| b.iter(|| append_items_dom(order, &compiled, true)),
        );
        group.bench_with_input(BenchmarkId::new("validate-once", n), &order, |b, order| {
            b.iter(|| append_items_dom(order, &compiled, false))
        });
        group.bench_with_input(
            BenchmarkId::new("vdom-incremental", n),
            &order,
            |b, order| b.iter(|| append_items_vdom(order, &compiled)),
        );
    }
    group.finish();
}

fn streaming_vs_dom(c: &mut Criterion) {
    let po = po_schema();
    let wml = wml_schema();
    let mut group = c.benchmark_group("B2b-streaming-validation");
    group.sample_size(15);
    for &n in &[1usize, 10, 100, 1000] {
        let order = webgen::generate_order(17, n);
        let xml = webgen::render_order_string(&order);
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("po-dom-then-validate", n),
            &xml,
            |b, xml| {
                b.iter(|| {
                    let doc = xmlparse::parse_document(xml).unwrap();
                    black_box(validator::validate_document(&po, &doc).len())
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("po-streaming", n), &xml, |b, xml| {
            b.iter(|| black_box(validator::validate_str_streaming(&po, xml).len()))
        });
    }
    for &n in &[4usize, 64, 512] {
        let data = webgen::DirectoryPageData {
            sub_dirs: (0..n).map(|i| format!("dir{i:04}")).collect(),
            current_dir: "/media/archive".into(),
            parent_dir: "/media".into(),
        };
        let xml = webgen::render_string(&data);
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("wml-dom-then-validate", n),
            &xml,
            |b, xml| {
                b.iter(|| {
                    let doc = xmlparse::parse_document(xml).unwrap();
                    black_box(validator::validate_document(&wml, &doc).len())
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("wml-streaming", n), &xml, |b, xml| {
            b.iter(|| black_box(validator::validate_str_streaming(&wml, xml).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, validation, streaming_vs_dom);
criterion_main!(benches);
