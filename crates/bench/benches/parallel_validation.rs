//! **B9 — parallel batch validation** (group `B9-parallel-validation`).
//!
//! The compiled-DFA investment of Sect. 6 amortizes across cores: one
//! warmed `CompiledSchema` is shared by every worker of a `pool`
//! work-stealing thread pool, and a batch of rendered documents fans out
//! via `SchemaRegistry::validate_batch_streaming_parallel`. Baseline is
//! the sequential `validate_batch_streaming` over the identical batch
//! (the B2b streaming path, batched).
//!
//! Expected shape: near-linear scaling in thread count while documents
//! outnumber workers — the acceptance bar is ≥3× over sequential at 4
//! threads on both the purchase-order and WML corpora. Per-document
//! output is byte-identical to sequential at every thread count
//! (enforced by `tests/tests/parallel_prop.rs`; asserted lightly here).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pool::ThreadPool;
use webgen::SchemaRegistry;

const THREADS: &[usize] = &[1, 2, 4, 8];

fn corpus_registry() -> SchemaRegistry {
    let reg = SchemaRegistry::with_corpus().expect("corpus registry");
    // pay all DFA/attribute compilation before any measurement
    reg.get("purchase-order").unwrap().warm();
    reg.get("wml").unwrap().warm();
    reg
}

fn po_batch(docs: usize, items: usize) -> Vec<String> {
    (0..docs)
        .map(|i| webgen::render_order_string(&webgen::generate_order(i as u64, items)))
        .collect()
}

fn wml_batch(docs: usize, dirs: usize) -> Vec<String> {
    (0..docs)
        .map(|i| {
            webgen::render_string(&webgen::DirectoryPageData {
                sub_dirs: (0..dirs).map(|d| format!("dir{i:03}-{d:04}")).collect(),
                current_dir: "/media/archive".into(),
                parent_dir: "/media".into(),
            })
        })
        .collect()
}

fn bench_corpus(
    group: &mut criterion::BenchmarkGroup<'_>,
    reg: &SchemaRegistry,
    schema: &str,
    label: &str,
    batch: &[String],
) {
    let docs: Vec<&str> = batch.iter().map(String::as_str).collect();
    let bytes: u64 = batch.iter().map(|d| d.len() as u64).sum();
    let sequential = reg.validate_batch_streaming(schema, &docs).unwrap();
    assert!(
        sequential.iter().all(Vec::is_empty),
        "bench corpus must be valid"
    );
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function(
        BenchmarkId::new(format!("{label}-sequential"), docs.len()),
        |b| b.iter(|| black_box(reg.validate_batch_streaming(schema, &docs).unwrap().len())),
    );
    for &threads in THREADS {
        let pool = ThreadPool::new(threads);
        // identical output before we measure
        assert_eq!(
            reg.validate_batch_streaming_parallel(schema, &docs, &pool)
                .unwrap(),
            sequential
        );
        group.throughput(Throughput::Bytes(bytes));
        group.bench_function(
            BenchmarkId::new(format!("{label}-parallel"), format!("{}t", threads)),
            |b| {
                b.iter(|| {
                    black_box(
                        reg.validate_batch_streaming_parallel(schema, &docs, &pool)
                            .unwrap()
                            .len(),
                    )
                })
            },
        );
    }
}

fn parallel_validation(c: &mut Criterion) {
    let reg = corpus_registry();
    let mut group = c.benchmark_group("B9-parallel-validation");
    group.sample_size(10);
    let po = po_batch(64, 40);
    bench_corpus(&mut group, &reg, "purchase-order", "po", &po);
    let wml = wml_batch(64, 128);
    bench_corpus(&mut group, &reg, "wml", "wml", &wml);
    group.finish();
}

criterion_group!(benches, parallel_validation);
criterion_main!(benches);
