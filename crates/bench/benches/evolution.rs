//! **B7 — schema-evolution ablation.** The paper's Sect. 3 argument for
//! merged naming, quantified: across three evolution steps, how many
//! generated names survive under each naming design?
//!
//! * *union/synthesized* (the rejected Fig. 5 design): choice names are
//!   synthesized from the alternatives, so adding one renames the group
//!   (and its enum), breaking every client use site;
//! * *inherited/merged* (the Fig. 6 design): choice names come from the
//!   defining type and position — stable under added alternatives, and
//!   changing only when a sequence's content really changes.
//!
//! Run with `cargo bench -p bench --bench evolution`.

use std::collections::BTreeSet;

use normalize::naming::synthesized_choice_name;

/// The evolution steps of the Sect. 3 walkthrough.
const STEPS: &[(&str, &str)] = &[
    (
        "baseline (singAddr | twoAddr)",
        schema::corpus::CHOICE_PO_XSD,
    ),
    (
        "+ multAddr alternative",
        schema::corpus::CHOICE_PO_EVOLVED_XSD,
    ),
];

fn interface_names(xsd: &str) -> BTreeSet<String> {
    let schema = schema::parse_schema(xsd).unwrap();
    let model = normalize::build_model(&schema).unwrap();
    model.interfaces.iter().map(|i| i.name.clone()).collect()
}

fn field_signatures(xsd: &str) -> BTreeSet<String> {
    let schema = schema::parse_schema(xsd).unwrap();
    let model = normalize::build_model(&schema).unwrap();
    model
        .interfaces
        .iter()
        .flat_map(|i| {
            i.fields
                .iter()
                .map(move |f| format!("{}.{}: {}", i.name, f.name, f.ty.idl()))
        })
        .collect()
}

fn main() {
    println!("\nB7 — naming stability under schema evolution (Sect. 3)\n");

    let (base_label, base_xsd) = STEPS[0];
    let base_names = interface_names(base_xsd);
    let base_fields = field_signatures(base_xsd);
    println!(
        "{base_label}: {} interfaces, {} fields",
        base_names.len(),
        base_fields.len()
    );

    for (label, xsd) in &STEPS[1..] {
        let names = interface_names(xsd);
        let fields = field_signatures(xsd);
        let removed_names: Vec<_> = base_names.difference(&names).collect();
        let removed_fields: Vec<_> = base_fields.difference(&fields).collect();
        println!("\nafter {label}:");
        println!(
            "  inherited/merged naming: {} of {} interface names survive ({} lost)",
            base_names.intersection(&names).count(),
            base_names.len(),
            removed_names.len()
        );
        println!(
            "  field signatures: {} of {} survive ({} lost)",
            base_fields.intersection(&fields).count(),
            base_fields.len(),
            removed_fields.len()
        );
        for lost in &removed_names {
            println!("    lost interface: {lost}");
        }
        for lost in &removed_fields {
            println!("    lost field: {lost}");
        }
    }

    // the rejected design, for contrast: the synthesized choice name
    let before = synthesized_choice_name(&["singAddr".into(), "twoAddr".into()]);
    let after = synthesized_choice_name(&["singAddr".into(), "twoAddr".into(), "multAddr".into()]);
    println!("\nrejected synthesized/union design:");
    println!("  choice type renames: {before} → {after}");
    println!("  every client mention of {before} (field type, union switch) breaks.");

    // verdict the paper predicts
    let names_after = interface_names(STEPS[1].1);
    let survived = base_names.iter().all(|n| names_after.contains(n));
    println!(
        "\nverdict: inherited naming keeps all baseline names: {survived}; \
         synthesized naming breaks the choice group name: {}",
        before != after
    );
    assert!(survived);
    assert_ne!(before, after);
}
