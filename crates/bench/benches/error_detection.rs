//! **B3 — error-detection coverage and latency.** For each class of
//! schema violation, which stage catches it, and how fast is the static
//! check? Prints the coverage table (the quantitative version of the
//! paper's Sect. 1 argument) and measures P-XML static checking time per
//! constructor class.
//!
//! Run with `cargo bench -p bench --bench error_detection`.

use std::hint::black_box;
use std::time::Instant;

use bench::po_schema;
use pxml::{check_template, Template, TypeEnv};

struct Case {
    label: &'static str,
    template: &'static str,
    /// Whether the constructor is valid (controls the expected verdict).
    valid: bool,
}

const CASES: &[Case] = &[
    Case {
        label: "valid shipTo constructor",
        template: "<shipTo country=\"US\"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>",
        valid: true,
    },
    Case {
        label: "wrong child order",
        template: "<shipTo country=\"US\"><street>s</street><name>n</name><city>c</city><state>st</state><zip>1</zip></shipTo>",
        valid: false,
    },
    Case {
        label: "missing required child",
        template: "<shipTo country=\"US\"><name>n</name><street>s</street></shipTo>",
        valid: false,
    },
    Case {
        label: "undeclared element",
        template: "<shipTo country=\"US\"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip><fax>1</fax></shipTo>",
        valid: false,
    },
    Case {
        label: "choice/occurrence violation (two comments)",
        template: "<item partNum=\"123-AB\"><productName>x</productName><quantity>1</quantity><USPrice>1.0</USPrice><comment>a</comment><comment>b</comment></item>",
        valid: false,
    },
    Case {
        label: "missing required attribute",
        template: "<item><productName>x</productName><quantity>1</quantity><USPrice>1.0</USPrice></item>",
        valid: false,
    },
    Case {
        label: "undeclared attribute",
        template: "<shipTo country=\"US\" priority=\"1\"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>",
        valid: false,
    },
    Case {
        label: "bad literal attribute (pattern facet)",
        template: "<item partNum=\"XX\"><productName>x</productName><quantity>1</quantity><USPrice>1.0</USPrice></item>",
        valid: false,
    },
    Case {
        label: "fixed attribute violated",
        template: "<shipTo country=\"DE\"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>",
        valid: false,
    },
    Case {
        label: "bad literal content (range facet)",
        template: "<item partNum=\"123-AB\"><productName>x</productName><quantity>100</quantity><USPrice>1.0</USPrice></item>",
        valid: false,
    },
    Case {
        label: "text in element-only content",
        template: "<items>stray</items>",
        valid: false,
    },
    Case {
        label: "bad simple value (decimal)",
        template: "<shipTo country=\"US\"><name>n</name><street>s</street><city>c</city><state>st</state><zip>NaNany</zip></shipTo>",
        valid: false,
    },
];

fn main() {
    let compiled = po_schema();
    let env = TypeEnv::new();

    println!("\nB3 — static error detection (P-XML checker vs baselines)\n");
    println!(
        "{:<44} {:>8} {:>12} {:>12}",
        "violation class", "P-XML", "DOM+valid.", "string gen"
    );
    let mut static_caught = 0;
    let mut runtime_caught = 0;
    let mut injected = 0;
    for case in CASES {
        let template = Template::parse(case.template).expect("well-formed");
        let static_errors = check_template(&compiled, &template, &env);
        let doc = xmlparse::parse_document(case.template).expect("well-formed");
        let runtime_errors = validator::validate_document(&compiled, &doc);
        let static_verdict = !static_errors.is_empty();
        let runtime_verdict = !runtime_errors.is_empty();
        if !case.valid {
            injected += 1;
            if static_verdict {
                static_caught += 1;
            }
            if runtime_verdict {
                runtime_caught += 1;
            }
        }
        println!(
            "{:<44} {:>8} {:>12} {:>12}",
            case.label,
            if case.valid {
                if static_verdict {
                    "FALSE-POS"
                } else {
                    "ok"
                }
            } else if static_verdict {
                "STATIC"
            } else {
                "missed"
            },
            if runtime_verdict { "runtime" } else { "-" },
            "never",
        );
    }
    println!(
        "\ncoverage: P-XML static {static_caught}/{injected}, DOM+validator (runtime) {runtime_caught}/{injected}, string generation 0/{injected}\n"
    );

    // detection latency: time per static check, amortized
    let templates: Vec<Template> = CASES
        .iter()
        .map(|c| Template::parse(c.template).unwrap())
        .collect();
    let iters = 2000;
    let start = Instant::now();
    for _ in 0..iters {
        for t in &templates {
            black_box(check_template(&compiled, t, &env).len());
        }
    }
    let per_check = start.elapsed() / (iters * templates.len() as u32);
    println!(
        "static check latency: {per_check:?} per constructor (mean over {} checks)",
        iters as usize * templates.len()
    );
    // compare with a full runtime validation of the paper's document
    let doc = xmlparse::parse_document(schema::corpus::PURCHASE_ORDER_XML).unwrap();
    let start = Instant::now();
    for _ in 0..iters {
        black_box(validator::validate_document(&compiled, &doc).len());
    }
    let per_validate = start.elapsed() / iters;
    println!("runtime validation latency: {per_validate:?} per document (Fig. 1 document)");
}
