//! **B10 — zero-copy event pipeline** (group `B10-zero-copy`).
//!
//! Measures what the borrowed-event + interned-symbol path buys over the
//! owned-event path it replaced:
//!
//! * `po-parse-owned` vs `po-parse-borrowed` — the parser alone, draining
//!   the event stream of a 1000-item order with `next_event` (allocates
//!   per event) vs `next_event_borrowed` (slices the source);
//! * `po-streaming` / `wml-streaming` — end-to-end streaming validation
//!   on exactly the B2b corpora, now running borrowed events into the
//!   symbol-dispatch validator. Compare against the B2b `*-streaming`
//!   rows of the previous revision for the before/after (EXPERIMENTS.md
//!   B10 records both).
//!
//! Schemas are warmed first, so the numbers isolate the per-document hot
//! path from one-time compilation, exactly as in B9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bench::{po_schema, wml_schema};
use xmlparse::{BorrowedEvent, Event, Reader};

fn drain_owned(src: &str) -> usize {
    let mut reader = Reader::new(src);
    let mut events = 0;
    loop {
        match reader.next_event().expect("bench corpus is well-formed") {
            Event::Eof => return events,
            _ => events += 1,
        }
    }
}

fn drain_borrowed(src: &str) -> usize {
    let mut reader = Reader::new(src);
    let mut events = 0;
    loop {
        match reader
            .next_event_borrowed()
            .expect("bench corpus is well-formed")
        {
            BorrowedEvent::Eof => return events,
            _ => events += 1,
        }
    }
}

fn zero_copy(c: &mut Criterion) {
    let po = po_schema();
    let wml = wml_schema();
    po.warm();
    wml.warm();
    let mut group = c.benchmark_group("B10-zero-copy");
    group.sample_size(15);

    // the parser alone: owned vs borrowed event stream
    let order = webgen::generate_order(17, 1000);
    let xml = webgen::render_order_string(&order);
    group.throughput(Throughput::Bytes(xml.len() as u64));
    assert_eq!(drain_owned(&xml), drain_borrowed(&xml));
    group.bench_with_input(BenchmarkId::new("po-parse-owned", 1000), &xml, |b, xml| {
        b.iter(|| black_box(drain_owned(xml)))
    });
    group.bench_with_input(
        BenchmarkId::new("po-parse-borrowed", 1000),
        &xml,
        |b, xml| b.iter(|| black_box(drain_borrowed(xml))),
    );

    // end to end, on the B2b corpora
    for &n in &[1usize, 10, 100, 1000] {
        let order = webgen::generate_order(17, n);
        let xml = webgen::render_order_string(&order);
        assert!(validator::validate_str_streaming(&po, &xml).is_empty());
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(BenchmarkId::new("po-streaming", n), &xml, |b, xml| {
            b.iter(|| black_box(validator::validate_str_streaming(&po, xml).len()))
        });
    }
    for &n in &[4usize, 64, 512] {
        let data = webgen::DirectoryPageData {
            sub_dirs: (0..n).map(|i| format!("dir{i:04}")).collect(),
            current_dir: "/media/archive".into(),
            parent_dir: "/media".into(),
        };
        let xml = webgen::render_string(&data);
        assert!(validator::validate_str_streaming(&wml, &xml).is_empty());
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(BenchmarkId::new("wml-streaming", n), &xml, |b, xml| {
            b.iter(|| black_box(validator::validate_str_streaming(&wml, xml).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, zero_copy);
criterion_main!(benches);
