//! **B6 — substrate throughput.** Parser and serializer throughput on
//! purchase-order documents of increasing size, plus full runtime
//! validation — the fixed costs every approach shares (and the baseline
//! the paper's architecture sits on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bench::{po_schema, ITEM_SIZES};

fn parsing(c: &mut Criterion) {
    let compiled = po_schema();
    let mut group = c.benchmark_group("B6-substrate");
    group.sample_size(20);
    for &n in ITEM_SIZES {
        let order = webgen::generate_order(3, n);
        let xml = webgen::render_order_string(&order);
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(BenchmarkId::new("parse", n), &xml, |b, xml| {
            b.iter(|| black_box(xmlparse::parse_document(xml).unwrap().len()))
        });
        let doc = xmlparse::parse_document(&xml).unwrap();
        group.bench_with_input(BenchmarkId::new("serialize", n), &doc, |b, doc| {
            let root = doc.root_element().unwrap();
            b.iter(|| black_box(dom::serialize(doc, root).unwrap().len()))
        });
        group.bench_with_input(BenchmarkId::new("validate", n), &doc, |b, doc| {
            b.iter(|| black_box(validator::validate_document(&compiled, doc).len()))
        });
        group.bench_with_input(BenchmarkId::new("typed-import", n), &xml, |b, xml| {
            b.iter(|| {
                let td = vdom::parse_typed(&compiled, xml).unwrap();
                black_box(td.dom().len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, parsing);
criterion_main!(benches);
