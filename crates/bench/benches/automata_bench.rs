//! **B5 — content-model automata.** The Aho–Sethi–Ullman construction
//! the paper cites (Sect. 6): DFA build time vs content-model size, and
//! the occurrence-handling ablation — expansion-based DFA vs the
//! derivative (counter) matcher for large `maxOccurs`.
//!
//! Expected shape: Glushkov + subset construction near-linear in
//! positions for deterministic models; DFA matching O(1) per child vs the
//! derivative matcher's per-step rewriting; expansion cost growing with
//! the bound while derivative construction stays flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use automata::{ContentDfa, ContentExpr, DerivMatcher, Glushkov, Matcher};

/// `(a1?, a2?, …, an?)` — a wide optional sequence.
fn wide_sequence(n: usize) -> ContentExpr {
    ContentExpr::sequence(
        (0..n)
            .map(|i| ContentExpr::optional(ContentExpr::leaf(format!("el{i}"))))
            .collect(),
    )
}

/// `(a1 | a2 | … | an)*` — a starred wide choice (the WML `p` shape).
fn starred_choice(n: usize) -> ContentExpr {
    ContentExpr::star(ContentExpr::choice(
        (0..n)
            .map(|i| ContentExpr::leaf(format!("el{i}")))
            .collect(),
    ))
}

fn construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("B5-dfa-construction");
    group.sample_size(20);
    for &n in &[2usize, 8, 32, 128] {
        for (shape, expr) in [
            ("sequence", wide_sequence(n)),
            ("choice*", starred_choice(n)),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("glushkov/{shape}"), n),
                &expr,
                |b, expr| {
                    let expanded = expr.expand_occurrences().unwrap();
                    b.iter(|| black_box(Glushkov::construct(&expanded).position_count()))
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("dfa-compile/{shape}"), n),
                &expr,
                |b, expr| b.iter(|| black_box(ContentDfa::compile(expr).unwrap().state_count())),
            );
        }
    }
    group.finish();
}

fn occurrence_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("B5-occurrence-ablation");
    // the bound=1000 expansion case costs ~12 s per compile; keep the
    // sample count at Criterion's minimum
    group.sample_size(10);
    for &bound in &[10u32, 100, 1000] {
        let expr = ContentExpr::occur(ContentExpr::leaf("item"), 0, Some(bound));
        // construction cost: expansion blows up with the bound
        group.bench_with_input(
            BenchmarkId::new("expand-and-compile", bound),
            &expr,
            |b, expr| b.iter(|| black_box(ContentDfa::compile(expr).unwrap().state_count())),
        );
        group.bench_with_input(
            BenchmarkId::new("derivative-construct", bound),
            &expr,
            |b, expr| b.iter(|| black_box(DerivMatcher::new(expr).is_accepting())),
        );
        // matching cost at the bound
        let input: Vec<&str> = std::iter::repeat_n("item", bound as usize).collect();
        let dfa = ContentDfa::compile(&expr).unwrap();
        group.bench_with_input(BenchmarkId::new("dfa-match", bound), &input, |b, input| {
            b.iter(|| {
                let mut m = dfa.start();
                for s in input {
                    m.step(s).unwrap();
                }
                black_box(m.is_accepting())
            })
        });
        group.bench_with_input(
            BenchmarkId::new("derivative-match", bound),
            &input,
            |b, input| {
                b.iter(|| {
                    let mut m = DerivMatcher::new(&expr);
                    for s in input {
                        m.step(s).unwrap();
                    }
                    black_box(m.is_accepting())
                })
            },
        );
    }
    group.finish();
}

fn pattern_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("B5-xsd-regex");
    group.sample_size(30);
    let sku = xsdregex::Regex::parse(r"\d{3}-[A-Z]{2}").unwrap();
    let dfa = sku.dfa();
    group.bench_function("sku-nfa-match", |b| {
        b.iter(|| black_box(sku.is_match("926-AA")))
    });
    group.bench_function("sku-dfa-match", |b| {
        b.iter(|| black_box(dfa.is_match("926-AA")))
    });
    group.bench_function("sku-compile", |b| {
        b.iter(|| black_box(xsdregex::Regex::parse(r"\d{3}-[A-Z]{2}").unwrap()))
    });
    group.finish();
}

criterion_group!(benches, construction, occurrence_ablation, pattern_engine);
criterion_main!(benches);
