//! **B16 — incremental revalidation vs revalidate-from-scratch.** The
//! `validator::patch` claim: a committed patch costs O(affected
//! siblings) — the parent's content DFA resumed at the edit point plus
//! the freshly inserted subtree — not O(document). So patches/sec on
//! the incremental path should hold roughly flat as the document grows,
//! while the from-scratch baseline (apply the mutation structurally,
//! then run `validate_document` over the whole tree) degrades linearly.
//!
//! Three patch shapes per document size, one verdict-agreement check
//! before any timing:
//!
//! * `set_text`  — a facet recheck of one simple-typed leaf;
//! * `append`    — an occurrence step at the end of the unbounded
//!   `item*` list plus validation of the new subtree;
//! * `reject`    — a patch that must be refused (occurrence overflow),
//!   where incremental pays the recheck and the rollback.
//!
//! The locality ratio (`nodes_rechecked / document nodes`) is printed
//! once per size so EXPERIMENTS.md can quote it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::po_schema;
use dom::Document;
use limits::Limits;
use validator::{apply_unchecked, validate_document, DomPatch, IncrementalValidator, NewNode};

const NEW_ITEM: &str = "<item partNum=\"926-AA\"><productName>Baby Monitor</productName>\
    <quantity>1</quantity><USPrice>39.98</USPrice></item>";

fn parsed_order(items: usize) -> Document {
    let order = webgen::render_order_string(&webgen::generate_order(7, items));
    xmlparse::parse_document(&order).unwrap()
}

/// (root index, items index, path to the first item's quantity text)
fn po_paths(doc: &Document) -> (usize, usize, Vec<usize>) {
    let root = doc.root_element().unwrap();
    let root_idx = doc
        .child_slice(doc.document_node())
        .unwrap()
        .iter()
        .position(|&c| c == root)
        .unwrap();
    let children = doc.child_slice(root).unwrap();
    let items_idx = children
        .iter()
        .position(|&c| doc.tag_name(c).map(|n| n == "items").unwrap_or(false))
        .unwrap();
    let items = children[items_idx];
    let item = doc.child_slice(items).unwrap()[0];
    let quantity_idx = doc
        .child_slice(item)
        .unwrap()
        .iter()
        .position(|&c| doc.tag_name(c).map(|n| n == "quantity").unwrap_or(false))
        .unwrap();
    let text_path = vec![root_idx, items_idx, 0, quantity_idx, 0];
    (root_idx, items_idx, text_path)
}

/// Full-revalidation baseline: clone, mutate structurally, full pass.
fn scratch_verdict(compiled: &schema::CompiledSchema, doc: &Document, patch: &DomPatch) -> bool {
    let mut clone = doc.clone();
    if apply_unchecked(&mut clone, patch).is_err() {
        return false;
    }
    validate_document(compiled, &clone).is_empty()
}

fn patch_throughput(c: &mut Criterion) {
    let compiled = po_schema();
    let mut group = c.benchmark_group("B16-incremental-patch");
    group.sample_size(20);

    for &items in &[10usize, 100, 1000] {
        let doc = parsed_order(items);
        let (root_idx, items_idx, text_path) = po_paths(&doc);
        let set_text = DomPatch::SetText {
            at: text_path,
            text: "42".into(),
        };
        let append = DomPatch::AppendChild {
            at: vec![root_idx, items_idx],
            child: NewNode::Element {
                xml: NEW_ITEM.into(),
            },
        };
        // a second shipTo can never fit `shipTo billTo comment? items`
        let reject = DomPatch::InsertChild {
            at: vec![root_idx],
            index: 2,
            child: NewNode::Element {
                xml: "<shipTo country=\"US\"><name>N</name><street>S</street>\
                      <city>C</city><state>CA</state><zip>1</zip></shipTo>"
                    .into(),
            },
        };

        // verdict agreement before any timing, plus the locality ratio
        let mut probe = IncrementalValidator::new(compiled.clone(), doc.clone()).unwrap();
        for (patch, expect) in [(&set_text, true), (&append, true), (&reject, false)] {
            assert_eq!(
                probe.apply(patch).is_ok(),
                expect,
                "verdict drift at {items} items"
            );
            assert_eq!(
                scratch_verdict(&compiled, &doc, patch),
                expect,
                "baseline disagrees at {items} items"
            );
        }
        // fresh probe for the ratio of the canonical append
        let mut probe = IncrementalValidator::new(compiled.clone(), doc.clone()).unwrap();
        probe.apply(&append).unwrap();
        println!(
            "B16 locality items={items}: nodes_rechecked={} doc_nodes={} ratio={:.4}",
            probe.nodes_rechecked(),
            probe.node_count(),
            probe.nodes_rechecked() as f64 / probe.node_count() as f64
        );

        for (label, patch) in [
            ("set_text", &set_text),
            ("append", &append),
            ("reject", &reject),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("incremental/{label}"), items),
                patch,
                |b, patch| {
                    // one long-lived session; alternating appends/removes
                    // would grow the doc, so set_text/reject repeat in
                    // place and append is paired with an undoing remove
                    // unbounded: criterion iterates far past the
                    // default 100k-patch governance cap
                    let mut session = IncrementalValidator::with_limits(
                        compiled.clone(),
                        doc.clone(),
                        Limits::unbounded(),
                    )
                    .unwrap();
                    b.iter(|| match patch {
                        DomPatch::AppendChild { at, .. } => {
                            session.apply(patch).unwrap();
                            let doc = session.document();
                            let items_node = {
                                let mut n = doc.document_node();
                                for &i in at {
                                    n = doc.child_slice(n).unwrap()[i];
                                }
                                n
                            };
                            let last = doc.child_slice(items_node).unwrap().len() - 1;
                            session
                                .apply(&DomPatch::RemoveChild {
                                    at: at.clone(),
                                    index: last,
                                })
                                .unwrap();
                            black_box(session.applied_total())
                        }
                        _ => black_box(session.apply(black_box(patch)).is_ok() as u64),
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("scratch/{label}"), items),
                patch,
                |b, patch| b.iter(|| black_box(scratch_verdict(&compiled, &doc, patch))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, patch_throughput);
criterion_main!(benches);
