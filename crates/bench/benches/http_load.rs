//! **B14 — HTTP serving throughput** (group `B14-http-load`).
//!
//! End-to-end requests/sec through the std-only HTTP front end: loopback
//! TCP, real request parsing, the streaming validator, and JSON verdict
//! rendering all on the measured path. Traffic is the mixed profile the
//! service is built for — mostly valid purchase orders, some invalid
//! documents (still answered 200), and hostile deep-nesting documents
//! that trip the depth budget into a typed 422 — because a production
//! mix is never all-clean. Client fan-in scales 1→8 concurrent
//! keep-alive connections against the default 8 connection workers; a
//! separate single-connection benchmark isolates per-request latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::cell::RefCell;
use std::hint::black_box;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use serve::{Server, ServerConfig};
use webgen::SchemaRegistry;

/// Concurrent keep-alive client connections.
const CLIENTS: &[usize] = &[1, 2, 4, 8];
/// Requests per client per measured iteration.
const PER_CLIENT: usize = 20;

fn boot() -> Server {
    let registry = Arc::new(SchemaRegistry::with_corpus().expect("corpus registry"));
    registry.get("purchase-order").unwrap().warm();
    Server::start(registry, "127.0.0.1:0", ServerConfig::default()).expect("bind")
}

/// The 8:1:1 valid/invalid/hostile request mix, pre-rendered to raw
/// request bytes (keep-alive) so only the wire + server are measured.
fn request_mix() -> Vec<Vec<u8>> {
    let frame = |doc: &str| {
        format!(
            "POST /v1/validate/purchase-order HTTP/1.1\r\nHost: b\r\nContent-Length: {}\r\n\r\n{}",
            doc.len(),
            doc
        )
        .into_bytes()
    };
    let hostile = format!("{}{}", "<d>".repeat(2_000), "</d>".repeat(2_000));
    let mut mix = Vec::with_capacity(10);
    for seed in 0..8u64 {
        mix.push(frame(&webgen::render_order_string(
            &webgen::generate_order(seed, 3),
        )));
    }
    mix.push(frame("<order><junk/></order>"));
    mix.push(frame(&hostile));
    mix
}

/// Sends one raw request on an open connection and reads the response
/// to completion; returns the status code.
fn exchange(stream: &mut TcpStream, raw: &[u8]) -> u16 {
    stream.write_all(raw).expect("write request");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut len = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            len = v.trim().parse().expect("content-length");
        }
    }
    // BufReader may have buffered body bytes past the headers; consume
    // exactly the body through the same reader
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).expect("body");
    black_box(&body);
    status
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

fn bench_http_load(c: &mut Criterion) {
    let server = boot();
    let addr = server.addr();
    let mix = request_mix();

    let mut group = c.benchmark_group("B14-http-load");
    group.sample_size(10);

    // fan-in scaling: N clients, each PER_CLIENT mixed requests per
    // iteration over its own keep-alive connection
    for &clients in CLIENTS {
        group.throughput(Throughput::Elements((clients * PER_CLIENT) as u64));
        group.bench_with_input(
            BenchmarkId::new("mixed-traffic/clients", clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for c in 0..clients {
                            let mix = &mix;
                            scope.spawn(move || {
                                let mut stream = connect(addr);
                                for i in 0..PER_CLIENT {
                                    let raw = &mix[(c + i) % mix.len()];
                                    let status = exchange(&mut stream, raw);
                                    assert!(
                                        status == 200 || status == 422,
                                        "unexpected status {status} under load"
                                    );
                                }
                            });
                        }
                    })
                });
            },
        );
    }

    // per-request latency on one persistent connection, no contention:
    // the floor the fan-in numbers are paying wire + parse + validate on
    let valid = request_mix().remove(0);
    let persistent = RefCell::new(connect(addr));
    group.throughput(Throughput::Elements(1));
    group.bench_function("single-connection-latency", |b| {
        b.iter(|| {
            let status = exchange(&mut persistent.borrow_mut(), &valid);
            assert_eq!(status, 200);
        });
    });
    drop(persistent);
    group.finish();
    server.drain();
}

criterion_group!(benches, bench_http_load);
criterion_main!(benches);
