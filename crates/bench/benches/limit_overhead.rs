//! **B11 — resource-governance overhead** (group `B11-limit-overhead`).
//!
//! The `Limits` checks ride the streaming hot path (input size once,
//! depth and attribute counters per tag, an error-cap compare per
//! event), so this bench proves the governance tax on *legitimate*
//! documents: each corpus size runs three ways —
//!
//! * `*-unbounded` — `Limits::unbounded()`, the pre-governance behavior;
//! * `*-default` — `Limits::default()`, what every existing entry point
//!   now uses (the budget claim in EXPERIMENTS.md: within 2% of
//!   unbounded);
//! * `*-deadline` — default plus a far-future deadline, the worst
//!   governed case: the validator must also consult the clock at every
//!   event gate.
//!
//! Same B2b/B10 corpora, warmed schemas, so rows are directly comparable
//! with the B10 `*-streaming` numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use bench::{po_schema, wml_schema};
use limits::Limits;
use validator::validate_str_streaming_with_limits;

fn limit_overhead(c: &mut Criterion) {
    let po = po_schema();
    let wml = wml_schema();
    po.warm();
    wml.warm();
    let unbounded = Limits::unbounded();
    let default = Limits::default();
    // far enough out that it never trips, close enough to be realistic
    let deadline = Limits::default().with_deadline_in(Duration::from_secs(3600));

    let mut group = c.benchmark_group("B11-limit-overhead");
    group.sample_size(15);

    for &n in &[1usize, 10, 100, 1000] {
        let order = webgen::generate_order(17, n);
        let xml = webgen::render_order_string(&order);
        assert!(validate_str_streaming_with_limits(&po, &xml, &default).is_empty());
        group.throughput(Throughput::Bytes(xml.len() as u64));
        for (tag, budget) in [
            ("po-unbounded", &unbounded),
            ("po-default", &default),
            ("po-deadline", &deadline),
        ] {
            group.bench_with_input(BenchmarkId::new(tag, n), &xml, |b, xml| {
                b.iter(|| black_box(validate_str_streaming_with_limits(&po, xml, budget).len()))
            });
        }
    }
    for &n in &[4usize, 64, 512] {
        let data = webgen::DirectoryPageData {
            sub_dirs: (0..n).map(|i| format!("dir{i:04}")).collect(),
            current_dir: "/media/archive".into(),
            parent_dir: "/media".into(),
        };
        let xml = webgen::render_string(&data);
        assert!(validate_str_streaming_with_limits(&wml, &xml, &default).is_empty());
        group.throughput(Throughput::Bytes(xml.len() as u64));
        for (tag, budget) in [
            ("wml-unbounded", &unbounded),
            ("wml-default", &default),
            ("wml-deadline", &deadline),
        ] {
            group.bench_with_input(BenchmarkId::new(tag, n), &xml, |b, xml| {
                b.iter(|| black_box(validate_str_streaming_with_limits(&wml, xml, budget).len()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, limit_overhead);
criterion_main!(benches);
