//! **B15 — compiled templates vs the interpreter.** The `pxml::plan`
//! claim: once a template has passed the static check, rendering it is
//! a memcpy of pre-escaped static bytes plus escaped hole fills — no
//! DOM, no seal, no structural re-validation — so a compiled render
//! should beat the `instantiate`-per-page interpreter by a wide margin
//! while producing byte-identical pages.
//!
//! Compared per page, on the purchase-order and WML directory
//! generators:
//!
//! * `interpreted` — `pxml::instantiate` per page (typed V-DOM build +
//!   seal + serialize);
//! * `compiled`    — `CompiledTemplate::render` per page;
//! * `string`      — unchecked concatenation, the floor.
//!
//! A separate group drives the compiled order renderer through `pool`
//! at 1 and 8 threads to show the per-page cost scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::{po_schema, wml_schema};
use pool::ThreadPool;
use webgen::{CompiledDirectoryPage, DirectoryPageData, OrderTemplates, PxmlDirectoryPage};

fn order_rendering(c: &mut Criterion) {
    let compiled = po_schema();
    let templates = OrderTemplates::new(&compiled).unwrap();
    let mut group = c.benchmark_group("B15-template-render");
    group.sample_size(20);
    for &n in &[1usize, 10, 100] {
        let order = webgen::generate_order(7, n);
        // the three backends agree before we time them
        let page = templates.render_compiled(&order).unwrap();
        assert_eq!(page, templates.render_interpreted(&order).unwrap());
        assert_eq!(page, webgen::render_order_string(&order));
        group.bench_with_input(BenchmarkId::new("orders/string", n), &order, |b, order| {
            b.iter(|| black_box(webgen::render_order_string(order)))
        });
        group.bench_with_input(
            BenchmarkId::new("orders/interpreted", n),
            &order,
            |b, order| b.iter(|| black_box(templates.render_interpreted(order).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("orders/compiled", n),
            &order,
            |b, order| b.iter(|| black_box(templates.render_compiled(order).unwrap())),
        );
    }
    group.finish();
}

fn directory_rendering(c: &mut Criterion) {
    let compiled = wml_schema();
    let interpreted = PxmlDirectoryPage::new(&compiled).unwrap();
    let compiled_page = CompiledDirectoryPage::new(&compiled).unwrap();
    let mut group = c.benchmark_group("B15-template-render-wml");
    group.sample_size(20);
    for &dirs in &[4usize, 32] {
        let data = DirectoryPageData {
            sub_dirs: (0..dirs).map(|i| format!("dir{i}")).collect(),
            current_dir: "/workspace/media".into(),
            parent_dir: "/workspace".into(),
        };
        let page = compiled_page.render(&data).unwrap();
        assert_eq!(page, interpreted.render(&data).unwrap());
        assert_eq!(page, webgen::render_string(&data));
        group.bench_with_input(BenchmarkId::new("wml/string", dirs), &data, |b, data| {
            b.iter(|| black_box(webgen::render_string(data)))
        });
        group.bench_with_input(
            BenchmarkId::new("wml/interpreted", dirs),
            &data,
            |b, data| b.iter(|| black_box(interpreted.render(data).unwrap())),
        );
        group.bench_with_input(BenchmarkId::new("wml/compiled", dirs), &data, |b, data| {
            b.iter(|| black_box(compiled_page.render(data).unwrap()))
        });
    }
    group.finish();
}

fn parallel_order_rendering(c: &mut Criterion) {
    let compiled = po_schema();
    let templates = std::sync::Arc::new(OrderTemplates::new(&compiled).unwrap());
    let orders: Vec<_> = (0..64)
        .map(|seed| webgen::generate_order(seed, 10))
        .collect();
    let mut group = c.benchmark_group("B15-template-render-parallel");
    group.sample_size(20);
    for &threads in &[1usize, 8] {
        let pool = ThreadPool::new(threads);
        group.bench_with_input(
            BenchmarkId::new("orders/compiled-batch64", threads),
            &orders,
            |b, orders| {
                b.iter(|| {
                    let templates = templates.clone();
                    let jobs: Vec<_> = orders.to_vec();
                    black_box(pool.map(jobs, move |order| {
                        templates.render_compiled(&order).unwrap().len()
                    }))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    order_rendering,
    directory_rendering,
    parallel_order_rendering
);
criterion_main!(benches);
