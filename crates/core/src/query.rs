//! Typed queries over V-DOM documents — the paper's stated future work
//! (Sect. 8: "extensions to … XQuery in such a way that a query which is
//! applied to appropriate VDOM-objects can be guaranteed to result only
//! in documents which are valid according to an underlying Xml schema"),
//! realized here for a path-shaped query core.
//!
//! Queries select **typed** handles, and extraction produces fragments
//! that are valid by construction (they are subtrees of a document that
//! could only ever be built validly), so query results can be spliced
//! into other typed documents without revalidation.
//!
//! # Path syntax
//!
//! A query is a `/`-separated sequence of steps evaluated from a context
//! element:
//!
//! * `name` — child elements with that tag;
//! * `*` — all child elements;
//! * `//name` — descendant-or-self elements with that tag (written as a
//!   step prefix, e.g. `items//comment`).
//!
//! ```
//! use schema::{corpus, CompiledSchema};
//! use vdom::parse_typed;
//!
//! let compiled = CompiledSchema::parse(corpus::PURCHASE_ORDER_XSD).unwrap();
//! let td = parse_typed(&compiled, corpus::PURCHASE_ORDER_XML).unwrap();
//! let root = td.typed_root().unwrap();
//! let prices = td.select(root, "items/item/USPrice").unwrap();
//! assert_eq!(prices.len(), 2);
//! ```

use dom::Document;
use schema::TypeRef;

use crate::document::{TypedDocument, TypedElement};
use crate::error::VdomError;

/// A query parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError {
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid query: {}", self.message)
    }
}

impl std::error::Error for QueryError {}

/// One step of a path query.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Step {
    /// `name` — children with this tag.
    Child(String),
    /// `*` — all element children.
    AnyChild,
    /// `//name` — descendants with this tag.
    Descendant(String),
}

fn parse_path(path: &str) -> Result<Vec<Step>, QueryError> {
    if path.is_empty() {
        return Err(QueryError {
            message: "empty path".to_string(),
        });
    }
    let mut steps = Vec::new();
    let mut rest = path;
    loop {
        let (descendant, body) = match rest.strip_prefix("//") {
            Some(b) => (true, b),
            None => (false, rest.strip_prefix('/').unwrap_or(rest)),
        };
        let (name, tail) = match body.find('/') {
            Some(i) => (&body[..i], &body[i..]),
            None => (body, ""),
        };
        if name.is_empty() {
            return Err(QueryError {
                message: format!("empty step in {path:?}"),
            });
        }
        steps.push(match (descendant, name) {
            (true, n) => Step::Descendant(n.to_string()),
            (false, "*") => Step::AnyChild,
            (false, n) => Step::Child(n.to_string()),
        });
        if tail.is_empty() {
            return Ok(steps);
        }
        rest = tail;
    }
}

/// A fragment extracted from a typed document: a standalone document
/// holding a copy of a (valid) subtree, plus its root's type — ready for
/// [`TypedDocument::import_element`] into another typed document.
#[derive(Debug, Clone)]
pub struct ExtractedFragment {
    /// The fragment's root tag.
    pub tag: String,
    /// The root element's schema type.
    pub type_ref: TypeRef,
    /// The standalone document.
    pub doc: Document,
    /// The fragment root within `doc`.
    pub root: dom::NodeId,
}

impl TypedDocument {
    /// Evaluates a path query from `context`, returning typed handles in
    /// document order.
    pub fn select(
        &self,
        context: TypedElement,
        path: &str,
    ) -> Result<Vec<TypedElement>, QueryError> {
        let steps = parse_path(path)?;
        let doc = self.dom();
        let mut current = vec![context.node()];
        for step in &steps {
            let mut next = Vec::new();
            for &node in &current {
                match step {
                    Step::Child(name) => {
                        next.extend(
                            doc.child_elements(node)
                                .filter(|&c| doc.tag_name(c).map(|t| t == name).unwrap_or(false)),
                        );
                    }
                    Step::AnyChild => next.extend(doc.child_elements(node)),
                    Step::Descendant(name) => {
                        next.extend(
                            doc.descendants(node)
                                .filter(|&d| doc.tag_name(d).map(|t| t == name).unwrap_or(false)),
                        );
                    }
                }
            }
            next.dedup();
            current = next;
        }
        Ok(current
            .into_iter()
            .filter_map(|n| self.typed_handle(n))
            .collect())
    }

    /// Selects at most one element (the first in document order).
    pub fn select_first(
        &self,
        context: TypedElement,
        path: &str,
    ) -> Result<Option<TypedElement>, QueryError> {
        Ok(self.select(context, path)?.into_iter().next())
    }

    /// The concatenated text of every element selected by `path`.
    pub fn select_text(
        &self,
        context: TypedElement,
        path: &str,
    ) -> Result<Vec<String>, QueryError> {
        Ok(self
            .select(context, path)?
            .into_iter()
            .map(|el| self.dom().text_content(el.node()).unwrap_or_default())
            .collect())
    }

    /// Extracts a selected element as a standalone fragment.
    ///
    /// The source document could only ever be constructed validly, so the
    /// copy is valid for its type — the "queries yield valid documents"
    /// guarantee of the paper's Sect. 8.
    pub fn extract(&self, element: TypedElement) -> Result<ExtractedFragment, VdomError> {
        let type_ref = self.type_of(element)?.clone();
        let tag = self
            .dom()
            .tag_name(element.node())
            .map_err(|e| VdomError::Dom(e.to_string()))?
            .to_string();
        let mut doc = Document::new();
        let copy = doc
            .import_subtree(self.dom(), element.node())
            .map_err(|e| VdomError::Dom(e.to_string()))?;
        let dn = doc.document_node();
        doc.append_child(dn, copy)
            .map_err(|e| VdomError::Dom(e.to_string()))?;
        Ok(ExtractedFragment {
            tag,
            type_ref,
            doc,
            root: copy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::parse_typed;
    use schema::corpus::{PURCHASE_ORDER_XML, PURCHASE_ORDER_XSD};
    use schema::CompiledSchema;

    fn td() -> TypedDocument {
        let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
        parse_typed(&compiled, PURCHASE_ORDER_XML).unwrap()
    }

    #[test]
    fn child_paths() {
        let td = td();
        let root = td.typed_root().unwrap();
        let names = td.select_text(root, "shipTo/name").unwrap();
        assert_eq!(names, ["Alice Smith"]);
        let products = td.select_text(root, "items/item/productName").unwrap();
        assert_eq!(products, ["Lawnmower", "Baby Monitor"]);
    }

    #[test]
    fn wildcard_and_descendant_steps() {
        let td = td();
        let root = td.typed_root().unwrap();
        // * selects all children of shipTo
        assert_eq!(td.select(root, "shipTo/*").unwrap().len(), 5);
        // //comment finds both the order comment and the item comment
        assert_eq!(td.select(root, "//comment").unwrap().len(), 2);
        // scoped descendant
        assert_eq!(td.select(root, "items//comment").unwrap().len(), 1);
    }

    #[test]
    fn select_first_and_empty_results() {
        let td = td();
        let root = td.typed_root().unwrap();
        assert!(td.select_first(root, "billTo").unwrap().is_some());
        assert!(td.select_first(root, "noSuchChild").unwrap().is_none());
        assert!(td.select(root, "shipTo/items").unwrap().is_empty());
    }

    #[test]
    fn bad_paths_rejected() {
        let td = td();
        let root = td.typed_root().unwrap();
        assert!(td.select(root, "").is_err());
        assert!(td.select(root, "a//").is_err());
        assert!(td.select(root, "a///b").is_err());
    }

    #[test]
    fn selected_handles_are_typed() {
        let td = td();
        let root = td.typed_root().unwrap();
        let ship = td.select_first(root, "shipTo").unwrap().unwrap();
        assert_eq!(
            td.type_of(ship).unwrap(),
            &TypeRef::Named("USAddress".into())
        );
    }

    #[test]
    fn extract_and_reinsert_without_revalidation() {
        let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
        let source = td();
        let root = source.typed_root().unwrap();
        let ship = source.select_first(root, "shipTo").unwrap().unwrap();
        let frag = source.extract(ship).unwrap();
        assert_eq!(frag.tag, "shipTo");
        assert_eq!(frag.type_ref, TypeRef::Named("USAddress".into()));

        // splice the extracted fragment into a fresh typed document
        let mut target = TypedDocument::new(compiled.clone());
        let po = target.create_root("purchaseOrder").unwrap();
        target.import_element(po, &frag.doc, frag.root).unwrap();
        // its children continue as billTo etc.
        assert_eq!(target.expected_children(po).unwrap(), ["billTo"]);
    }

    #[test]
    fn extract_comment_has_builtin_type() {
        let source = td();
        let root = source.typed_root().unwrap();
        let comment = source.select_first(root, "comment").unwrap().unwrap();
        let frag = source.extract(comment).unwrap();
        assert!(matches!(frag.type_ref, TypeRef::Builtin(_)));
        assert_eq!(
            frag.doc.text_content(frag.root).unwrap(),
            "Hurry, my lawn is going wild"
        );
    }
}
