//! A fluent construction facade over [`TypedDocument`] — the ergonomic
//! equivalent of the paper's generated `create…` factory methods for
//! callers that use the dynamic (non-generated) API.

use dom::Document;
use schema::CompiledSchema;

use crate::document::{TypedDocument, TypedElement};
use crate::error::VdomError;

/// Builder positioned at one element of a [`TypedDocument`].
pub struct ElementBuilder<'a> {
    td: &'a mut TypedDocument,
    element: TypedElement,
}

impl<'a> ElementBuilder<'a> {
    /// Sets an attribute (checked immediately).
    pub fn attr(&mut self, name: &str, value: &str) -> Result<&mut Self, VdomError> {
        self.td.set_attribute(self.element, name, value)?;
        Ok(self)
    }

    /// Appends character data (checked immediately).
    pub fn text(&mut self, text: &str) -> Result<&mut Self, VdomError> {
        self.td.append_text(self.element, text)?;
        Ok(self)
    }

    /// Appends a child element and descends into it via `f`.
    pub fn child(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut ElementBuilder<'_>) -> Result<(), VdomError>,
    ) -> Result<&mut Self, VdomError> {
        let child = self.td.append_element(self.element, name)?;
        let mut builder = ElementBuilder {
            td: self.td,
            element: child,
        };
        f(&mut builder)?;
        Ok(self)
    }

    /// Appends a child element containing only text — the common case for
    /// simple-typed elements (`<name>Alice Smith</name>`).
    pub fn leaf(&mut self, name: &str, text: &str) -> Result<&mut Self, VdomError> {
        self.child(name, |c| c.text(text).map(|_| ()))
    }

    /// The typed handle of the element being built.
    pub fn element(&self) -> TypedElement {
        self.element
    }

    /// The underlying typed document (for introspection mid-build).
    pub fn document(&self) -> &TypedDocument {
        self.td
    }
}

/// Builds a complete, sealed document in one expression.
///
/// # Example
///
/// ```
/// use schema::CompiledSchema;
/// use vdom::build_document;
///
/// let xsd = r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
///   <xsd:element name="note" type="NoteType"/>
///   <xsd:complexType name="NoteType">
///     <xsd:sequence><xsd:element name="body" type="xsd:string"/></xsd:sequence>
///   </xsd:complexType>
/// </xsd:schema>"#;
/// let compiled = CompiledSchema::parse(xsd).unwrap();
/// let doc = build_document(&compiled, "note", |b| {
///     b.leaf("body", "hello")?;
///     Ok(())
/// }).unwrap();
/// let root = doc.root_element().unwrap();
/// assert_eq!(dom::serialize(&doc, root).unwrap(), "<note><body>hello</body></note>");
/// ```
pub fn build_document(
    compiled: &CompiledSchema,
    root: &str,
    f: impl FnOnce(&mut ElementBuilder<'_>) -> Result<(), VdomError>,
) -> Result<Document, VdomError> {
    let mut td = TypedDocument::new(compiled.clone());
    let root_el = td.create_root(root)?;
    let mut builder = ElementBuilder {
        td: &mut td,
        element: root_el,
    };
    f(&mut builder)?;
    td.seal()
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::corpus::PURCHASE_ORDER_XSD;

    #[test]
    fn builder_constructs_valid_purchase_order() {
        let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
        let doc = build_document(&compiled, "purchaseOrder", |b| {
            b.attr("orderDate", "1999-10-20")?
                .child("shipTo", |s| {
                    s.attr("country", "US")?
                        .leaf("name", "Alice Smith")?
                        .leaf("street", "123 Maple Street")?
                        .leaf("city", "Mill Valley")?
                        .leaf("state", "CA")?
                        .leaf("zip", "90952")?;
                    Ok(())
                })?
                .child("billTo", |s| {
                    s.attr("country", "US")?
                        .leaf("name", "Robert Smith")?
                        .leaf("street", "8 Oak Avenue")?
                        .leaf("city", "Old Town")?
                        .leaf("state", "PA")?
                        .leaf("zip", "95819")?;
                    Ok(())
                })?
                .leaf("comment", "Hurry, my lawn is going wild")?
                .child("items", |items| {
                    items.child("item", |i| {
                        i.attr("partNum", "872-AA")?
                            .leaf("productName", "Lawnmower")?
                            .leaf("quantity", "1")?
                            .leaf("USPrice", "148.95")?;
                        Ok(())
                    })?;
                    Ok(())
                })?;
            Ok(())
        })
        .unwrap();
        let errors =
            validator::validate_document(&CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap(), &doc);
        assert!(errors.is_empty(), "{errors:#?}");
    }

    #[test]
    fn builder_propagates_errors() {
        let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
        let err = build_document(&compiled, "purchaseOrder", |b| {
            b.leaf("items", "")?; // wrong first child
            Ok(())
        })
        .unwrap_err();
        assert!(matches!(err, VdomError::ContentModel { .. }));
    }
}
