//! Errors raised by the typed V-DOM layer at *construction* time — the
//! errors that, in the paper's argument, replace whole-document test runs.

use std::fmt;

use automata::StepError;
use schema::SimpleTypeError;

/// A typed-construction error.
#[derive(Debug, Clone)]
pub enum VdomError {
    /// No global element with this name is declared.
    NotDeclared(String),
    /// The element (or its type) is abstract and cannot be instantiated.
    Abstract(String),
    /// The child element is not allowed at this point of the parent's
    /// content model.
    ContentModel {
        /// Parent element name.
        parent: String,
        /// The rejected step.
        step: StepError,
    },
    /// The element's content model is not yet satisfied.
    Incomplete {
        /// Element name.
        element: String,
        /// Child elements still expected.
        expected: Vec<String>,
    },
    /// Character data is not allowed in this element.
    TextNotAllowed {
        /// Element name.
        element: String,
    },
    /// A simple-typed value (text content or attribute) failed validation.
    Simple {
        /// Element name.
        element: String,
        /// Attribute name, when the value was an attribute.
        attribute: Option<String>,
        /// The underlying error.
        error: SimpleTypeError,
    },
    /// The attribute is not declared for the element's type.
    UndeclaredAttribute {
        /// Element name.
        element: String,
        /// Attribute name.
        attribute: String,
    },
    /// A `fixed` attribute was set to a different value.
    FixedMismatch {
        /// Element name.
        element: String,
        /// Attribute name.
        attribute: String,
        /// The schema-required value.
        fixed: String,
    },
    /// A required attribute is missing at `finish` time.
    MissingAttribute {
        /// Element name.
        element: String,
        /// Attribute name.
        attribute: String,
    },
    /// The handle does not belong to this typed document or was finished.
    BadHandle,
    /// The child element name is not declared inside the parent's type.
    UnknownChild {
        /// Parent element name.
        parent: String,
        /// The unknown child name.
        child: String,
    },
    /// Internal DOM error (stale node, cycle): indicates handle misuse.
    Dom(String),
}

impl fmt::Display for VdomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VdomError::NotDeclared(n) => {
                write!(f, "element <{n}> is not declared in the schema")
            }
            VdomError::Abstract(n) => write!(f, "<{n}> is abstract and cannot be instantiated"),
            VdomError::ContentModel { parent, step } => {
                write!(f, "in <{parent}>: {step}")
            }
            VdomError::Incomplete { element, expected } => write!(
                f,
                "<{element}> is incomplete; still expecting: {}",
                expected.join(", ")
            ),
            VdomError::TextNotAllowed { element } => {
                write!(f, "character data is not allowed in <{element}>")
            }
            VdomError::Simple {
                element,
                attribute: Some(a),
                error,
            } => write!(f, "attribute {a} of <{element}>: {error}"),
            VdomError::Simple {
                element,
                attribute: None,
                error,
            } => write!(f, "content of <{element}>: {error}"),
            VdomError::UndeclaredAttribute { element, attribute } => {
                write!(f, "attribute {attribute} is not declared for <{element}>")
            }
            VdomError::FixedMismatch {
                element,
                attribute,
                fixed,
            } => write!(
                f,
                "attribute {attribute} of <{element}> is fixed to {fixed:?}"
            ),
            VdomError::MissingAttribute { element, attribute } => {
                write!(f, "<{element}> is missing required attribute {attribute}")
            }
            VdomError::BadHandle => write!(f, "typed handle is stale or foreign"),
            VdomError::UnknownChild { parent, child } => {
                write!(f, "<{child}> is not declared inside the type of <{parent}>")
            }
            VdomError::Dom(m) => write!(f, "DOM error: {m}"),
        }
    }
}

impl std::error::Error for VdomError {}
