//! Typed tree dumps — the paper's Fig. 7: the same fragment as Fig. 4,
//! but every node labelled with its *generated interface* name instead of
//! the generic `Element`.

use std::fmt::Write as _;

use dom::NodeKind;
use schema::{TypeDef, TypeRef};

use crate::document::{TypedDocument, TypedElement};
use crate::error::VdomError;

/// Renders the subtree at `element` with V-DOM interface labels.
///
/// Elements print as `{name}Element : {Type}Type` (the interface of the
/// element and of its content type), mirroring how Fig. 7 contrasts with
/// Fig. 4's uniform `Element` labels.
pub fn dump_typed(td: &TypedDocument, element: TypedElement) -> Result<String, VdomError> {
    let mut out = String::new();
    dump_into(td, element.node(), 0, &mut out)?;
    Ok(out)
}

fn interface_of_type(td: &TypedDocument, type_ref: &TypeRef) -> String {
    match type_ref {
        TypeRef::Builtin(b) => b.name().to_string(),
        TypeRef::Named(n) | TypeRef::Anonymous(n) => match td.compiled().schema().type_def(n) {
            Some(TypeDef::Complex(_)) => format!("{n}Type"),
            _ => n.clone(),
        },
    }
}

fn dump_into(
    td: &TypedDocument,
    node: dom::NodeId,
    depth: usize,
    out: &mut String,
) -> Result<(), VdomError> {
    let doc = td.dom();
    for _ in 0..depth {
        out.push_str("  ");
    }
    match doc.kind(node).map_err(|e| VdomError::Dom(e.to_string()))? {
        NodeKind::Element { name, attributes } => {
            let type_label = td
                .type_of(TypedElement { node })
                .map(|t| interface_of_type(td, t))
                .unwrap_or_else(|_| "?".to_string());
            let _ = write!(out, "{name}Element : {type_label}");
            for a in attributes {
                let _ = write!(out, " {}={:?}", a.name, a.value);
            }
            out.push('\n');
        }
        NodeKind::Text(t) => {
            let _ = writeln!(out, "Text {t:?}");
        }
        other => {
            let _ = writeln!(out, "{other:?}");
        }
    }
    for child in doc
        .child_vec(node)
        .map_err(|e| VdomError::Dom(e.to_string()))?
    {
        dump_into(td, child, depth + 1, out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::TypedDocument;
    use schema::corpus::PURCHASE_ORDER_XSD;
    use schema::CompiledSchema;

    #[test]
    fn typed_dump_shows_interface_names() {
        let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
        let mut td = TypedDocument::new(compiled);
        let root = td.create_root("purchaseOrder").unwrap();
        let ship = td.append_element(root, "shipTo").unwrap();
        let name = td.append_element(ship, "name").unwrap();
        td.append_text(name, "Alice Smith").unwrap();

        let dump = dump_typed(&td, root).unwrap();
        assert_eq!(
            dump,
            "purchaseOrderElement : PurchaseOrderTypeType\n  \
             shipToElement : USAddressType\n    \
             nameElement : string\n      \
             Text \"Alice Smith\"\n"
        );
    }
}
