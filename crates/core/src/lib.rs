//! **V-DOM** — the Validating Document Object Model, the paper's primary
//! contribution (Sect. 3).
//!
//! Where the plain DOM (`dom` crate) lets a program build *any* tree and
//! discover schema violations only when a validator runs (`validator`
//! crate), a [`TypedDocument`] makes invalid trees **unrepresentable
//! during construction**:
//!
//! * every element handle carries its schema type;
//! * appending a child advances the parent's content-model DFA and fails
//!   immediately on a wrong or misplaced element;
//! * attribute writes and simple-typed values are checked on the spot;
//! * what is inherently a completion property — occurrence constraints
//!   and required attributes — is checked by [`TypedDocument::finish`] /
//!   [`TypedDocument::seal`], still at construction time (the paper makes
//!   the same concession for occurrence constraints in Sect. 3, rule 5).
//!
//! In the paper's Java/IDL setting the *host compiler* enforces these
//! rules through one generated interface per element type; the `codegen`
//! crate provides that static layer for Rust. This crate is the dynamic
//! engine those generated types call into — and a complete typed API in
//! its own right:
//!
//! ```
//! use schema::{corpus, CompiledSchema};
//! use vdom::TypedDocument;
//!
//! let compiled = CompiledSchema::parse(corpus::PURCHASE_ORDER_XSD).unwrap();
//! let mut td = TypedDocument::new(compiled);
//! let po = td.create_root("purchaseOrder").unwrap();
//! // items cannot come before shipTo — rejected at the call site:
//! assert!(td.append_element(po, "items").is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod document;
pub mod dump;
pub mod error;
pub mod fragment;
pub mod query;

pub use builder::{build_document, ElementBuilder};
pub use document::{TypedDocument, TypedElement};
pub use dump::dump_typed;
pub use error::VdomError;
pub use fragment::parse_typed;
pub use query::{ExtractedFragment, QueryError};
