//! The typed document: a DOM that cannot be driven into an invalid
//! state.
//!
//! Every element handle carries its schema type; every mutation is
//! checked *as it happens*:
//!
//! * appending a child advances the parent's materialized content-model
//!   DFA (O(1) per append, no re-validation of earlier children);
//! * text insertion is rejected in element-only content and validated
//!   against the simple type in simple content;
//! * attribute writes are checked against the declared attribute uses,
//!   including `fixed` values and simple-type facets.
//!
//! What cannot be checked eagerly — content-model *completeness* and
//! required attributes — is checked by [`TypedDocument::finish`] per
//! element and by [`TypedDocument::seal`] for the whole tree, which are
//! still construction-time checks, not test runs (paper Sect. 3: the
//! occurrence-constraint caveat).

use std::collections::HashMap;

use automata::{DfaMatcher, Matcher};
use dom::{Document, NodeId};
use schema::{CompiledSchema, ContentModel, ElementDecl, TypeDef, TypeRef};

use crate::error::VdomError;

/// A typed element handle: the node plus its schema type.
///
/// Copyable, like `dom::NodeId`; validity is re-checked against the
/// owning [`TypedDocument`] on every use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypedElement {
    pub(crate) node: NodeId,
}

impl TypedElement {
    /// The underlying untyped node id (for read-only DOM access).
    pub fn node(self) -> NodeId {
        self.node
    }
}

/// Per-element typed state.
#[derive(Debug, Clone)]
struct ElementState {
    type_ref: TypeRef,
    /// Content matcher for complex element-only/mixed content.
    matcher: Option<DfaMatcher>,
    /// Whether text is allowed (mixed or simple content).
    text_allowed: bool,
    /// Whether the content is simple (text validated at finish).
    simple_content: Option<TypeRef>,
    finished: bool,
}

/// A schema-typed document under construction.
#[derive(Debug, Clone)]
pub struct TypedDocument {
    compiled: CompiledSchema,
    doc: Document,
    states: HashMap<NodeId, ElementState>,
}

impl TypedDocument {
    /// Creates an empty typed document over `compiled`.
    pub fn new(compiled: CompiledSchema) -> TypedDocument {
        TypedDocument {
            compiled,
            doc: Document::new(),
            states: HashMap::new(),
        }
    }

    /// The schema this document is typed against.
    pub fn compiled(&self) -> &CompiledSchema {
        &self.compiled
    }

    /// Read-only access to the underlying DOM (serialization, dumps).
    pub fn dom(&self) -> &Document {
        &self.doc
    }

    fn decl(&self, name: &str) -> Result<&ElementDecl, VdomError> {
        self.compiled
            .schema()
            .element(name)
            .ok_or_else(|| VdomError::NotDeclared(name.to_string()))
    }

    /// Whether `el`'s content model permits character data (mixed or
    /// simple content).
    pub(crate) fn allows_text(&self, el: TypedElement) -> Result<bool, VdomError> {
        Ok(self.state(el)?.text_allowed)
    }

    fn state(&self, el: TypedElement) -> Result<&ElementState, VdomError> {
        self.states.get(&el.node).ok_or(VdomError::BadHandle)
    }

    fn state_mut(&mut self, el: TypedElement) -> Result<&mut ElementState, VdomError> {
        self.states.get_mut(&el.node).ok_or(VdomError::BadHandle)
    }

    /// Initializes typed state for an element of `type_ref`.
    fn init_state(&self, name: &str, type_ref: &TypeRef) -> Result<ElementState, VdomError> {
        let schema = self.compiled.schema();
        let (matcher, text_allowed, simple_content) =
            match type_ref {
                TypeRef::Builtin(_) => (None, true, Some(type_ref.clone())),
                TypeRef::Named(n) | TypeRef::Anonymous(n) => match schema.type_def(n) {
                    Some(TypeDef::Simple(_)) => (None, true, Some(type_ref.clone())),
                    Some(TypeDef::Complex(ct)) => {
                        if ct.is_abstract {
                            return Err(VdomError::Abstract(name.to_string()));
                        }
                        match &ct.content {
                            ContentModel::Simple(inner) => (None, true, Some(inner.clone())),
                            ContentModel::Empty => (None, false, None),
                            ContentModel::ElementOnly(_) => {
                                let dfa = self.compiled.content_dfa(n).map_err(|e| {
                                    VdomError::Simple {
                                        element: name.to_string(),
                                        attribute: None,
                                        error: e,
                                    }
                                })?;
                                (Some(dfa.start()), false, None)
                            }
                            ContentModel::Mixed(_) => {
                                let dfa = self.compiled.content_dfa(n).map_err(|e| {
                                    VdomError::Simple {
                                        element: name.to_string(),
                                        attribute: None,
                                        error: e,
                                    }
                                })?;
                                (Some(dfa.start()), true, None)
                            }
                        }
                    }
                    None => return Err(VdomError::NotDeclared(n.clone())),
                },
            };
        Ok(ElementState {
            type_ref: type_ref.clone(),
            matcher,
            text_allowed,
            simple_content,
            finished: false,
        })
    }

    // ---- creation --------------------------------------------------------

    /// Creates the root element from a global element declaration and
    /// attaches it to the document. Abstract elements are rejected.
    pub fn create_root(&mut self, name: &str) -> Result<TypedElement, VdomError> {
        let decl = self.decl(name)?;
        if decl.is_abstract {
            return Err(VdomError::Abstract(name.to_string()));
        }
        let type_ref = decl.type_ref.clone();
        let state = self.init_state(name, &type_ref)?;
        let node = self
            .doc
            .create_element(name)
            .map_err(|e| VdomError::Dom(e.to_string()))?;
        let doc_node = self.doc.document_node();
        self.doc
            .append_child(doc_node, node)
            .map_err(|e| VdomError::Dom(e.to_string()))?;
        self.states.insert(node, state);
        Ok(TypedElement { node })
    }

    /// Creates the root element with an explicitly given type, for
    /// fragments rooted at *locally* declared elements (e.g. a `shipTo`
    /// of type `USAddress`, which is not a global declaration). The
    /// paper's P-XML constructors rely on exactly this: the V-DOM
    /// variable's interface determines the type.
    pub fn create_root_typed(
        &mut self,
        name: &str,
        type_ref: &TypeRef,
    ) -> Result<TypedElement, VdomError> {
        let state = self.init_state(name, type_ref)?;
        let node = self
            .doc
            .create_element(name)
            .map_err(|e| VdomError::Dom(e.to_string()))?;
        let doc_node = self.doc.document_node();
        self.doc
            .append_child(doc_node, node)
            .map_err(|e| VdomError::Dom(e.to_string()))?;
        self.states.insert(node, state);
        Ok(TypedElement { node })
    }

    /// Appends a new child element to `parent`, advancing the parent's
    /// content-model DFA. The child's type is looked up in the schema;
    /// appending anything the model does not allow fails immediately.
    pub fn append_element(
        &mut self,
        parent: TypedElement,
        name: &str,
    ) -> Result<TypedElement, VdomError> {
        let parent_name = self
            .doc
            .tag_name(parent.node)
            .map_err(|e| VdomError::Dom(e.to_string()))?
            .to_string();
        let parent_state = self.state(parent)?;
        if parent_state.finished {
            return Err(VdomError::BadHandle);
        }
        // the child's declared type, found within the parent's type
        let child_type = match &parent_state.type_ref {
            TypeRef::Named(n) | TypeRef::Anonymous(n) => self
                .compiled
                .child_element_type(n, name)
                .ok_or_else(|| VdomError::UnknownChild {
                    parent: parent_name.clone(),
                    child: name.to_string(),
                })?,
            TypeRef::Builtin(_) => {
                return Err(VdomError::UnknownChild {
                    parent: parent_name,
                    child: name.to_string(),
                })
            }
        };
        let child_state = self.init_state(name, &child_type)?;
        // advance the parent's matcher (the incremental check)
        {
            let state = self.state_mut(parent)?;
            match &mut state.matcher {
                Some(m) => {
                    m.step(name).map_err(|step| VdomError::ContentModel {
                        parent: parent_name.clone(),
                        step,
                    })?;
                }
                None => {
                    // empty or simple content: no element children at all
                    return Err(VdomError::ContentModel {
                        parent: parent_name,
                        step: automata::StepError {
                            got: name.to_string(),
                            expected: Vec::new(),
                            could_end: true,
                        },
                    });
                }
            }
        }
        let node = self
            .doc
            .create_element(name)
            .map_err(|e| VdomError::Dom(e.to_string()))?;
        self.doc
            .append_child(parent.node, node)
            .map_err(|e| VdomError::Dom(e.to_string()))?;
        self.states.insert(node, child_state);
        Ok(TypedElement { node })
    }

    /// Appends character data. Allowed in mixed and simple content only;
    /// simple-typed text is validated when the element is finished (the
    /// value may be built up from several appends).
    pub fn append_text(
        &mut self,
        element: TypedElement,
        text: impl Into<String>,
    ) -> Result<(), VdomError> {
        let state = self.state(element)?;
        if !state.text_allowed {
            return Err(VdomError::TextNotAllowed {
                element: self
                    .doc
                    .tag_name(element.node)
                    .unwrap_or_default()
                    .to_string(),
            });
        }
        let text = text.into();
        if text.is_empty() {
            // no node: "" contributes nothing to the text content, and an
            // empty text node would force `<tag></tag>` over `<tag/>`
            return Ok(());
        }
        let t = self.doc.create_text(text);
        self.doc
            .append_child(element.node, t)
            .map_err(|e| VdomError::Dom(e.to_string()))?;
        Ok(())
    }

    /// Sets an attribute, validating it against the declared uses.
    pub fn set_attribute(
        &mut self,
        element: TypedElement,
        name: &str,
        value: impl Into<String>,
    ) -> Result<(), VdomError> {
        let element_name = self
            .doc
            .tag_name(element.node)
            .map_err(|e| VdomError::Dom(e.to_string()))?
            .to_string();
        let state = self.state(element)?;
        let value = value.into();
        let declared = match &state.type_ref {
            TypeRef::Named(n) | TypeRef::Anonymous(n) => self
                .compiled
                .effective_attributes(n)
                .unwrap_or_else(|_| Vec::new().into()),
            TypeRef::Builtin(_) => Vec::new().into(),
        };
        let decl = declared.iter().find(|a| a.name == name).ok_or_else(|| {
            VdomError::UndeclaredAttribute {
                element: element_name.clone(),
                attribute: name.to_string(),
            }
        })?;
        self.compiled
            .schema()
            .validate_simple_value(&decl.type_ref, &value)
            .map_err(|error| VdomError::Simple {
                element: element_name.clone(),
                attribute: Some(name.to_string()),
                error,
            })?;
        if let Some(fixed) = &decl.fixed {
            if &value != fixed {
                return Err(VdomError::FixedMismatch {
                    element: element_name,
                    attribute: name.to_string(),
                    fixed: fixed.clone(),
                });
            }
        }
        self.doc
            .set_attribute(element.node, name, value)
            .map_err(|e| VdomError::Dom(e.to_string()))?;
        Ok(())
    }

    // ---- completion ------------------------------------------------------

    /// Finishes an element: content-model completeness, simple-content
    /// value validity, and required attributes. Children must have been
    /// finished (they are finished automatically when complete).
    pub fn finish(&mut self, element: TypedElement) -> Result<(), VdomError> {
        let element_name = self
            .doc
            .tag_name(element.node)
            .map_err(|e| VdomError::Dom(e.to_string()))?
            .to_string();
        // completeness of element content
        let state = self.state(element)?;
        if let Some(m) = &state.matcher {
            if !m.is_accepting() {
                return Err(VdomError::Incomplete {
                    element: element_name,
                    expected: m.expected(),
                });
            }
        }
        // simple content value
        if let Some(simple) = state.simple_content.clone() {
            let text = self
                .doc
                .text_content(element.node)
                .map_err(|e| VdomError::Dom(e.to_string()))?;
            self.compiled
                .schema()
                .validate_simple_value(&simple, &text)
                .map_err(|error| VdomError::Simple {
                    element: element_name.clone(),
                    attribute: None,
                    error,
                })?;
        }
        // required attributes
        if let TypeRef::Named(n) | TypeRef::Anonymous(n) = &state.type_ref {
            if let Ok(attrs) = self.compiled.effective_attributes(n) {
                for a in attrs.iter() {
                    if a.required
                        && self
                            .doc
                            .attribute(element.node, &a.name)
                            .ok()
                            .flatten()
                            .is_none()
                    {
                        return Err(VdomError::MissingAttribute {
                            element: element_name,
                            attribute: a.name.clone(),
                        });
                    }
                }
            }
        }
        self.state_mut(element)?.finished = true;
        Ok(())
    }

    /// Finishes every unfinished element (bottom-up) and returns the
    /// underlying document, which is guaranteed valid.
    pub fn seal(mut self) -> Result<Document, VdomError> {
        let root = self
            .doc
            .root_element()
            .ok_or(VdomError::NotDeclared("(no root)".to_string()))?;
        // bottom-up: children first
        let order: Vec<NodeId> = self.doc.descendants(root).collect();
        for node in order.into_iter().rev() {
            if self.states.contains_key(&node) {
                let el = TypedElement { node };
                if !self.state(el)?.finished {
                    self.finish(el)?;
                }
            }
        }
        Ok(self.doc)
    }

    /// The typed handle for the document's root element, if present.
    pub fn typed_root(&self) -> Option<TypedElement> {
        self.doc.root_element().and_then(|n| self.typed_handle(n))
    }

    /// Recovers the typed handle for a node of this document (e.g. one
    /// found through read-only DOM traversal); `None` when the node is
    /// not a typed element of this document.
    pub fn typed_handle(&self, node: NodeId) -> Option<TypedElement> {
        self.states
            .contains_key(&node)
            .then_some(TypedElement { node })
    }

    /// The element's declared type.
    pub fn type_of(&self, element: TypedElement) -> Result<&TypeRef, VdomError> {
        Ok(&self.state(element)?.type_ref)
    }

    /// Child element names currently acceptable for `element`.
    pub fn expected_children(&self, element: TypedElement) -> Result<Vec<String>, VdomError> {
        Ok(self
            .state(element)?
            .matcher
            .as_ref()
            .map(|m| m.expected())
            .unwrap_or_default())
    }

    /// Whether `element`'s content is currently complete.
    pub fn is_complete(&self, element: TypedElement) -> Result<bool, VdomError> {
        Ok(self
            .state(element)?
            .matcher
            .as_ref()
            .map(|m| m.is_accepting())
            .unwrap_or(true))
    }

    /// Serializes the current tree (valid prefix) compactly.
    pub fn serialize(&self) -> String {
        match self.doc.root_element() {
            Some(root) => dom::serialize(&self.doc, root).unwrap_or_default(),
            None => String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::corpus::{PURCHASE_ORDER_XSD, SUBSTITUTION_XSD, WML_XSD};

    fn po() -> CompiledSchema {
        CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap()
    }

    fn build_address(
        td: &mut TypedDocument,
        parent: TypedElement,
        tag: &str,
        name: &str,
    ) -> TypedElement {
        let addr = td.append_element(parent, tag).unwrap();
        td.set_attribute(addr, "country", "US").unwrap();
        for (child, value) in [
            ("name", name),
            ("street", "123 Maple Street"),
            ("city", "Mill Valley"),
            ("state", "CA"),
            ("zip", "90952"),
        ] {
            let c = td.append_element(addr, child).unwrap();
            td.append_text(c, value).unwrap();
        }
        addr
    }

    #[test]
    fn build_valid_purchase_order() {
        let mut td = TypedDocument::new(po());
        let root = td.create_root("purchaseOrder").unwrap();
        td.set_attribute(root, "orderDate", "1999-10-20").unwrap();
        build_address(&mut td, root, "shipTo", "Alice Smith");
        build_address(&mut td, root, "billTo", "Robert Smith");
        let comment = td.append_element(root, "comment").unwrap();
        td.append_text(comment, "Hurry, my lawn is going wild")
            .unwrap();
        let items = td.append_element(root, "items").unwrap();
        let item = td.append_element(items, "item").unwrap();
        td.set_attribute(item, "partNum", "872-AA").unwrap();
        for (c, v) in [
            ("productName", "Lawnmower"),
            ("quantity", "1"),
            ("USPrice", "148.95"),
        ] {
            let n = td.append_element(item, c).unwrap();
            td.append_text(n, v).unwrap();
        }
        let doc = td.seal().unwrap();
        // the sealed document passes the independent runtime validator
        let errors = validator::validate_document(&po(), &doc);
        assert!(errors.is_empty(), "{errors:#?}");
    }

    #[test]
    fn wrong_child_rejected_immediately() {
        let mut td = TypedDocument::new(po());
        let root = td.create_root("purchaseOrder").unwrap();
        // items before shipTo is rejected at the append, not at a test run
        let err = td.append_element(root, "items").unwrap_err();
        match err {
            VdomError::ContentModel { parent, step } => {
                assert_eq!(parent, "purchaseOrder");
                assert_eq!(step.expected, ["shipTo"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_child_rejected() {
        let mut td = TypedDocument::new(po());
        let root = td.create_root("purchaseOrder").unwrap();
        assert!(matches!(
            td.append_element(root, "nonsense"),
            Err(VdomError::UnknownChild { .. })
        ));
    }

    #[test]
    fn text_in_element_only_content_rejected() {
        let mut td = TypedDocument::new(po());
        let root = td.create_root("purchaseOrder").unwrap();
        assert!(matches!(
            td.append_text(root, "stray"),
            Err(VdomError::TextNotAllowed { .. })
        ));
    }

    #[test]
    fn bad_attribute_value_rejected_at_set() {
        let mut td = TypedDocument::new(po());
        let root = td.create_root("purchaseOrder").unwrap();
        assert!(matches!(
            td.set_attribute(root, "orderDate", "not-a-date"),
            Err(VdomError::Simple { .. })
        ));
        assert!(matches!(
            td.set_attribute(root, "bogus", "x"),
            Err(VdomError::UndeclaredAttribute { .. })
        ));
    }

    #[test]
    fn fixed_attribute_enforced_at_set() {
        let mut td = TypedDocument::new(po());
        let root = td.create_root("purchaseOrder").unwrap();
        let ship = td.append_element(root, "shipTo").unwrap();
        assert!(matches!(
            td.set_attribute(ship, "country", "DE"),
            Err(VdomError::FixedMismatch { .. })
        ));
        td.set_attribute(ship, "country", "US").unwrap();
    }

    #[test]
    fn incomplete_content_rejected_at_finish() {
        let mut td = TypedDocument::new(po());
        let root = td.create_root("purchaseOrder").unwrap();
        build_address(&mut td, root, "shipTo", "A");
        let err = td.finish(root).unwrap_err();
        match err {
            VdomError::Incomplete { expected, .. } => {
                assert_eq!(expected, ["billTo"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_required_attribute_rejected_at_finish() {
        let mut td = TypedDocument::new(po());
        let root = td.create_root("purchaseOrder").unwrap();
        build_address(&mut td, root, "shipTo", "A");
        build_address(&mut td, root, "billTo", "B");
        let items = td.append_element(root, "items").unwrap();
        let item = td.append_element(items, "item").unwrap();
        for (c, v) in [("productName", "X"), ("quantity", "1"), ("USPrice", "1.0")] {
            let n = td.append_element(item, c).unwrap();
            td.append_text(n, v).unwrap();
        }
        // no partNum
        let err = td.finish(item).unwrap_err();
        assert!(matches!(
            err,
            VdomError::MissingAttribute { ref attribute, .. } if attribute == "partNum"
        ));
    }

    #[test]
    fn simple_content_validated_at_finish() {
        let mut td = TypedDocument::new(po());
        let root = td.create_root("purchaseOrder").unwrap();
        let ship = td.append_element(root, "shipTo").unwrap();
        td.set_attribute(ship, "country", "US").unwrap();
        for c in ["name", "street", "city", "state"] {
            let n = td.append_element(ship, c).unwrap();
            td.append_text(n, "x").unwrap();
        }
        let zip = td.append_element(ship, "zip").unwrap();
        td.append_text(zip, "not a decimal").unwrap();
        let err = td.finish(zip).unwrap_err();
        assert!(matches!(
            err,
            VdomError::Simple {
                attribute: None,
                ..
            }
        ));
    }

    #[test]
    fn abstract_elements_cannot_be_created() {
        let xsd = r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
          <xsd:element name="msg" type="xsd:string" abstract="true"/>
          <xsd:element name="textMsg" type="xsd:string" substitutionGroup="msg"/>
        </xsd:schema>"#;
        let c = CompiledSchema::parse(xsd).unwrap();
        let mut td = TypedDocument::new(c);
        assert!(matches!(td.create_root("msg"), Err(VdomError::Abstract(_))));
        td.create_root("textMsg").unwrap();
    }

    #[test]
    fn substitution_members_accepted_in_content() {
        let c = CompiledSchema::parse(SUBSTITUTION_XSD).unwrap();
        let mut td = TypedDocument::new(c);
        let root = td.create_root("order").unwrap();
        let id = td.append_element(root, "id").unwrap();
        td.append_text(id, "42").unwrap();
        // shipComment substitutes for comment
        let sc = td.append_element(root, "shipComment").unwrap();
        td.append_text(sc, "handle with care").unwrap();
        td.seal().unwrap();
    }

    #[test]
    fn mixed_content_accepts_text_and_elements() {
        let c = CompiledSchema::parse(WML_XSD).unwrap();
        let mut td = TypedDocument::new(c);
        let root = td.create_root("wml").unwrap();
        let card = td.append_element(root, "card").unwrap();
        let p = td.append_element(card, "p").unwrap();
        td.append_text(p, "hello ").unwrap();
        let b = td.append_element(p, "b").unwrap();
        td.append_text(b, "bold").unwrap();
        td.append_text(p, " world").unwrap();
        td.seal().unwrap();
    }

    #[test]
    fn expected_children_and_completeness_introspection() {
        let mut td = TypedDocument::new(po());
        let root = td.create_root("purchaseOrder").unwrap();
        assert_eq!(td.expected_children(root).unwrap(), ["shipTo"]);
        assert!(!td.is_complete(root).unwrap());
        build_address(&mut td, root, "shipTo", "A");
        build_address(&mut td, root, "billTo", "B");
        assert_eq!(td.expected_children(root).unwrap(), ["comment", "items"]);
        let items = td.append_element(root, "items").unwrap();
        assert!(td.is_complete(root).unwrap());
        assert!(td.is_complete(items).unwrap()); // item is minOccurs=0
    }

    #[test]
    fn serialize_prefix() {
        let mut td = TypedDocument::new(po());
        let root = td.create_root("purchaseOrder").unwrap();
        td.set_attribute(root, "orderDate", "1999-10-20").unwrap();
        assert_eq!(td.serialize(), "<purchaseOrder orderDate=\"1999-10-20\"/>");
    }
}
