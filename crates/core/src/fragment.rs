//! Importing untyped DOM fragments into a typed document.
//!
//! Every node of the fragment is replayed through the typed mutation API,
//! so importing *is* validating: the P-XML runtime (crate `pxml`) uses
//! this to instantiate pre-parsed templates, and tools can use it to lift
//! parsed documents into V-DOM.

use dom::{Document, NodeId, NodeKind};
use schema::CompiledSchema;

use crate::document::{TypedDocument, TypedElement};
use crate::error::VdomError;

impl TypedDocument {
    /// Imports the element subtree at `src_node` of `src` as the typed
    /// document's root element.
    pub fn import_root(
        &mut self,
        src: &Document,
        src_node: NodeId,
    ) -> Result<TypedElement, VdomError> {
        let name = src
            .tag_name(src_node)
            .map_err(|e| VdomError::Dom(e.to_string()))?
            .to_string();
        let root = self.create_root(&name)?;
        self.copy_into(src, src_node, root)?;
        Ok(root)
    }

    /// Imports the element subtree at `src_node` of `src` as a new child
    /// of `parent`.
    pub fn import_element(
        &mut self,
        parent: TypedElement,
        src: &Document,
        src_node: NodeId,
    ) -> Result<TypedElement, VdomError> {
        let name = src
            .tag_name(src_node)
            .map_err(|e| VdomError::Dom(e.to_string()))?
            .to_string();
        let el = self.append_element(parent, &name)?;
        self.copy_into(src, src_node, el)?;
        Ok(el)
    }

    fn copy_into(
        &mut self,
        src: &Document,
        src_node: NodeId,
        dst: TypedElement,
    ) -> Result<(), VdomError> {
        for attr in src
            .attributes(src_node)
            .map_err(|e| VdomError::Dom(e.to_string()))?
            .to_vec()
        {
            if attr.name == "xmlns" || attr.name.starts_with("xmlns:") {
                continue;
            }
            self.set_attribute(dst, &attr.name, attr.value)?;
        }
        for child in src
            .child_vec(src_node)
            .map_err(|e| VdomError::Dom(e.to_string()))?
        {
            match src.kind(child).map_err(|e| VdomError::Dom(e.to_string()))? {
                NodeKind::Element { .. } => {
                    self.import_element(dst, src, child)?;
                }
                NodeKind::Text(t) => {
                    // whitespace-only text between elements of element-only
                    // content is formatting, not data; where text is
                    // allowed it is significant and must be kept
                    if t.trim().is_empty() && !self.allows_text(dst)? {
                        continue;
                    }
                    self.append_text(dst, t.clone())?;
                }
                // comments and PIs carry no schema meaning; skip
                _ => {}
            }
        }
        Ok(())
    }
}

/// Parses `source` as a document and lifts it into a typed document,
/// validating every construction step. Returns the typed document (not
/// yet sealed, so callers can keep building).
pub fn parse_typed(compiled: &CompiledSchema, source: &str) -> Result<TypedDocument, VdomError> {
    let doc = xmlparse::parse_document(source).map_err(|e| VdomError::Dom(e.to_string()))?;
    let root = doc.root_element().ok_or(VdomError::Dom("no root".into()))?;
    let mut td = TypedDocument::new(compiled.clone());
    td.import_root(&doc, root)?;
    Ok(td)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::corpus::{PURCHASE_ORDER_XML, PURCHASE_ORDER_XSD};

    #[test]
    fn paper_document_imports_cleanly() {
        let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
        let td = parse_typed(&compiled, PURCHASE_ORDER_XML).unwrap();
        let doc = td.seal().unwrap();
        assert!(validator::validate_document(&compiled, &doc).is_empty());
    }

    #[test]
    fn invalid_document_fails_during_import() {
        let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
        let bad = PURCHASE_ORDER_XML.replace("<quantity>1</quantity>", "<quantity>500</quantity>");
        let td = parse_typed(&compiled, &bad).unwrap();
        // quantity maxExclusive=100 is a finish-time (value) check
        assert!(td.seal().is_err());
    }

    #[test]
    fn structurally_invalid_fails_at_append() {
        let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
        let bad = "<purchaseOrder><items/></purchaseOrder>";
        assert!(matches!(
            parse_typed(&compiled, bad),
            Err(VdomError::ContentModel { .. })
        ));
    }

    #[test]
    fn fragment_import_under_parent() {
        let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
        let (frag, frag_root) = xmlparse::parse_fragment(
            "<shipTo country=\"US\"><name>A</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>",
        )
        .unwrap();
        let mut td = TypedDocument::new(compiled);
        let root = td.create_root("purchaseOrder").unwrap();
        let imported = td.import_element(root, &frag, frag_root).unwrap();
        td.finish(imported).unwrap();
        // billTo may not be imported where comment belongs
        let (frag2, r2) = xmlparse::parse_fragment("<zip>90952</zip>").unwrap();
        assert!(td.import_element(root, &frag2, r2).is_err());
    }
}
