//! Process-global QName intern table.
//!
//! The paper's compile-ahead-of-time pitch (Sect. 6) is that schema
//! knowledge pays its cost once, before any document arrives. This crate
//! extends that to *names*: every element and attribute QName a schema
//! declares is interned once into a global append-only table, and from
//! then on the runtime compares and hashes `Sym` — a `u32` — instead of
//! strings.
//!
//! Two entry points with deliberately different contracts:
//!
//! * [`intern`] adds to the table. Only **schema-side** code (DFA
//!   construction, `CompiledSchema::warm`) calls this: the set of
//!   declared names is bounded by schema size, so the table cannot grow
//!   without bound.
//! * [`lookup`] never adds. The **document-side** hot path uses this —
//!   an element name a schema never declared resolves to `None`, and a
//!   hostile document cannot bloat the table no matter how many distinct
//!   names it invents.
//!
//! The table is global (consistent with the process-global DFA intern
//! table in `schema::compiled`), so `Sym`s are stable across schemas:
//! two schemas that both declare `shipTo` agree on its symbol, and the
//! shared interned DFAs can carry `Sym`-keyed transitions.
//!
//! Interned strings are leaked (`Box::leak`): the table is append-only
//! and lives for the process, so each name is one small allocation,
//! once, ever. `symbol_table_bytes` reports the cumulative cost.

use std::collections::HashMap;

use parking_lot::RwLock;
use std::sync::OnceLock;

/// An interned QName: a dense `u32` index into the global table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The raw index (dense, starting at 0, in interning order).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(name(*self))
    }
}

struct Table {
    by_name: HashMap<&'static str, Sym>,
    names: Vec<&'static str>,
    /// Cumulative bytes of leaked name storage (string bytes only; the
    /// index structures are bookkeeping, not payload).
    bytes: usize,
}

static TABLE: OnceLock<RwLock<Table>> = OnceLock::new();

fn table() -> &'static RwLock<Table> {
    TABLE.get_or_init(|| {
        RwLock::new(Table {
            by_name: HashMap::new(),
            names: Vec::new(),
            bytes: 0,
        })
    })
}

/// Interns `name`, returning its stable symbol. Idempotent; the second
/// intern of a name is a read-lock lookup.
///
/// Schema-side only: callers must ensure the set of interned names is
/// bounded (e.g. by schema size). Document text should use [`lookup`].
pub fn intern(name: &str) -> Sym {
    if let Some(&sym) = table().read().by_name.get(name) {
        return sym;
    }
    let mut t = table().write();
    // racing interner may have won between the locks
    if let Some(&sym) = t.by_name.get(name) {
        return sym;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    let sym = Sym(u32::try_from(t.names.len()).expect("symbol table overflow"));
    t.names.push(leaked);
    t.by_name.insert(leaked, sym);
    t.bytes += leaked.len();
    if obs::enabled() {
        let metrics = obs::metrics();
        metrics
            .counter(
                "symbols_interned_total",
                "QNames interned into the process-global symbol table.",
            )
            .inc();
        metrics
            .gauge(
                "symbol_table_bytes",
                "Cumulative bytes of interned QName storage.",
            )
            .set(t.bytes as i64);
    }
    sym
}

/// Looks `name` up without interning. `None` means the name has never
/// been declared by any schema — on the validation path that is exactly
/// the "undeclared element" case.
#[inline]
pub fn lookup(name: &str) -> Option<Sym> {
    table().read().by_name.get(name).copied()
}

/// The interned string for `sym`.
///
/// # Panics
/// If `sym` did not come from [`intern`] in this process.
pub fn name(sym: Sym) -> &'static str {
    table().read().names[sym.0 as usize]
}

/// Number of symbols interned so far.
pub fn count() -> usize {
    table().read().names.len()
}

/// Cumulative bytes of interned name storage.
pub fn table_bytes() -> usize {
    table().read().bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = intern("symtest-shipTo");
        let b = intern("symtest-shipTo");
        assert_eq!(a, b);
        assert_eq!(name(a), "symtest-shipTo");
    }

    #[test]
    fn distinct_names_distinct_syms() {
        let a = intern("symtest-a");
        let b = intern("symtest-b");
        assert_ne!(a, b);
        assert_eq!(name(a), "symtest-a");
        assert_eq!(name(b), "symtest-b");
    }

    #[test]
    fn lookup_never_interns() {
        let before = count();
        assert_eq!(lookup("symtest-never-declared-xyzzy"), None);
        assert_eq!(count(), before);
        let sym = intern("symtest-declared");
        assert_eq!(lookup("symtest-declared"), Some(sym));
    }

    #[test]
    fn table_bytes_grows_with_interning() {
        let before = table_bytes();
        intern("symtest-bytes-probe-0123456789");
        assert!(table_bytes() >= before);
    }

    #[test]
    fn display_prints_name() {
        let s = intern("symtest-display");
        assert_eq!(s.to_string(), "symtest-display");
    }

    #[test]
    fn concurrent_intern_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| intern("symtest-race")))
            .collect();
        let syms: Vec<Sym> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }
}
