//! Validation errors with source positions.

use std::fmt;

use limits::ResourceErrorKind;
use xmlchars::Span;

/// One schema violation found in a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// What is wrong.
    pub kind: ValidationErrorKind,
    /// Where, from the parser's recorded spans. `None` when the violating
    /// node has no source position — trees built programmatically, or
    /// whole-document conditions like a missing root.
    pub span: Option<Span>,
}

impl ValidationError {
    pub(crate) fn at(kind: ValidationErrorKind, span: Span) -> Self {
        ValidationError {
            kind,
            span: Some(span),
        }
    }

    pub(crate) fn at_opt(kind: ValidationErrorKind, span: Option<Span>) -> Self {
        ValidationError { kind, span }
    }

    pub(crate) fn nowhere(kind: ValidationErrorKind) -> Self {
        ValidationError { kind, span: None }
    }
}

/// The kinds of schema violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationErrorKind {
    /// The document has no root element at all.
    NoRootElement,
    /// The root element is not declared in the schema.
    UndeclaredRoot(String),
    /// An abstract element appeared in the instance.
    AbstractElement(String),
    /// An element whose type is abstract appeared in the instance.
    AbstractType(String),
    /// A type reference could not be resolved (schema/tree mismatch).
    UnknownType(String),
    /// A child element violated the parent's content model.
    UnexpectedChild {
        /// Parent element name.
        parent: String,
        /// Offending child name.
        child: String,
        /// What the content model expected instead.
        expected: Vec<String>,
    },
    /// The element ended before its content model was satisfied.
    IncompleteContent {
        /// Element name.
        element: String,
        /// Elements still expected.
        expected: Vec<String>,
    },
    /// Character data in element-only content.
    TextNotAllowed {
        /// Element name.
        element: String,
    },
    /// A simple-typed element's text failed validation.
    SimpleType {
        /// Element name.
        element: String,
        /// Underlying simple-type error.
        message: String,
    },
    /// An attribute value failed simple-type validation.
    AttributeValue {
        /// Element name.
        element: String,
        /// Attribute name.
        attribute: String,
        /// Underlying simple-type error.
        message: String,
    },
    /// A `fixed` attribute carried a different value.
    FixedAttribute {
        /// Element name.
        element: String,
        /// Attribute name.
        attribute: String,
        /// The fixed value required by the schema.
        fixed: String,
        /// The value actually present.
        actual: String,
    },
    /// A required attribute is absent.
    MissingAttribute {
        /// Element name.
        element: String,
        /// Attribute name.
        attribute: String,
    },
    /// An attribute not declared for the element's type.
    UndeclaredAttribute {
        /// Element name.
        element: String,
        /// Attribute name.
        attribute: String,
    },
    /// The input could not be parsed at all (streaming entry points,
    /// which take raw text rather than an already-parsed tree).
    NotWellFormed(String),
    /// A resource budget tripped and checking stopped — distinct from
    /// both well-formedness and validity: the document was not proven
    /// wrong, the work was cut off. The error list up to this marker is
    /// a prefix of what an unbounded run would have produced.
    Resource(ResourceErrorKind),
}

impl ValidationErrorKind {
    /// A stable, payload-free name for this kind — the `kind` label of
    /// the `validator_errors_total` metric.
    pub fn label(&self) -> &'static str {
        match self {
            ValidationErrorKind::NoRootElement => "NoRootElement",
            ValidationErrorKind::UndeclaredRoot(_) => "UndeclaredRoot",
            ValidationErrorKind::AbstractElement(_) => "AbstractElement",
            ValidationErrorKind::AbstractType(_) => "AbstractType",
            ValidationErrorKind::UnknownType(_) => "UnknownType",
            ValidationErrorKind::UnexpectedChild { .. } => "UnexpectedChild",
            ValidationErrorKind::IncompleteContent { .. } => "IncompleteContent",
            ValidationErrorKind::TextNotAllowed { .. } => "TextNotAllowed",
            ValidationErrorKind::SimpleType { .. } => "SimpleType",
            ValidationErrorKind::AttributeValue { .. } => "AttributeValue",
            ValidationErrorKind::FixedAttribute { .. } => "FixedAttribute",
            ValidationErrorKind::MissingAttribute { .. } => "MissingAttribute",
            ValidationErrorKind::UndeclaredAttribute { .. } => "UndeclaredAttribute",
            ValidationErrorKind::NotWellFormed(_) => "NotWellFormed",
            ValidationErrorKind::Resource(kind) => kind.label(),
        }
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.span {
            Some(span) => write!(f, "{} at {}", self.kind, span),
            None => write!(f, "{} (no source position)", self.kind),
        }
    }
}

impl fmt::Display for ValidationErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationErrorKind::NoRootElement => write!(f, "document has no root element"),
            ValidationErrorKind::UndeclaredRoot(n) => {
                write!(f, "root element <{n}> is not declared in the schema")
            }
            ValidationErrorKind::AbstractElement(n) => {
                write!(f, "abstract element <{n}> may not appear in instances")
            }
            ValidationErrorKind::AbstractType(n) => {
                write!(f, "abstract type {n} may not appear in instances")
            }
            ValidationErrorKind::UnknownType(n) => write!(f, "unknown type {n:?}"),
            ValidationErrorKind::UnexpectedChild {
                parent,
                child,
                expected,
            } => {
                write!(f, "<{child}> is not allowed here in <{parent}>")?;
                if !expected.is_empty() {
                    write!(f, "; expected one of: {}", expected.join(", "))?;
                }
                Ok(())
            }
            ValidationErrorKind::IncompleteContent { element, expected } => {
                write!(
                    f,
                    "<{element}> is incomplete; expected: {}",
                    expected.join(", ")
                )
            }
            ValidationErrorKind::TextNotAllowed { element } => {
                write!(f, "character data is not allowed in <{element}>")
            }
            ValidationErrorKind::SimpleType { element, message } => {
                write!(f, "content of <{element}>: {message}")
            }
            ValidationErrorKind::AttributeValue {
                element,
                attribute,
                message,
            } => write!(f, "attribute {attribute} of <{element}>: {message}"),
            ValidationErrorKind::FixedAttribute {
                element,
                attribute,
                fixed,
                actual,
            } => write!(
                f,
                "attribute {attribute} of <{element}> is fixed to {fixed:?} but is {actual:?}"
            ),
            ValidationErrorKind::MissingAttribute { element, attribute } => {
                write!(f, "<{element}> is missing required attribute {attribute}")
            }
            ValidationErrorKind::UndeclaredAttribute { element, attribute } => {
                write!(f, "attribute {attribute} is not declared for <{element}>")
            }
            ValidationErrorKind::NotWellFormed(message) => {
                write!(f, "document is not well-formed: {message}")
            }
            ValidationErrorKind::Resource(kind) => {
                write!(f, "resource budget exceeded: {kind}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}
