//! Runtime validation of generic DOM trees against a compiled schema —
//! the **baseline** the paper argues against (Sect. 2: "Invalid documents
//! usually cannot be detected until runtime requiring extensive
//! testing").
//!
//! Given a [`dom::Document`] built by hand or by the parser, the
//! validator walks the tree and checks, per element:
//!
//! * the element is declared (top level or within its parent's type);
//! * the child-element sequence matches the type's content-model DFA;
//! * character data appears only where mixed/simple content allows it;
//! * simple-typed content and every attribute value validate against
//!   their simple types (whitespace → built-in → facets);
//! * required attributes are present, `fixed` values respected, and
//!   undeclared attributes rejected (namespace declarations exempt);
//! * abstract elements and abstract types do not appear in instances.
//!
//! All violations are collected (not just the first), each with the
//! source span recorded by the parser — this is the "extensive testing at
//! runtime" cost centre measured by benches B1/B2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;

use automata::Matcher;
use dom::{Document, NodeId, NodeKind};
use schema::{CompiledSchema, ContentModel, TypeDef, TypeRef};

pub use error::{ValidationError, ValidationErrorKind};

/// Validates a whole document: the root element must be declared at the
/// schema's top level. Returns all violations found (empty = valid).
pub fn validate_document(compiled: &CompiledSchema, doc: &Document) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    let root = match doc.root_element() {
        Some(r) => r,
        None => {
            errors.push(ValidationError::nowhere(
                ValidationErrorKind::NoRootElement,
            ));
            return errors;
        }
    };
    let root_name = doc.tag_name(root).unwrap_or_default().to_string();
    match compiled.schema().element(&root_name) {
        Some(decl) => {
            if decl.is_abstract {
                errors.push(ValidationError::at(
                    ValidationErrorKind::AbstractElement(root_name),
                    doc.span(root).unwrap_or_default(),
                ));
            } else {
                let type_ref = decl.type_ref.clone();
                validate_element(compiled, doc, root, &type_ref, &mut errors);
            }
        }
        None => errors.push(ValidationError::at(
            ValidationErrorKind::UndeclaredRoot(root_name),
            doc.span(root).unwrap_or_default(),
        )),
    }
    errors
}

/// Convenience: `true` when [`validate_document`] finds no violations.
pub fn is_valid(compiled: &CompiledSchema, doc: &Document) -> bool {
    validate_document(compiled, doc).is_empty()
}

/// Validates the subtree rooted at `node`, assuming it should conform to
/// `type_ref`. Appends violations to `errors`.
pub fn validate_element(
    compiled: &CompiledSchema,
    doc: &Document,
    node: NodeId,
    type_ref: &TypeRef,
    errors: &mut Vec<ValidationError>,
) {
    let span = doc.span(node).unwrap_or_default();
    let schema = compiled.schema();
    match type_ref {
        // Element of a built-in simple type: text-only content.
        TypeRef::Builtin(_) => {
            validate_simple_element(compiled, doc, node, type_ref, errors);
            validate_attributes(compiled, doc, node, None, errors);
        }
        TypeRef::Named(name) | TypeRef::Anonymous(name) => match schema.type_def(name) {
            Some(TypeDef::Simple(_)) => {
                validate_simple_element(compiled, doc, node, type_ref, errors);
                validate_attributes(compiled, doc, node, None, errors);
            }
            Some(TypeDef::Complex(ct)) => {
                if ct.is_abstract {
                    errors.push(ValidationError::at(
                        ValidationErrorKind::AbstractType(name.clone()),
                        span,
                    ));
                }
                validate_attributes(compiled, doc, node, Some(name), errors);
                match &ct.content {
                    ContentModel::Simple(simple) => {
                        let simple = simple.clone();
                        validate_simple_element(compiled, doc, node, &simple, errors);
                    }
                    ContentModel::Empty | ContentModel::ElementOnly(_) => {
                        validate_complex_content(compiled, doc, node, name, false, errors);
                    }
                    ContentModel::Mixed(_) => {
                        validate_complex_content(compiled, doc, node, name, true, errors);
                    }
                }
            }
            None => errors.push(ValidationError::at(
                ValidationErrorKind::UnknownType(name.clone()),
                span,
            )),
        },
    }
}

fn validate_simple_element(
    compiled: &CompiledSchema,
    doc: &Document,
    node: NodeId,
    type_ref: &TypeRef,
    errors: &mut Vec<ValidationError>,
) {
    let span = doc.span(node).unwrap_or_default();
    // no element children allowed
    for child in doc.child_elements(node) {
        errors.push(ValidationError::at(
            ValidationErrorKind::UnexpectedChild {
                parent: doc.tag_name(node).unwrap_or_default().to_string(),
                child: doc.tag_name(child).unwrap_or_default().to_string(),
                expected: Vec::new(),
            },
            doc.span(child).unwrap_or_default(),
        ));
    }
    let text = doc.text_content(node).unwrap_or_default();
    if let Err(e) = compiled.schema().validate_simple_value(type_ref, &text) {
        errors.push(ValidationError::at(
            ValidationErrorKind::SimpleType {
                element: doc.tag_name(node).unwrap_or_default().to_string(),
                message: e.to_string(),
            },
            span,
        ));
    }
}

fn validate_complex_content(
    compiled: &CompiledSchema,
    doc: &Document,
    node: NodeId,
    type_name: &str,
    mixed: bool,
    errors: &mut Vec<ValidationError>,
) {
    let schema = compiled.schema();
    let parent_name = doc.tag_name(node).unwrap_or_default().to_string();
    let dfa = match compiled.content_dfa(type_name) {
        Ok(d) => d,
        Err(e) => {
            errors.push(ValidationError::at(
                ValidationErrorKind::SimpleType {
                    element: parent_name,
                    message: e.to_string(),
                },
                doc.span(node).unwrap_or_default(),
            ));
            return;
        }
    };
    let mut matcher = dfa.start();
    let mut content_ok = true;
    for child in doc.child_vec(node).unwrap_or_default() {
        match doc.kind(child) {
            Ok(NodeKind::Element { name, .. }) => {
                let name = name.clone();
                if content_ok {
                    if let Err(e) = matcher.step(&name) {
                        errors.push(ValidationError::at(
                            ValidationErrorKind::UnexpectedChild {
                                parent: parent_name.clone(),
                                child: name.clone(),
                                expected: e.expected,
                            },
                            doc.span(child).unwrap_or_default(),
                        ));
                        content_ok = false;
                    }
                }
                // recurse regardless, so nested errors surface too
                if let Some(child_type) = schema.child_element_type(type_name, &name) {
                    validate_element(compiled, doc, child, &child_type, errors)
                }
                // undeclared children were already reported by the DFA step
            }
            Ok(NodeKind::Text(t)) if !mixed && !t.trim().is_empty() => {
                errors.push(ValidationError::at(
                    ValidationErrorKind::TextNotAllowed {
                        element: parent_name.clone(),
                    },
                    doc.span(child).unwrap_or_default(),
                ));
            }
            // comments and PIs are always permitted
            _ => {}
        }
    }
    if content_ok && !matcher.is_accepting() {
        errors.push(ValidationError::at(
            ValidationErrorKind::IncompleteContent {
                element: parent_name,
                expected: matcher.expected(),
            },
            doc.span(node).unwrap_or_default(),
        ));
    }
}

fn validate_attributes(
    compiled: &CompiledSchema,
    doc: &Document,
    node: NodeId,
    complex_type: Option<&str>,
    errors: &mut Vec<ValidationError>,
) {
    let span = doc.span(node).unwrap_or_default();
    let element = doc.tag_name(node).unwrap_or_default().to_string();
    let declared = complex_type
        .and_then(|t| compiled.schema().effective_attributes(t).ok())
        .unwrap_or_default();
    let present = doc.attributes(node).unwrap_or(&[]).to_vec();

    for attr in &present {
        if attr.name == "xmlns" || attr.name.starts_with("xmlns:") || attr.name.starts_with("xml:")
        {
            continue;
        }
        match declared.iter().find(|d| d.name == attr.name) {
            Some(decl) => {
                if let Err(e) = compiled
                    .schema()
                    .validate_simple_value(&decl.type_ref, &attr.value)
                {
                    errors.push(ValidationError::at(
                        ValidationErrorKind::AttributeValue {
                            element: element.clone(),
                            attribute: attr.name.clone(),
                            message: e.to_string(),
                        },
                        span,
                    ));
                }
                if let Some(fixed) = &decl.fixed {
                    if &attr.value != fixed {
                        errors.push(ValidationError::at(
                            ValidationErrorKind::FixedAttribute {
                                element: element.clone(),
                                attribute: attr.name.clone(),
                                fixed: fixed.clone(),
                                actual: attr.value.clone(),
                            },
                            span,
                        ));
                    }
                }
            }
            None => errors.push(ValidationError::at(
                ValidationErrorKind::UndeclaredAttribute {
                    element: element.clone(),
                    attribute: attr.name.clone(),
                },
                span,
            )),
        }
    }
    for decl in &declared {
        if decl.required && !present.iter().any(|a| a.name == decl.name) {
            errors.push(ValidationError::at(
                ValidationErrorKind::MissingAttribute {
                    element: element.clone(),
                    attribute: decl.name.clone(),
                },
                span,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::corpus::{PURCHASE_ORDER_XML, PURCHASE_ORDER_XSD, WML_XSD};

    fn compiled() -> CompiledSchema {
        CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap()
    }

    fn po_doc() -> Document {
        xmlparse::parse_document(PURCHASE_ORDER_XML).unwrap()
    }

    #[test]
    fn paper_document_is_valid() {
        let errors = validate_document(&compiled(), &po_doc());
        assert!(errors.is_empty(), "{errors:#?}");
    }

    #[test]
    fn wrong_child_order_detected() {
        let c = compiled();
        let mut doc = po_doc();
        let root = doc.root_element().unwrap();
        // move shipTo to the end, after items
        let ship = doc.child_element_named(root, "shipTo").unwrap();
        doc.detach(ship).unwrap();
        doc.append_child(root, ship).unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::UnexpectedChild { .. })));
    }

    #[test]
    fn missing_required_child_detected() {
        let c = compiled();
        let mut doc = po_doc();
        let root = doc.root_element().unwrap();
        let items = doc.child_element_named(root, "items").unwrap();
        doc.remove(items).unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors
            .iter()
            .any(|e| matches!(&e.kind, ValidationErrorKind::IncompleteContent { expected, .. }
                if expected.contains(&"items".to_string()))));
    }

    #[test]
    fn bad_simple_value_detected_with_position() {
        let c = compiled();
        let mut doc = po_doc();
        let root = doc.root_element().unwrap();
        let ship = doc.child_element_named(root, "shipTo").unwrap();
        let zip = doc.child_element_named(ship, "zip").unwrap();
        let text = doc.child_vec(zip).unwrap()[0];
        doc.set_text(text, "not-a-number").unwrap();
        let errors = validate_document(&c, &doc);
        assert_eq!(errors.len(), 1, "{errors:#?}");
        assert!(matches!(errors[0].kind, ValidationErrorKind::SimpleType { .. }));
        assert!(errors[0].span.start.line > 1);
    }

    #[test]
    fn bad_attribute_value_detected() {
        let c = compiled();
        let mut doc = po_doc();
        let root = doc.root_element().unwrap();
        doc.set_attribute(root, "orderDate", "yesterday").unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::AttributeValue { .. })));
    }

    #[test]
    fn missing_required_attribute_detected() {
        let c = compiled();
        let mut doc = po_doc();
        let root = doc.root_element().unwrap();
        let items = doc.child_element_named(root, "items").unwrap();
        let item = doc.child_elements(items).next().unwrap();
        doc.remove_attribute(item, "partNum").unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors.iter().any(|e| matches!(
            &e.kind,
            ValidationErrorKind::MissingAttribute { attribute, .. } if attribute == "partNum"
        )));
    }

    #[test]
    fn fixed_attribute_enforced() {
        let c = compiled();
        let mut doc = po_doc();
        let root = doc.root_element().unwrap();
        let ship = doc.child_element_named(root, "shipTo").unwrap();
        doc.set_attribute(ship, "country", "DE").unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors.iter().any(|e| matches!(
            &e.kind,
            ValidationErrorKind::FixedAttribute { fixed, actual, .. }
                if fixed == "US" && actual == "DE"
        )));
    }

    #[test]
    fn undeclared_attribute_detected() {
        let c = compiled();
        let mut doc = po_doc();
        let root = doc.root_element().unwrap();
        doc.set_attribute(root, "bogus", "x").unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::UndeclaredAttribute { .. })));
    }

    #[test]
    fn text_in_element_only_content_detected() {
        let c = compiled();
        let mut doc = po_doc();
        let root = doc.root_element().unwrap();
        let t = doc.create_text("stray text");
        doc.append_child(root, t).unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::TextNotAllowed { .. })));
    }

    #[test]
    fn undeclared_root_detected() {
        let c = compiled();
        let mut doc = Document::new();
        let root = doc.create_element("unknownRoot").unwrap();
        let dn = doc.document_node();
        doc.append_child(dn, root).unwrap();
        let errors = validate_document(&c, &doc);
        assert!(matches!(errors[0].kind, ValidationErrorKind::UndeclaredRoot(_)));
    }

    #[test]
    fn multiple_errors_collected() {
        let c = compiled();
        let mut doc = po_doc();
        let root = doc.root_element().unwrap();
        doc.set_attribute(root, "orderDate", "bad").unwrap();
        doc.set_attribute(root, "bogus", "x").unwrap();
        let items = doc.child_element_named(root, "items").unwrap();
        doc.remove(items).unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors.len() >= 3, "{errors:#?}");
    }

    #[test]
    fn mixed_content_allows_text() {
        let c = CompiledSchema::parse(WML_XSD).unwrap();
        let doc = xmlparse::parse_document(
            "<wml><card id=\"c\"><p>hello <b>bold</b> world<br/></p></card></wml>",
        )
        .unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors.is_empty(), "{errors:#?}");
    }

    #[test]
    fn wml_select_requires_option() {
        let c = CompiledSchema::parse(WML_XSD).unwrap();
        let doc = xmlparse::parse_document(
            "<wml><card><p><select name=\"dirs\"></select></p></card></wml>",
        )
        .unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::IncompleteContent { .. })));
    }

    #[test]
    fn is_valid_helper() {
        assert!(is_valid(&compiled(), &po_doc()));
    }
}
