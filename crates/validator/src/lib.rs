//! Runtime validation of generic DOM trees against a compiled schema —
//! the **baseline** the paper argues against (Sect. 2: "Invalid documents
//! usually cannot be detected until runtime requiring extensive
//! testing").
//!
//! Given a [`dom::Document`] built by hand or by the parser, the
//! validator walks the tree and checks, per element:
//!
//! * the element is declared (top level or within its parent's type);
//! * the child-element sequence matches the type's content-model DFA;
//! * character data appears only where mixed/simple content allows it;
//! * simple-typed content and every attribute value validate against
//!   their simple types (whitespace → built-in → facets);
//! * required attributes are present, `fixed` values respected, and
//!   undeclared attributes rejected (namespace declarations exempt);
//! * abstract elements and abstract types do not appear in instances.
//!
//! All violations are collected (not just the first), each with the
//! source span recorded by the parser — this is the "extensive testing at
//! runtime" cost centre measured by benches B1/B2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod patch;
pub mod stream;

use automata::Matcher;
use dom::{Document, NodeId, NodeKind};
use limits::{Limits, ResourceErrorKind};
use schema::{AttributeUse, CompiledSchema, ContentModel, TypeDef, TypeRef};
use xmlchars::Span;

pub use error::{ValidationError, ValidationErrorKind};
pub use patch::{apply_unchecked, DomPatch, IncrementalValidator, NewNode, NodePath, PatchError};
pub use stream::{
    validate_chunks_streaming, validate_chunks_streaming_with_limits, validate_read_streaming,
    validate_read_streaming_with_limits, validate_str_streaming,
    validate_str_streaming_with_limits, StreamingValidator,
};

/// The parser-recorded span of `node`, if there is one.
///
/// Programmatically built nodes carry the sentinel default span; those are
/// reported as position-free (`None`) instead of pretending the violation
/// sits at line 1, column 1.
pub(crate) fn node_span(doc: &Document, node: NodeId) -> Option<Span> {
    doc.span(node).ok().filter(|s| *s != Span::default())
}

/// Records a finished validation pass's error population, labeled by
/// validator mode (`tree` / `streaming`) and error kind.
pub(crate) fn record_errors(mode: &'static str, errors: &[ValidationError]) {
    if !obs::enabled() {
        return;
    }
    let metrics = obs::metrics();
    for error in errors {
        metrics
            .counter_with(
                "validator_errors_total",
                "Schema violations found, by validator mode and error kind.",
                &[("mode", mode), ("kind", error.kind.label())],
            )
            .inc();
    }
}

/// Applies a budget's `max_errors` ceiling to a collected error list:
/// keeps the exact prefix an unbounded run produced, then appends one
/// [`ValidationErrorKind::Resource`] marker carrying the span of the
/// first suppressed error. Returns whether the cap tripped. Shared by
/// the tree and streaming validators so the capped list is identical
/// whichever one hit it.
pub(crate) fn cap_errors(errors: &mut Vec<ValidationError>, limits: &Limits) -> bool {
    if errors.len() <= limits.max_errors {
        return false;
    }
    let kind = ResourceErrorKind::TooManyErrors {
        limit: limits.max_errors,
    };
    limits::record_trip(&kind);
    let span = errors[limits.max_errors].span;
    errors.truncate(limits.max_errors);
    errors.push(ValidationError::at_opt(
        ValidationErrorKind::Resource(kind),
        span,
    ));
    true
}

/// Validates a whole document: the root element must be declared at the
/// schema's top level. Returns all violations found (empty = valid).
///
/// Runs under [`Limits::default`], whose only ceiling that applies to an
/// already-parsed tree is `max_errors` (1000) — legitimate documents are
/// unaffected. Use [`validate_document_with_limits`] to tune it.
pub fn validate_document(compiled: &CompiledSchema, doc: &Document) -> Vec<ValidationError> {
    validate_document_with_limits(compiled, doc, &Limits::default())
}

/// [`validate_document`] under an explicit resource budget. The tree is
/// already parsed, so only the collection-side budgets apply here: an
/// expired deadline or cancelled token rejects the document up front
/// (the walk itself is not interrupted), and `max_errors` caps the list
/// via [`cap_errors`] semantics — exact unbounded prefix plus one
/// [`ValidationErrorKind::Resource`] marker. Parse-side ceilings are
/// enforced where the tree is built
/// ([`xmlparse::parse_document_with_limits`]).
pub fn validate_document_with_limits(
    compiled: &CompiledSchema,
    doc: &Document,
    limits: &Limits,
) -> Vec<ValidationError> {
    let span = obs::span!("validate.tree");
    let (errors, tripped) = match limits.expired_kind() {
        Some(kind) => {
            limits::record_trip(&kind);
            (
                vec![ValidationError::nowhere(ValidationErrorKind::Resource(
                    kind,
                ))],
                true,
            )
        }
        None => {
            let mut errors = validate_document_inner(compiled, doc);
            let tripped = cap_errors(&mut errors, limits);
            (errors, tripped)
        }
    };
    // one end-of-run clock read shared by the trace record and the
    // histogram, so the two surfaces always agree on the duration
    let elapsed = span.finish();
    if obs::enabled() {
        if let Some(elapsed) = elapsed {
            obs::metrics()
                .histogram(
                    "validator_tree_seconds",
                    "Whole-document tree validation latency.",
                    obs::DURATION_BUCKETS,
                )
                .observe_duration(elapsed);
        }
    }
    record_errors("tree", &errors);
    if tripped {
        limits::record_rejected();
    }
    errors
}

fn validate_document_inner(compiled: &CompiledSchema, doc: &Document) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    let root = match doc.root_element() {
        Some(r) => r,
        None => {
            errors.push(ValidationError::nowhere(ValidationErrorKind::NoRootElement));
            return errors;
        }
    };
    let root_name = doc.tag_name(root).unwrap_or_default().to_string();
    match compiled.schema().element(&root_name) {
        Some(decl) => {
            if decl.is_abstract {
                errors.push(ValidationError::at_opt(
                    ValidationErrorKind::AbstractElement(root_name),
                    node_span(doc, root),
                ));
            } else {
                let type_ref = decl.type_ref.clone();
                validate_element(compiled, doc, root, &type_ref, &mut errors);
            }
        }
        None => errors.push(ValidationError::at_opt(
            ValidationErrorKind::UndeclaredRoot(root_name),
            node_span(doc, root),
        )),
    }
    errors
}

/// Convenience: `true` when [`validate_document`] finds no violations.
pub fn is_valid(compiled: &CompiledSchema, doc: &Document) -> bool {
    validate_document(compiled, doc).is_empty()
}

/// Validates the subtree rooted at `node`, assuming it should conform to
/// `type_ref`. Appends violations to `errors`.
pub fn validate_element(
    compiled: &CompiledSchema,
    doc: &Document,
    node: NodeId,
    type_ref: &TypeRef,
    errors: &mut Vec<ValidationError>,
) {
    let span = node_span(doc, node);
    let schema = compiled.schema();
    match type_ref {
        // Element of a built-in simple type: text-only content.
        TypeRef::Builtin(_) => {
            validate_simple_element(compiled, doc, node, type_ref, errors);
            validate_attributes(compiled, doc, node, None, errors);
        }
        TypeRef::Named(name) | TypeRef::Anonymous(name) => match schema.type_def(name) {
            Some(TypeDef::Simple(_)) => {
                validate_simple_element(compiled, doc, node, type_ref, errors);
                validate_attributes(compiled, doc, node, None, errors);
            }
            Some(TypeDef::Complex(ct)) => {
                if ct.is_abstract {
                    errors.push(ValidationError::at_opt(
                        ValidationErrorKind::AbstractType(name.clone()),
                        span,
                    ));
                }
                validate_attributes(compiled, doc, node, Some(name), errors);
                match &ct.content {
                    ContentModel::Simple(simple) => {
                        let simple = simple.clone();
                        validate_simple_element(compiled, doc, node, &simple, errors);
                    }
                    ContentModel::Empty | ContentModel::ElementOnly(_) => {
                        validate_complex_content(compiled, doc, node, name, false, errors);
                    }
                    ContentModel::Mixed(_) => {
                        validate_complex_content(compiled, doc, node, name, true, errors);
                    }
                }
            }
            None => errors.push(ValidationError::at_opt(
                ValidationErrorKind::UnknownType(name.clone()),
                span,
            )),
        },
    }
}

pub(crate) fn validate_simple_element(
    compiled: &CompiledSchema,
    doc: &Document,
    node: NodeId,
    type_ref: &TypeRef,
    errors: &mut Vec<ValidationError>,
) {
    let span = node_span(doc, node);
    // no element children allowed
    for child in doc.child_elements(node) {
        errors.push(ValidationError::at_opt(
            ValidationErrorKind::UnexpectedChild {
                parent: doc.tag_name(node).unwrap_or_default().to_string(),
                child: doc.tag_name(child).unwrap_or_default().to_string(),
                expected: Vec::new(),
            },
            node_span(doc, child),
        ));
    }
    let text = doc.text_content(node).unwrap_or_default();
    if let Err(e) = compiled.schema().check_simple_value(type_ref, &text) {
        errors.push(ValidationError::at_opt(
            ValidationErrorKind::SimpleType {
                element: doc.tag_name(node).unwrap_or_default().to_string(),
                message: e.to_string(),
            },
            span,
        ));
    }
}

fn validate_complex_content(
    compiled: &CompiledSchema,
    doc: &Document,
    node: NodeId,
    type_name: &str,
    mixed: bool,
    errors: &mut Vec<ValidationError>,
) {
    let parent_name = doc.tag_name(node).unwrap_or_default().to_string();
    let dfa = match compiled.content_dfa(type_name) {
        Ok(d) => d,
        Err(e) => {
            errors.push(ValidationError::at_opt(
                ValidationErrorKind::SimpleType {
                    element: parent_name,
                    message: e.to_string(),
                },
                node_span(doc, node),
            ));
            return;
        }
    };
    let mut matcher = dfa.start();
    let mut content_ok = true;
    for child in doc.child_vec(node).unwrap_or_default() {
        match doc.kind(child) {
            Ok(NodeKind::Element { name, .. }) => {
                let name = name.clone();
                if content_ok {
                    if let Err(e) = matcher.step(&name) {
                        errors.push(ValidationError::at_opt(
                            ValidationErrorKind::UnexpectedChild {
                                parent: parent_name.clone(),
                                child: name.clone(),
                                expected: e.expected,
                            },
                            node_span(doc, child),
                        ));
                        content_ok = false;
                    }
                }
                // recurse regardless, so nested errors surface too
                if let Some(child_type) = compiled.child_element_type(type_name, &name) {
                    validate_element(compiled, doc, child, &child_type, errors)
                }
                // undeclared children were already reported by the DFA step
            }
            Ok(NodeKind::Text(t)) if !mixed && !t.trim().is_empty() => {
                errors.push(ValidationError::at_opt(
                    ValidationErrorKind::TextNotAllowed {
                        element: parent_name.clone(),
                    },
                    node_span(doc, child),
                ));
            }
            // comments and PIs are always permitted
            _ => {}
        }
    }
    if content_ok && !matcher.is_accepting() {
        errors.push(ValidationError::at_opt(
            ValidationErrorKind::IncompleteContent {
                element: parent_name,
                expected: matcher.expected(),
            },
            node_span(doc, node),
        ));
    }
}

fn validate_attributes(
    compiled: &CompiledSchema,
    doc: &Document,
    node: NodeId,
    complex_type: Option<&str>,
    errors: &mut Vec<ValidationError>,
) {
    let element = doc.tag_name(node).unwrap_or_default();
    let present: Vec<(&str, &str)> = doc
        .attributes(node)
        .unwrap_or(&[])
        .iter()
        .map(|a| (a.name.as_str(), a.value.as_str()))
        .collect();
    check_attributes(
        compiled,
        element,
        &present,
        complex_type,
        node_span(doc, node),
        errors,
    );
}

/// A uniform read-only view of an attribute, so the shared checks run
/// over tree attribute lists, owned parser events, and the zero-copy
/// borrowed events without collecting into an intermediate `Vec`.
pub(crate) trait AttrView {
    /// Lexical attribute name.
    fn attr_name(&self) -> &str;
    /// Normalized attribute value.
    fn attr_value(&self) -> &str;
}

impl AttrView for (&str, &str) {
    fn attr_name(&self) -> &str {
        self.0
    }
    fn attr_value(&self) -> &str {
        self.1
    }
}

impl AttrView for xmlparse::AttributeEvent {
    fn attr_name(&self) -> &str {
        &self.name
    }
    fn attr_value(&self) -> &str {
        &self.value
    }
}

impl AttrView for xmlparse::BorrowedAttribute<'_> {
    fn attr_name(&self) -> &str {
        self.name
    }
    fn attr_value(&self) -> &str {
        &self.value
    }
}

/// The attribute checks shared by the tree and streaming validators:
/// declared values validate against their simple types, `fixed` values
/// must match, required attributes must be present, undeclared attributes
/// are rejected.
///
/// Namespace declarations (`xmlns`, `xmlns:*`) are never schema-validated.
/// `xml:*` attributes (`xml:lang`, `xml:space`, …) are validated when the
/// type declares them and exempt only when it does not.
fn check_attributes(
    compiled: &CompiledSchema,
    element: &str,
    present: &[(&str, &str)],
    complex_type: Option<&str>,
    span: Option<Span>,
    errors: &mut Vec<ValidationError>,
) {
    let declared = complex_type.and_then(|t| compiled.effective_attributes(t).ok());
    check_attributes_declared(
        compiled,
        element,
        present,
        declared.as_deref().unwrap_or(&[]),
        span,
        errors,
    );
}

/// [`check_attributes`] against an already-resolved declared list — the
/// form the streaming validator's precomputed [`schema::ElemPlan`]s call
/// directly, skipping the per-element `effective_attributes` lookup.
pub(crate) fn check_attributes_declared<A: AttrView>(
    compiled: &CompiledSchema,
    element: &str,
    present: &[A],
    declared: &[AttributeUse],
    span: Option<Span>,
    errors: &mut Vec<ValidationError>,
) {
    for attr in present {
        let (name, value) = (attr.attr_name(), attr.attr_value());
        let decl = declared.iter().find(|d| d.name == name);
        if name == "xmlns"
            || name.starts_with("xmlns:")
            || (name.starts_with("xml:") && decl.is_none())
        {
            continue;
        }
        match decl {
            Some(decl) => {
                if let Err(e) = compiled.schema().check_simple_value(&decl.type_ref, value) {
                    errors.push(ValidationError::at_opt(
                        ValidationErrorKind::AttributeValue {
                            element: element.to_string(),
                            attribute: name.to_string(),
                            message: e.to_string(),
                        },
                        span,
                    ));
                }
                if let Some(fixed) = &decl.fixed {
                    if value != fixed {
                        errors.push(ValidationError::at_opt(
                            ValidationErrorKind::FixedAttribute {
                                element: element.to_string(),
                                attribute: name.to_string(),
                                fixed: fixed.clone(),
                                actual: value.to_string(),
                            },
                            span,
                        ));
                    }
                }
            }
            None => errors.push(ValidationError::at_opt(
                ValidationErrorKind::UndeclaredAttribute {
                    element: element.to_string(),
                    attribute: name.to_string(),
                },
                span,
            )),
        }
    }
    for decl in declared {
        if decl.required && !present.iter().any(|a| a.attr_name() == decl.name) {
            errors.push(ValidationError::at_opt(
                ValidationErrorKind::MissingAttribute {
                    element: element.to_string(),
                    attribute: decl.name.clone(),
                },
                span,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::corpus::{PURCHASE_ORDER_XML, PURCHASE_ORDER_XSD, WML_XSD};

    fn compiled() -> CompiledSchema {
        CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap()
    }

    fn po_doc() -> Document {
        xmlparse::parse_document(PURCHASE_ORDER_XML).unwrap()
    }

    #[test]
    fn paper_document_is_valid() {
        let errors = validate_document(&compiled(), &po_doc());
        assert!(errors.is_empty(), "{errors:#?}");
    }

    #[test]
    fn wrong_child_order_detected() {
        let c = compiled();
        let mut doc = po_doc();
        let root = doc.root_element().unwrap();
        // move shipTo to the end, after items
        let ship = doc.child_element_named(root, "shipTo").unwrap();
        doc.detach(ship).unwrap();
        doc.append_child(root, ship).unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::UnexpectedChild { .. })));
    }

    #[test]
    fn missing_required_child_detected() {
        let c = compiled();
        let mut doc = po_doc();
        let root = doc.root_element().unwrap();
        let items = doc.child_element_named(root, "items").unwrap();
        doc.remove(items).unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors.iter().any(
            |e| matches!(&e.kind, ValidationErrorKind::IncompleteContent { expected, .. }
                if expected.contains(&"items".to_string()))
        ));
    }

    #[test]
    fn bad_simple_value_detected_with_position() {
        let c = compiled();
        let mut doc = po_doc();
        let root = doc.root_element().unwrap();
        let ship = doc.child_element_named(root, "shipTo").unwrap();
        let zip = doc.child_element_named(ship, "zip").unwrap();
        let text = doc.child_vec(zip).unwrap()[0];
        doc.set_text(text, "not-a-number").unwrap();
        let errors = validate_document(&c, &doc);
        assert_eq!(errors.len(), 1, "{errors:#?}");
        assert!(matches!(
            errors[0].kind,
            ValidationErrorKind::SimpleType { .. }
        ));
        assert!(errors[0].span.expect("parsed nodes carry spans").start.line > 1);
    }

    #[test]
    fn programmatic_nodes_report_no_position() {
        let c = compiled();
        let mut doc = Document::new();
        let root = doc.create_element("unknownRoot").unwrap();
        let dn = doc.document_node();
        doc.append_child(dn, root).unwrap();
        let errors = validate_document(&c, &doc);
        assert_eq!(errors[0].span, None);
        let shown = errors[0].to_string();
        assert!(shown.contains("(no source position)"), "{shown}");
        assert!(!shown.contains("1:1"), "{shown}");
    }

    #[test]
    fn parsed_nodes_display_their_position() {
        let c = compiled();
        let doc = xmlparse::parse_document("<purchaseOrder orderDate=\"bad\"/>").unwrap();
        let errors = validate_document(&c, &doc);
        let attr_err = errors
            .iter()
            .find(|e| matches!(e.kind, ValidationErrorKind::AttributeValue { .. }))
            .unwrap();
        assert!(attr_err.to_string().contains("at 1:1"), "{attr_err}");
    }

    #[test]
    fn undeclared_xml_prefixed_attribute_is_exempt() {
        // xml:lang is not declared on purchaseOrder: tolerated, like xmlns
        let c = compiled();
        let mut doc = po_doc();
        let root = doc.root_element().unwrap();
        doc.set_attribute(root, "xml:lang", "en").unwrap();
        doc.set_attribute(root, "xmlns:po", "urn:example:po")
            .unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors.is_empty(), "{errors:#?}");
    }

    #[test]
    fn declared_xml_prefixed_attribute_is_validated() {
        // a type that *declares* xml:lang as an integer must reject "en"
        let xsd = r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
          <xsd:element name="note" type="noteType"/>
          <xsd:complexType name="noteType">
            <xsd:attribute name="xml:lang" type="xsd:integer" use="required"/>
          </xsd:complexType>
        </xsd:schema>"#;
        let c = CompiledSchema::parse(xsd).unwrap();
        let doc = xmlparse::parse_document("<note xml:lang=\"en\"/>").unwrap();
        let errors = validate_document(&c, &doc);
        assert!(
            errors.iter().any(|e| matches!(
                &e.kind,
                ValidationErrorKind::AttributeValue { attribute, .. } if attribute == "xml:lang"
            )),
            "{errors:#?}"
        );
        // absent declared-required xml:lang is a missing-attribute error
        let doc = xmlparse::parse_document("<note/>").unwrap();
        let errors = validate_document(&c, &doc);
        assert!(
            errors.iter().any(|e| matches!(
                &e.kind,
                ValidationErrorKind::MissingAttribute { attribute, .. } if attribute == "xml:lang"
            )),
            "{errors:#?}"
        );
    }

    #[test]
    fn bad_attribute_value_detected() {
        let c = compiled();
        let mut doc = po_doc();
        let root = doc.root_element().unwrap();
        doc.set_attribute(root, "orderDate", "yesterday").unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::AttributeValue { .. })));
    }

    #[test]
    fn missing_required_attribute_detected() {
        let c = compiled();
        let mut doc = po_doc();
        let root = doc.root_element().unwrap();
        let items = doc.child_element_named(root, "items").unwrap();
        let item = doc.child_elements(items).next().unwrap();
        doc.remove_attribute(item, "partNum").unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors.iter().any(|e| matches!(
            &e.kind,
            ValidationErrorKind::MissingAttribute { attribute, .. } if attribute == "partNum"
        )));
    }

    #[test]
    fn fixed_attribute_enforced() {
        let c = compiled();
        let mut doc = po_doc();
        let root = doc.root_element().unwrap();
        let ship = doc.child_element_named(root, "shipTo").unwrap();
        doc.set_attribute(ship, "country", "DE").unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors.iter().any(|e| matches!(
            &e.kind,
            ValidationErrorKind::FixedAttribute { fixed, actual, .. }
                if fixed == "US" && actual == "DE"
        )));
    }

    #[test]
    fn undeclared_attribute_detected() {
        let c = compiled();
        let mut doc = po_doc();
        let root = doc.root_element().unwrap();
        doc.set_attribute(root, "bogus", "x").unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::UndeclaredAttribute { .. })));
    }

    #[test]
    fn text_in_element_only_content_detected() {
        let c = compiled();
        let mut doc = po_doc();
        let root = doc.root_element().unwrap();
        let t = doc.create_text("stray text");
        doc.append_child(root, t).unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::TextNotAllowed { .. })));
    }

    #[test]
    fn undeclared_root_detected() {
        let c = compiled();
        let mut doc = Document::new();
        let root = doc.create_element("unknownRoot").unwrap();
        let dn = doc.document_node();
        doc.append_child(dn, root).unwrap();
        let errors = validate_document(&c, &doc);
        assert!(matches!(
            errors[0].kind,
            ValidationErrorKind::UndeclaredRoot(_)
        ));
    }

    #[test]
    fn multiple_errors_collected() {
        let c = compiled();
        let mut doc = po_doc();
        let root = doc.root_element().unwrap();
        doc.set_attribute(root, "orderDate", "bad").unwrap();
        doc.set_attribute(root, "bogus", "x").unwrap();
        let items = doc.child_element_named(root, "items").unwrap();
        doc.remove(items).unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors.len() >= 3, "{errors:#?}");
    }

    #[test]
    fn mixed_content_allows_text() {
        let c = CompiledSchema::parse(WML_XSD).unwrap();
        let doc = xmlparse::parse_document(
            "<wml><card id=\"c\"><p>hello <b>bold</b> world<br/></p></card></wml>",
        )
        .unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors.is_empty(), "{errors:#?}");
    }

    #[test]
    fn wml_select_requires_option() {
        let c = CompiledSchema::parse(WML_XSD).unwrap();
        let doc = xmlparse::parse_document(
            "<wml><card><p><select name=\"dirs\"></select></p></card></wml>",
        )
        .unwrap();
        let errors = validate_document(&c, &doc);
        assert!(errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::IncompleteContent { .. })));
    }

    #[test]
    fn is_valid_helper() {
        assert!(is_valid(&compiled(), &po_doc()));
    }

    #[test]
    fn tree_error_cap_yields_prefix_plus_marker() {
        let c = compiled();
        let mut src = String::from("<purchaseOrder><items>");
        for _ in 0..30 {
            src.push_str("<item/>");
        }
        src.push_str("</items></purchaseOrder>");
        let doc = xmlparse::parse_document(&src).unwrap();
        let unbounded = validate_document_with_limits(&c, &doc, &Limits::unbounded());
        assert!(unbounded.len() > 20);
        let capped = validate_document_with_limits(&c, &doc, &Limits::default().with_max_errors(5));
        assert_eq!(capped.len(), 6, "{capped:#?}");
        assert_eq!(&capped[..5], &unbounded[..5]);
        let marker = capped.last().unwrap();
        assert!(matches!(
            marker.kind,
            ValidationErrorKind::Resource(ResourceErrorKind::TooManyErrors { limit: 5 })
        ));
        assert_eq!(marker.span, unbounded[5].span);
        // the default cap leaves this document untouched
        assert_eq!(validate_document(&c, &doc), unbounded);
    }

    #[test]
    fn tree_rejects_up_front_on_expired_budget() {
        let c = compiled();
        let doc = po_doc();
        let token = limits::CancelToken::new();
        token.cancel();
        let errors =
            validate_document_with_limits(&c, &doc, &Limits::default().with_cancel_token(&token));
        assert_eq!(errors.len(), 1, "{errors:#?}");
        assert!(matches!(
            errors[0].kind,
            ValidationErrorKind::Resource(ResourceErrorKind::Cancelled)
        ));
        assert_eq!(errors[0].span, None);
    }
}
