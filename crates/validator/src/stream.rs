//! Streaming validation over the pull parser's events — the same checks
//! as the tree validator, without ever materializing a [`dom::Document`].
//!
//! [`StreamingValidator`] consumes [`xmlparse::Event`]s and keeps only a
//! stack of open-element frames: element name, start-tag span, and either
//! a content-model DFA matcher (complex content) or a text buffer plus
//! simple-type reference (simple content). Memory is O(depth + deepest
//! buffered leaf text), so arbitrarily long documents validate in
//! constant space — the server-page use case, where a rendered page is
//! checked on its way out rather than parsed into a tree first (bench
//! B2b measures the difference).
//!
//! The checks and their order are identical to
//! [`validate_document`](crate::validate_document) — attribute checks at
//! element open, DFA steps per child, text-placement per text run, and
//! buffered simple-value checks at element close — so both validators
//! produce the same error list (kinds *and* spans) for any well-formed
//! input; `tests/tests/streaming_prop.rs` asserts this differentially.

use automata::{DfaMatcher, Matcher};
use schema::{CompiledSchema, ContentModel, TypeDef, TypeRef};
use xmlchars::Span;
use xmlparse::{AttributeEvent, Event, Reader};

use crate::check_attributes;
use crate::error::{ValidationError, ValidationErrorKind};

/// What an open frame is checking, mirroring the tree validator's three
/// regimes for an element's content.
enum FrameKind {
    /// Complex element-only or mixed content: child names step a DFA.
    Complex {
        /// Name of the complex type (for child-type lookups).
        type_name: String,
        matcher: DfaMatcher,
        mixed: bool,
        /// Cleared by the first failed DFA step; suppresses the
        /// close-time completeness check, exactly like the tree walk.
        content_ok: bool,
    },
    /// Simple-typed content: text buffers until the close tag, then
    /// validates (whitespace → built-in → facets) in one shot.
    Simple { type_ref: TypeRef, text: String },
    /// A subtree that cannot be validated — undeclared child, unknown or
    /// abstract root, uncompilable content model. The error (if any) was
    /// reported when the frame opened; the subtree is consumed silently,
    /// as the tree validator does by not recursing.
    Skip,
}

struct Frame {
    name: String,
    span: Span,
    kind: FrameKind,
}

/// Decided at element open: how to frame the element being entered.
enum OpenAs {
    Typed(TypeRef),
    Skip,
}

/// An incremental validator over [`xmlparse::Event`]s.
///
/// Feed events in document order via [`feed`](Self::feed); collect the
/// violations with [`finish`](Self::finish) (or inspect them mid-stream
/// with [`errors`](Self::errors)). The event source is typically
/// [`xmlparse::Reader`]; [`validate_str_streaming`] wires the two
/// together.
pub struct StreamingValidator<'a> {
    compiled: &'a CompiledSchema,
    stack: Vec<Frame>,
    errors: Vec<ValidationError>,
    saw_root: bool,
    /// Deepest element nesting seen (observability; histogram-recorded
    /// when the stream finishes).
    max_depth: usize,
}

impl<'a> StreamingValidator<'a> {
    /// A validator with an empty stack, ready for a document's events.
    pub fn new(compiled: &'a CompiledSchema) -> StreamingValidator<'a> {
        StreamingValidator {
            compiled,
            stack: Vec::new(),
            errors: Vec::new(),
            saw_root: false,
            max_depth: 0,
        }
    }

    /// Consumes one event. Events must arrive in the order the reader
    /// produced them; `Eof` is accepted and ignored.
    pub fn feed(&mut self, event: &Event) {
        match event {
            Event::StartElement {
                name,
                attributes,
                span,
                ..
            } => self.on_start(name, attributes, *span),
            Event::EndElement { .. } => self.on_end(),
            Event::Text { text, span } => self.on_text(text, *span),
            // comments and PIs are always permitted
            Event::Comment { .. } | Event::ProcessingInstruction { .. } | Event::Eof => {}
        }
    }

    /// Feeds every event from `events` in order, returning the number of
    /// violations found so far (over the whole stream, not just this
    /// batch). Accepts owned events or references, so a handler can pipe
    /// an event source straight through and abort on a rising
    /// [`error_count`](Self::error_count) without collecting anything:
    ///
    /// ```ignore
    /// if validator.feed_all(&batch) > limit {
    ///     return reject(validator.into_errors());
    /// }
    /// ```
    pub fn feed_all<E: std::borrow::Borrow<Event>>(
        &mut self,
        events: impl IntoIterator<Item = E>,
    ) -> usize {
        for event in events {
            self.feed(event.borrow());
        }
        self.errors.len()
    }

    /// The violations found so far.
    pub fn errors(&self) -> &[ValidationError] {
        &self.errors
    }

    /// Number of violations found so far — the cheap mid-stream abort
    /// check (no error list is cloned or drained).
    pub fn error_count(&self) -> usize {
        self.errors.len()
    }

    /// Number of currently open element frames — the validator's entire
    /// per-document state (besides leaf text buffers).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Finishes the document and returns all violations. Reports
    /// [`ValidationErrorKind::NoRootElement`] if no element was ever fed,
    /// mirroring the tree validator on an empty document.
    pub fn finish(mut self) -> Vec<ValidationError> {
        if !self.saw_root {
            self.errors
                .push(ValidationError::nowhere(ValidationErrorKind::NoRootElement));
        }
        self.flush_metrics();
        self.errors
    }

    /// Abandons the stream, keeping the violations found so far.
    pub fn into_errors(self) -> Vec<ValidationError> {
        self.flush_metrics();
        self.errors
    }

    /// Records this stream's error population and depth once, at the
    /// terminal call ([`finish`](Self::finish) / [`into_errors`](Self::into_errors)
    /// — both consume the validator, so this cannot double-count).
    fn flush_metrics(&self) {
        if !obs::enabled() {
            return;
        }
        crate::record_errors("streaming", &self.errors);
        obs::metrics()
            .histogram(
                "validator_stream_max_depth",
                "Deepest element nesting per streamed document.",
                obs::DEPTH_BUCKETS,
            )
            .observe(self.max_depth as f64);
    }

    fn on_start(&mut self, name: &str, attributes: &[AttributeEvent], span: Span) {
        let open_as = if let Some(parent) = self.stack.last_mut() {
            match &mut parent.kind {
                FrameKind::Complex {
                    type_name,
                    matcher,
                    content_ok,
                    ..
                } => {
                    if *content_ok {
                        if let Err(e) = matcher.step(name) {
                            *content_ok = false;
                            self.errors.push(ValidationError::at(
                                ValidationErrorKind::UnexpectedChild {
                                    parent: parent.name.clone(),
                                    child: name.to_string(),
                                    expected: e.expected,
                                },
                                span,
                            ));
                        }
                    }
                    // enter declared children regardless, so nested errors
                    // surface too; undeclared ones were just reported
                    match self.compiled.child_element_type(type_name, name) {
                        Some(t) => OpenAs::Typed(t),
                        None => OpenAs::Skip,
                    }
                }
                FrameKind::Simple { .. } => {
                    self.errors.push(ValidationError::at(
                        ValidationErrorKind::UnexpectedChild {
                            parent: parent.name.clone(),
                            child: name.to_string(),
                            expected: Vec::new(),
                        },
                        span,
                    ));
                    OpenAs::Skip
                }
                FrameKind::Skip => OpenAs::Skip,
            }
        } else {
            self.saw_root = true;
            match self.compiled.schema().element(name) {
                Some(decl) if decl.is_abstract => {
                    self.errors.push(ValidationError::at(
                        ValidationErrorKind::AbstractElement(name.to_string()),
                        span,
                    ));
                    OpenAs::Skip
                }
                Some(decl) => OpenAs::Typed(decl.type_ref.clone()),
                None => {
                    self.errors.push(ValidationError::at(
                        ValidationErrorKind::UndeclaredRoot(name.to_string()),
                        span,
                    ));
                    OpenAs::Skip
                }
            }
        };
        let kind = match open_as {
            OpenAs::Typed(type_ref) => self.open_typed(name, &type_ref, attributes, span),
            OpenAs::Skip => FrameKind::Skip,
        };
        self.stack.push(Frame {
            name: name.to_string(),
            span,
            kind,
        });
        self.max_depth = self.max_depth.max(self.stack.len());
    }

    /// Runs the element-open checks (abstract type, attributes) and picks
    /// the frame regime for a declared element — the streaming twin of
    /// `validate_element`'s dispatch on the type reference.
    fn open_typed(
        &mut self,
        name: &str,
        type_ref: &TypeRef,
        attributes: &[AttributeEvent],
        span: Span,
    ) -> FrameKind {
        let compiled = self.compiled;
        let attrs: Vec<(&str, &str)> = attributes
            .iter()
            .map(|a| (a.name.as_str(), a.value.as_str()))
            .collect();
        let simple = |type_ref: &TypeRef| FrameKind::Simple {
            type_ref: type_ref.clone(),
            text: String::new(),
        };
        match type_ref {
            TypeRef::Builtin(_) => {
                check_attributes(compiled, name, &attrs, None, Some(span), &mut self.errors);
                simple(type_ref)
            }
            TypeRef::Named(tn) | TypeRef::Anonymous(tn) => match compiled.schema().type_def(tn) {
                Some(TypeDef::Simple(_)) => {
                    check_attributes(compiled, name, &attrs, None, Some(span), &mut self.errors);
                    simple(type_ref)
                }
                Some(TypeDef::Complex(ct)) => {
                    if ct.is_abstract {
                        self.errors.push(ValidationError::at(
                            ValidationErrorKind::AbstractType(tn.clone()),
                            span,
                        ));
                    }
                    check_attributes(
                        compiled,
                        name,
                        &attrs,
                        Some(tn),
                        Some(span),
                        &mut self.errors,
                    );
                    match &ct.content {
                        ContentModel::Simple(simple_ref) => simple(simple_ref),
                        ContentModel::Empty | ContentModel::ElementOnly(_) => {
                            self.complex_frame(name, tn, false, span)
                        }
                        ContentModel::Mixed(_) => self.complex_frame(name, tn, true, span),
                    }
                }
                None => {
                    self.errors.push(ValidationError::at(
                        ValidationErrorKind::UnknownType(tn.clone()),
                        span,
                    ));
                    FrameKind::Skip
                }
            },
        }
    }

    fn complex_frame(&mut self, name: &str, type_name: &str, mixed: bool, span: Span) -> FrameKind {
        match self.compiled.content_dfa(type_name) {
            Ok(dfa) => FrameKind::Complex {
                type_name: type_name.to_string(),
                matcher: dfa.start(),
                mixed,
                content_ok: true,
            },
            Err(e) => {
                self.errors.push(ValidationError::at(
                    ValidationErrorKind::SimpleType {
                        element: name.to_string(),
                        message: e.to_string(),
                    },
                    span,
                ));
                FrameKind::Skip
            }
        }
    }

    fn on_text(&mut self, text: &str, span: Span) {
        // Walk inward-out: the nearest frame decides. A Skip frame defers
        // to its enclosing frames only for simple-content buffering (the
        // tree's `text_content` concatenates *descendant* text), never for
        // text-placement errors (the tree walk does not descend into
        // undeclared subtrees).
        let top = match self.stack.len().checked_sub(1) {
            Some(top) => top,
            // text with no open element (prolog/epilog whitespace)
            None => return,
        };
        for i in (0..=top).rev() {
            let frame = &mut self.stack[i];
            match &mut frame.kind {
                FrameKind::Skip => continue,
                FrameKind::Simple { text: buffer, .. } => buffer.push_str(text),
                FrameKind::Complex { mixed, .. } => {
                    if i == top && !*mixed && !text.trim().is_empty() {
                        let element = frame.name.clone();
                        self.errors.push(ValidationError::at(
                            ValidationErrorKind::TextNotAllowed { element },
                            span,
                        ));
                    }
                }
            }
            return;
        }
    }

    fn on_end(&mut self) {
        let frame = match self.stack.pop() {
            Some(f) => f,
            // unmatched end tag: the reader rejects this before we see it
            None => return,
        };
        match frame.kind {
            FrameKind::Simple { type_ref, text } => {
                if let Err(e) = self
                    .compiled
                    .schema()
                    .validate_simple_value(&type_ref, &text)
                {
                    self.errors.push(ValidationError::at(
                        ValidationErrorKind::SimpleType {
                            element: frame.name,
                            message: e.to_string(),
                        },
                        frame.span,
                    ));
                }
            }
            FrameKind::Complex {
                matcher,
                content_ok,
                ..
            } => {
                if content_ok && !matcher.is_accepting() {
                    self.errors.push(ValidationError::at(
                        ValidationErrorKind::IncompleteContent {
                            element: frame.name,
                            expected: matcher.expected(),
                        },
                        frame.span,
                    ));
                }
            }
            FrameKind::Skip => {}
        }
    }
}

/// Parses and validates `src` in one streaming pass, without building a
/// tree. Parse failures surface as a trailing
/// [`ValidationErrorKind::NotWellFormed`] after whatever violations the
/// valid prefix already produced.
pub fn validate_str_streaming(compiled: &CompiledSchema, src: &str) -> Vec<ValidationError> {
    let _span = obs::span!("validate.stream");
    let timer = obs::Timer::start();
    let errors = validate_str_streaming_inner(compiled, src);
    if let Some(elapsed) = timer.stop() {
        obs::metrics()
            .histogram(
                "validator_stream_seconds",
                "Streaming (parse + validate) latency per document.",
                obs::DURATION_BUCKETS,
            )
            .observe_duration(elapsed);
    }
    errors
}

fn validate_str_streaming_inner(compiled: &CompiledSchema, src: &str) -> Vec<ValidationError> {
    let mut reader = Reader::new(src);
    let mut validator = StreamingValidator::new(compiled);
    loop {
        match reader.next_event() {
            Ok(Event::Eof) => return validator.finish(),
            Ok(event) => validator.feed(&event),
            Err(e) => {
                // into_errors() has already flushed the validator's own
                // tallies; the synthesized well-formedness error must be
                // recorded separately or it would go unmetered
                let mut errors = validator.into_errors();
                let wf = ValidationError::at(
                    ValidationErrorKind::NotWellFormed(e.kind.to_string()),
                    Span {
                        start: e.position,
                        end: e.position,
                    },
                );
                crate::record_errors("streaming", std::slice::from_ref(&wf));
                errors.push(wf);
                return errors;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_document;
    use schema::corpus::{PURCHASE_ORDER_XML, PURCHASE_ORDER_XSD, WML_XSD};

    fn po() -> CompiledSchema {
        CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap()
    }

    fn wml() -> CompiledSchema {
        CompiledSchema::parse(WML_XSD).unwrap()
    }

    /// Both validators on the same source; asserts full agreement
    /// (kinds *and* spans) and returns the streaming list.
    fn both(compiled: &CompiledSchema, src: &str) -> Vec<ValidationError> {
        let streamed = validate_str_streaming(compiled, src);
        let doc = xmlparse::parse_document(src).expect("well-formed test input");
        let treed = validate_document(compiled, &doc);
        assert_eq!(streamed, treed, "validators disagree on:\n{src}");
        streamed
    }

    #[test]
    fn paper_document_is_valid() {
        assert!(both(&po(), PURCHASE_ORDER_XML).is_empty());
    }

    #[test]
    fn mixed_content_allows_text() {
        let errors = both(
            &wml(),
            "<wml><card id=\"c\"><p>hello <b>bold</b> world<br/></p></card></wml>",
        );
        assert!(errors.is_empty(), "{errors:#?}");
    }

    #[test]
    fn wrong_child_order_detected() {
        let src = PURCHASE_ORDER_XML
            .replacen("<shipTo", "<billTo", 1)
            .replacen("</shipTo>", "</billTo>", 1);
        let errors = validate_str_streaming(&po(), &src);
        assert!(errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::UnexpectedChild { .. })));
    }

    #[test]
    fn bad_simple_value_detected_with_position() {
        let src = PURCHASE_ORDER_XML.replace("<zip>90952</zip>", "<zip>not a number</zip>");
        let errors = both(&po(), &src);
        assert_eq!(errors.len(), 1, "{errors:#?}");
        assert!(matches!(
            errors[0].kind,
            ValidationErrorKind::SimpleType { .. }
        ));
        assert!(errors[0].span.unwrap().start.line > 1);
    }

    #[test]
    fn attribute_violations_detected() {
        let src = PURCHASE_ORDER_XML
            .replace("orderDate=\"1999-10-20\"", "orderDate=\"soon\" bogus=\"x\"")
            .replace("country=\"US\"", "country=\"DE\"")
            .replace(" partNum=\"872-AA\"", "");
        let errors = both(&po(), &src);
        for expect in [
            |k: &ValidationErrorKind| matches!(k, ValidationErrorKind::AttributeValue { .. }),
            |k: &ValidationErrorKind| matches!(k, ValidationErrorKind::UndeclaredAttribute { .. }),
            |k: &ValidationErrorKind| matches!(k, ValidationErrorKind::FixedAttribute { .. }),
            |k: &ValidationErrorKind| matches!(k, ValidationErrorKind::MissingAttribute { .. }),
        ] {
            assert!(errors.iter().any(|e| expect(&e.kind)), "{errors:#?}");
        }
    }

    #[test]
    fn incomplete_content_detected() {
        let src = PURCHASE_ORDER_XML.replacen("<zip>90952</zip>", "", 1);
        let errors = both(&po(), &src);
        assert!(errors.iter().any(|e| matches!(
            &e.kind,
            ValidationErrorKind::IncompleteContent { expected, .. }
                if expected.contains(&"zip".to_string())
        )));
    }

    #[test]
    fn text_in_element_only_content_detected() {
        let errors = both(&wml(), "<wml>stray<card id=\"c\"><p>fine</p></card></wml>");
        assert!(errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::TextNotAllowed { .. })));
    }

    #[test]
    fn undeclared_root_detected() {
        let errors = both(&po(), "<unknownRoot/>");
        assert!(matches!(
            errors[0].kind,
            ValidationErrorKind::UndeclaredRoot(_)
        ));
    }

    #[test]
    fn undeclared_subtree_consumed_without_validation() {
        // the bogus subtree is reported once at its open tag; its inner
        // garbage is not separately validated (same as the tree walk)
        let src = PURCHASE_ORDER_XML.replace(
            "<comment>Hurry, my lawn is going wild</comment>",
            "<bogus><zip>still not checked</zip></bogus>",
        );
        let errors = both(&po(), &src);
        assert_eq!(errors.len(), 1, "{errors:#?}");
        assert!(matches!(
            &errors[0].kind,
            ValidationErrorKind::UnexpectedChild { child, .. } if child == "bogus"
        ));
    }

    #[test]
    fn malformed_input_reported_not_well_formed() {
        let errors = validate_str_streaming(&po(), "<purchaseOrder><shipTo></purchaseOrder>");
        assert!(matches!(
            errors.last().unwrap().kind,
            ValidationErrorKind::NotWellFormed(_)
        ));
    }

    #[test]
    fn duplicate_attributes_rejected_before_validation() {
        // duplicates are a well-formedness violation caught by the parser
        // (reader::DuplicateAttribute), so neither validator ever sees
        // them; the streaming entry point reports the rejection honestly
        let errors = validate_str_streaming(
            &po(),
            "<purchaseOrder orderDate=\"1999-10-20\" orderDate=\"1999-10-21\"/>",
        );
        assert!(matches!(
            &errors.last().unwrap().kind,
            ValidationErrorKind::NotWellFormed(m) if m.contains("duplicate attribute")
        ));
    }

    #[test]
    fn empty_input_reports_missing_root() {
        let errors = validate_str_streaming(&po(), "");
        assert!(!errors.is_empty());
    }

    #[test]
    fn memory_is_bounded_by_depth_not_length() {
        // feed a long flat document event by event; the stack never grows
        // beyond the element depth
        let compiled = wml();
        let mut page = String::from("<wml><card id=\"c\"><p><select name=\"d\">");
        for i in 0..2000 {
            page.push_str(&format!("<option value=\"{i}\">o{i}</option>"));
        }
        page.push_str("</select></p></card></wml>");
        let mut reader = Reader::new(&page);
        let mut v = StreamingValidator::new(&compiled);
        let mut max_depth = 0;
        loop {
            match reader.next_event().unwrap() {
                Event::Eof => break,
                event => {
                    v.feed(&event);
                    max_depth = max_depth.max(v.depth());
                }
            }
        }
        assert!(max_depth <= 5, "depth grew to {max_depth}");
        assert!(v.finish().is_empty());
    }

    #[test]
    fn feed_all_counts_errors_without_collecting() {
        let compiled = po();
        let mut reader = Reader::new("<purchaseOrder><junk/></purchaseOrder>");
        let mut events = Vec::new();
        loop {
            match reader.next_event().unwrap() {
                Event::Eof => break,
                event => events.push(event),
            }
        }
        // by reference
        let mut v = StreamingValidator::new(&compiled);
        assert_eq!(v.error_count(), 0);
        let count = v.feed_all(&events);
        assert_eq!(count, v.error_count());
        assert_eq!(count, 1, "{:#?}", v.errors());
        // by value, split into batches: the return value is cumulative
        let (first, rest) = events.split_at(1);
        let mut v2 = StreamingValidator::new(&compiled);
        assert_eq!(v2.feed_all(first.to_vec()), 0);
        assert_eq!(v2.feed_all(rest.to_vec()), count);
        assert_eq!(v2.finish().len(), count);
    }

    #[test]
    fn feed_and_errors_are_incremental() {
        let compiled = po();
        let mut v = StreamingValidator::new(&compiled);
        let mut reader = Reader::new("<purchaseOrder><junk/></purchaseOrder>");
        loop {
            match reader.next_event().unwrap() {
                Event::Eof => break,
                event => v.feed(&event),
            }
        }
        // <junk> rejected mid-stream, before finish()
        assert!(v
            .errors()
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::UnexpectedChild { .. })));
        v.finish();
    }
}
