//! Streaming validation over the pull parser's events — the same checks
//! as the tree validator, without ever materializing a [`dom::Document`].
//!
//! [`StreamingValidator`] consumes parser events and keeps only a stack
//! of open-element frames: element name, start-tag span, and either a
//! content-model DFA matcher (complex content) or a text buffer plus
//! simple-type reference (simple content). Memory is O(depth + deepest
//! buffered leaf text), so arbitrarily long documents validate in
//! constant space — the server-page use case, where a rendered page is
//! checked on its way out rather than parsed into a tree first (bench
//! B2b measures the difference).
//!
//! The hot path is **allocation-free**: [`Self::feed_borrowed`] takes the
//! reader's zero-copy [`BorrowedEvent`]s, dispatches through the schema's
//! precomputed [`SymIndex`] (two integer hash lookups per element: root
//! or `(type, child)` → [`ElemPlan`]), steps the content DFA by interned
//! symbol, and buffers leaf text as a borrowed slice of the source. For
//! a valid, entity-free document, no string is hashed, compared, copied,
//! or allocated between the start tag and the error check — the
//! allocation-counter test in `tests/tests/alloc_smoke.rs` holds this at
//! exactly zero per event.
//!
//! The checks and their order are identical to
//! [`validate_document`](crate::validate_document) — attribute checks at
//! element open, DFA steps per child, text-placement per text run, and
//! buffered simple-value checks at element close — so both validators
//! produce the same error list (kinds *and* spans) for any well-formed
//! input; `tests/tests/streaming_prop.rs` and
//! `tests/tests/zero_copy_prop.rs` assert this differentially.

use std::borrow::Cow;
use std::sync::Arc;

use automata::{DfaMatcher, Matcher};
use limits::Limits;
use schema::{CompiledSchema, ContentPlan, ElemPlan, RootPlan, SymIndex};
use symbols::Sym;
use xmlchars::Span;
use xmlparse::{BorrowedEvent, Event, FeedReader, ParseError, ParseErrorKind, Reader};

use crate::error::{ValidationError, ValidationErrorKind};
use crate::{check_attributes_declared, AttrView};

/// Buffered character data of a simple-content frame. Starts borrowing
/// the source; promotes to an owned buffer only when a second text run
/// arrives (split by a comment, PI, CDATA boundary, or a skipped child)
/// or when the text itself needed entity expansion.
enum TextBuf<'src> {
    Empty,
    Borrowed(&'src str),
    Owned(String),
}

impl<'src> TextBuf<'src> {
    fn as_str(&self) -> &str {
        match self {
            TextBuf::Empty => "",
            TextBuf::Borrowed(s) => s,
            TextBuf::Owned(s) => s,
        }
    }

    fn push(&mut self, run: TextRun<'src, '_>) {
        match self {
            TextBuf::Empty => {
                *self = match run {
                    TextRun::Zero(Cow::Borrowed(s)) => TextBuf::Borrowed(s),
                    TextRun::Zero(Cow::Owned(s)) => TextBuf::Owned(s),
                    TextRun::Copy(s) => TextBuf::Owned(s.to_string()),
                }
            }
            TextBuf::Borrowed(prev) => {
                let run = run.as_str();
                let mut s = String::with_capacity(prev.len() + run.len());
                s.push_str(prev);
                s.push_str(run);
                *self = TextBuf::Owned(s);
            }
            TextBuf::Owned(buf) => buf.push_str(run.as_str()),
        }
    }
}

/// One text run on its way into the validator: a `Cow` straight off the
/// zero-copy stream (storable as-is), or a transient borrow from an owned
/// [`Event`] (copied only if a simple-content frame actually buffers it).
enum TextRun<'src, 't> {
    Zero(Cow<'src, str>),
    Copy(&'t str),
}

impl TextRun<'_, '_> {
    fn as_str(&self) -> &str {
        match self {
            TextRun::Zero(c) => c,
            TextRun::Copy(s) => s,
        }
    }
}

/// An open-element frame, mirroring the tree validator's three regimes
/// for an element's content. Only checked frames carry their name (as an
/// interned symbol — every checked element is, by construction, declared
/// somewhere in the schema and therefore interned at index build time);
/// skipped subtrees carry nothing at all.
enum Frame<'src> {
    /// Complex element-only or mixed content: child names step a DFA.
    Complex {
        name: Sym,
        /// The complex type's interned name — the key for child plan
        /// lookups.
        type_sym: Sym,
        matcher: DfaMatcher,
        mixed: bool,
        /// Cleared by the first failed DFA step; suppresses the
        /// close-time completeness check, exactly like the tree walk.
        content_ok: bool,
        span: Span,
    },
    /// Simple-typed content: text buffers until the close tag, then
    /// validates (whitespace → built-in → facets) in one shot.
    Simple {
        name: Sym,
        /// The open plan; its [`ContentPlan::Simple`] holds the type to
        /// check at close.
        plan: Arc<ElemPlan>,
        text: TextBuf<'src>,
        span: Span,
    },
    /// A subtree that cannot be validated — undeclared child, unknown or
    /// abstract root, uncompilable content model. The error (if any) was
    /// reported when the frame opened; the subtree is consumed silently,
    /// as the tree validator does by not recursing.
    Skip,
}

/// An incremental validator over parser events.
///
/// Feed zero-copy events via [`feed_borrowed`](Self::feed_borrowed) (the
/// allocation-free path) or owned events via [`feed`](Self::feed);
/// collect the violations with [`finish`](Self::finish) (or inspect them
/// mid-stream with [`errors`](Self::errors)). The event source is
/// typically [`xmlparse::Reader`]; [`validate_str_streaming`] wires the
/// two together.
///
/// `'src` is the source buffer borrowed events slice; for owned-event
/// feeding it is unconstrained.
pub struct StreamingValidator<'a, 'src> {
    compiled: &'a CompiledSchema,
    /// The schema's precomputed symbol-keyed dispatch plans.
    index: &'a SymIndex,
    stack: Vec<Frame<'src>>,
    errors: Vec<ValidationError>,
    saw_root: bool,
    /// Deepest element nesting seen (observability; histogram-recorded
    /// when the stream finishes).
    max_depth: usize,
    /// The collection-side budgets this validator enforces: the error
    /// cap after every event, deadline/cancellation before every event
    /// (only when [`Limits::has_clock`] — otherwise the clock is never
    /// read).
    limits: Limits,
    /// Set once a budget trips; all further events are ignored and the
    /// error list ends with its [`ValidationErrorKind::Resource`] marker.
    tripped: bool,
    /// Events seen since the last clock read; see
    /// [`CLOCK_STRIDE`](Self::CLOCK_STRIDE).
    clock_events: u32,
}

impl<'a, 'src> StreamingValidator<'a, 'src> {
    /// A validator with an empty stack, ready for a document's events.
    /// Builds the schema's [`SymIndex`] if this is its first use (warmed
    /// schemas have it precomputed). Runs under [`Limits::default`];
    /// those ceilings are far above anything a legitimate document
    /// produces, so results are byte-identical to an unbounded run.
    pub fn new(compiled: &'a CompiledSchema) -> StreamingValidator<'a, 'src> {
        StreamingValidator::with_limits(compiled, Limits::default())
    }

    /// [`Self::new`] under an explicit resource budget. The validator
    /// enforces the collection-side budgets (`max_errors`, deadline,
    /// cancellation); the parse-side budgets belong to
    /// [`xmlparse::Reader::with_limits`].
    pub fn with_limits(
        compiled: &'a CompiledSchema,
        limits: Limits,
    ) -> StreamingValidator<'a, 'src> {
        StreamingValidator {
            compiled,
            index: compiled.sym_index(),
            stack: Vec::new(),
            errors: Vec::new(),
            saw_root: false,
            max_depth: 0,
            limits,
            tripped: false,
            clock_events: 0,
        }
    }

    /// Consumes one owned event. Events must arrive in the order the
    /// reader produced them; `Eof` is accepted and ignored. Once a
    /// budget trips ([`tripped`](Self::tripped)), events are discarded.
    pub fn feed(&mut self, event: &Event) {
        if self.gate(owned_event_span(event)) {
            return;
        }
        match event {
            Event::StartElement {
                name,
                attributes,
                span,
                ..
            } => self.on_start(name, attributes, *span),
            Event::EndElement { .. } => self.on_end(),
            Event::Text { text, span } => self.on_text(TextRun::Copy(text), *span),
            // comments and PIs are always permitted
            Event::Comment { .. } | Event::ProcessingInstruction { .. } | Event::Eof => {}
        }
        self.enforce_error_cap();
    }

    /// Consumes one zero-copy event — the allocation-free hot path.
    /// Buffered leaf text borrows the source (`'src`) instead of being
    /// copied. Once a budget trips ([`tripped`](Self::tripped)), events
    /// are discarded.
    pub fn feed_borrowed(&mut self, event: BorrowedEvent<'src, '_>) {
        if self.gate(borrowed_event_span(&event)) {
            return;
        }
        match event {
            BorrowedEvent::StartElement {
                name,
                attributes,
                span,
                ..
            } => self.on_start(name, attributes, span),
            BorrowedEvent::EndElement { .. } => self.on_end(),
            BorrowedEvent::Text { text, span } => self.on_text(TextRun::Zero(text), span),
            BorrowedEvent::Comment { .. }
            | BorrowedEvent::ProcessingInstruction { .. }
            | BorrowedEvent::Eof => {}
        }
        self.enforce_error_cap();
    }

    /// Consumes one zero-copy event whose source buffer does *not*
    /// outlive the validator — the chunked-feed path, where events
    /// borrow a window that mutates between chunks. Leaf text of
    /// simple-content frames is copied when buffered (everything else
    /// stays allocation-free), which is the price of not holding the
    /// feed buffer alive; complex-content documents still validate with
    /// zero per-event allocations.
    pub fn feed_transient(&mut self, event: &BorrowedEvent<'_, '_>) {
        if self.gate(borrowed_event_span(event)) {
            return;
        }
        match event {
            BorrowedEvent::StartElement {
                name,
                attributes,
                span,
                ..
            } => self.on_start(name, attributes, *span),
            BorrowedEvent::EndElement { .. } => self.on_end(),
            BorrowedEvent::Text { text, span } => self.on_text(TextRun::Copy(text), *span),
            BorrowedEvent::Comment { .. }
            | BorrowedEvent::ProcessingInstruction { .. }
            | BorrowedEvent::Eof => {}
        }
        self.enforce_error_cap();
    }

    /// How many events may pass between clock reads when a deadline or
    /// cancel token is set. Power of two; at streaming throughput this
    /// bounds expiry-detection latency to microseconds while keeping the
    /// `Instant::now()` syscall off all but 1/32 of event gates (B11's
    /// `*-deadline` rows measure exactly this trade).
    const CLOCK_STRIDE: u32 = 32;

    /// The per-event budget gate: `true` means drop the event. Reads the
    /// clock only when the budget actually carries a deadline or token —
    /// and then only every [`CLOCK_STRIDE`](Self::CLOCK_STRIDE)th event,
    /// starting with the first — so the default hot path costs two
    /// predictable branches.
    fn gate(&mut self, span: Option<Span>) -> bool {
        if self.tripped {
            return true;
        }
        if self.limits.has_clock() {
            let due = self.clock_events & (Self::CLOCK_STRIDE - 1) == 0;
            self.clock_events = self.clock_events.wrapping_add(1);
            if due {
                if let Some(kind) = self.limits.expired_kind() {
                    limits::record_trip(&kind);
                    self.errors.push(ValidationError::at_opt(
                        ValidationErrorKind::Resource(kind),
                        span,
                    ));
                    self.tripped = true;
                    return true;
                }
            }
        }
        false
    }

    /// Applies `max_errors` after an event's checks ran: the list is cut
    /// to the exact prefix an unbounded run would have started with, plus
    /// one [`ValidationErrorKind::Resource`] marker carrying the span of
    /// the first suppressed error.
    fn enforce_error_cap(&mut self) {
        if !self.tripped && crate::cap_errors(&mut self.errors, &self.limits) {
            self.tripped = true;
        }
    }

    /// Whether a resource budget has tripped; once `true`, further events
    /// are ignored and the error list is final apart from metrics flushes.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Feeds every event from `events` in order, returning the number of
    /// violations found so far (over the whole stream, not just this
    /// batch). Accepts owned events or references, so a handler can pipe
    /// an event source straight through and abort on a rising
    /// [`error_count`](Self::error_count) without collecting anything:
    ///
    /// ```ignore
    /// if validator.feed_all(&batch) > limit {
    ///     return reject(validator.into_errors());
    /// }
    /// ```
    pub fn feed_all<E: std::borrow::Borrow<Event>>(
        &mut self,
        events: impl IntoIterator<Item = E>,
    ) -> usize {
        for event in events {
            self.feed(event.borrow());
        }
        self.errors.len()
    }

    /// The violations found so far.
    pub fn errors(&self) -> &[ValidationError] {
        &self.errors
    }

    /// Number of violations found so far — the cheap mid-stream abort
    /// check (no error list is cloned or drained).
    pub fn error_count(&self) -> usize {
        self.errors.len()
    }

    /// Number of currently open element frames — the validator's entire
    /// per-document state (besides leaf text buffers).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Deepest element nesting seen so far — the number the per-document
    /// wide event and the `validator_stream_max_depth` histogram report.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Finishes the document and returns all violations. Reports
    /// [`ValidationErrorKind::NoRootElement`] if no element was ever fed,
    /// mirroring the tree validator on an empty document. A tripped
    /// stream skips that check — the budget stopped the run, so "no root
    /// seen" proves nothing.
    pub fn finish(mut self) -> Vec<ValidationError> {
        if !self.saw_root && !self.tripped {
            self.errors
                .push(ValidationError::nowhere(ValidationErrorKind::NoRootElement));
        }
        self.flush_metrics();
        self.errors
    }

    /// Abandons the stream, keeping the violations found so far.
    pub fn into_errors(self) -> Vec<ValidationError> {
        self.flush_metrics();
        self.errors
    }

    /// Records this stream's error population and depth once, at the
    /// terminal call ([`finish`](Self::finish) / [`into_errors`](Self::into_errors)
    /// — both consume the validator, so this cannot double-count).
    fn flush_metrics(&self) {
        if !obs::enabled() {
            return;
        }
        crate::record_errors("streaming", &self.errors);
        obs::metrics()
            .histogram(
                "validator_stream_max_depth",
                "Deepest element nesting per streamed document.",
                obs::DEPTH_BUCKETS,
            )
            .observe(self.max_depth as f64);
    }

    fn on_start<A: AttrView>(&mut self, name: &str, attributes: &[A], span: Span) {
        // documents name only what a schema declared (plus hostile noise);
        // a name the schema never interned cannot be valid anywhere, and
        // lookup never grows the table, so attacker input stays O(1)
        let sym = symbols::lookup(name);
        let index = self.index;
        let frame = if let Some(parent) = self.stack.last_mut() {
            match parent {
                Frame::Complex {
                    name: parent_name,
                    type_sym,
                    matcher,
                    content_ok,
                    ..
                } => {
                    if *content_ok && !sym.is_some_and(|s| matcher.try_step_sym(s)) {
                        // the cold path: re-step by string for the rich
                        // error (a failed step leaves the state unchanged,
                        // so the re-step sees the exact same state)
                        if let Err(e) = matcher.step(name) {
                            *content_ok = false;
                            self.errors.push(ValidationError::at(
                                ValidationErrorKind::UnexpectedChild {
                                    parent: symbols::name(*parent_name).to_string(),
                                    child: name.to_string(),
                                    expected: e.expected,
                                },
                                span,
                            ));
                        }
                    }
                    // enter declared children regardless, so nested errors
                    // surface too; undeclared ones were just reported
                    match sym.and_then(|s| index.child(*type_sym, s)) {
                        Some(plan) => {
                            let plan = plan.clone();
                            self.open_with_plan(
                                sym.expect("child plan implies sym"),
                                plan,
                                attributes,
                                span,
                            )
                        }
                        None => Frame::Skip,
                    }
                }
                Frame::Simple {
                    name: parent_name, ..
                } => {
                    self.errors.push(ValidationError::at(
                        ValidationErrorKind::UnexpectedChild {
                            parent: symbols::name(*parent_name).to_string(),
                            child: name.to_string(),
                            expected: Vec::new(),
                        },
                        span,
                    ));
                    Frame::Skip
                }
                Frame::Skip => Frame::Skip,
            }
        } else {
            self.saw_root = true;
            match sym.and_then(|s| index.root(s).map(|p| (s, p))) {
                Some((_, RootPlan::Abstract)) => {
                    self.errors.push(ValidationError::at(
                        ValidationErrorKind::AbstractElement(name.to_string()),
                        span,
                    ));
                    Frame::Skip
                }
                Some((s, RootPlan::Elem(plan))) => {
                    let plan = plan.clone();
                    self.open_with_plan(s, plan, attributes, span)
                }
                None => {
                    self.errors.push(ValidationError::at(
                        ValidationErrorKind::UndeclaredRoot(name.to_string()),
                        span,
                    ));
                    Frame::Skip
                }
            }
        };
        self.stack.push(frame);
        self.max_depth = self.max_depth.max(self.stack.len());
    }

    /// Runs the element-open checks (abstract type, attributes) against a
    /// precomputed plan and builds the frame — the symbol-path twin of
    /// the old per-element dispatch on a `TypeRef`, with the same checks
    /// in the same order.
    fn open_with_plan<A: AttrView>(
        &mut self,
        name: Sym,
        plan: Arc<ElemPlan>,
        attributes: &[A],
        span: Span,
    ) -> Frame<'src> {
        // an unresolvable type reports only itself: no attribute checks,
        // exactly like the tree walk (which returns before them)
        if let ContentPlan::Unknown(type_name) = &plan.content {
            self.errors.push(ValidationError::at(
                ValidationErrorKind::UnknownType(type_name.clone()),
                span,
            ));
            return Frame::Skip;
        }
        if let Some(type_name) = &plan.abstract_type {
            self.errors.push(ValidationError::at(
                ValidationErrorKind::AbstractType(type_name.clone()),
                span,
            ));
        }
        check_attributes_declared(
            self.compiled,
            symbols::name(name),
            attributes,
            &plan.attrs,
            Some(span),
            &mut self.errors,
        );
        match &plan.content {
            ContentPlan::Simple(_) => Frame::Simple {
                name,
                plan: plan.clone(),
                text: TextBuf::Empty,
                span,
            },
            ContentPlan::Complex {
                type_sym,
                dfa,
                mixed,
            } => Frame::Complex {
                name,
                type_sym: *type_sym,
                matcher: dfa.start(),
                mixed: *mixed,
                content_ok: true,
                span,
            },
            ContentPlan::Broken(message) => {
                self.errors.push(ValidationError::at(
                    ValidationErrorKind::SimpleType {
                        element: symbols::name(name).to_string(),
                        message: message.clone(),
                    },
                    span,
                ));
                Frame::Skip
            }
            ContentPlan::Unknown(_) => unreachable!("handled above"),
        }
    }

    fn on_text(&mut self, text: TextRun<'src, '_>, span: Span) {
        // Walk inward-out: the nearest frame decides. A Skip frame defers
        // to its enclosing frames only for simple-content buffering (the
        // tree's `text_content` concatenates *descendant* text), never for
        // text-placement errors (the tree walk does not descend into
        // undeclared subtrees).
        let top = match self.stack.len().checked_sub(1) {
            Some(top) => top,
            // text with no open element (prolog/epilog whitespace)
            None => return,
        };
        for i in (0..=top).rev() {
            match &mut self.stack[i] {
                Frame::Skip => continue,
                Frame::Simple { text: buffer, .. } => buffer.push(text),
                Frame::Complex { name, mixed, .. } => {
                    if i == top && !*mixed && !text.as_str().trim().is_empty() {
                        let element = symbols::name(*name).to_string();
                        self.errors.push(ValidationError::at(
                            ValidationErrorKind::TextNotAllowed { element },
                            span,
                        ));
                    }
                }
            }
            return;
        }
    }

    fn on_end(&mut self) {
        let frame = match self.stack.pop() {
            Some(f) => f,
            // unmatched end tag: the reader rejects this before we see it
            None => return,
        };
        match frame {
            Frame::Simple {
                name,
                plan,
                text,
                span,
            } => {
                let type_ref = match &plan.content {
                    ContentPlan::Simple(t) => t,
                    _ => unreachable!("Simple frames hold Simple plans"),
                };
                if let Err(e) = self
                    .compiled
                    .schema()
                    .check_simple_value(type_ref, text.as_str())
                {
                    self.errors.push(ValidationError::at(
                        ValidationErrorKind::SimpleType {
                            element: symbols::name(name).to_string(),
                            message: e.to_string(),
                        },
                        span,
                    ));
                }
            }
            Frame::Complex {
                name,
                matcher,
                content_ok,
                span,
                ..
            } => {
                if content_ok && !matcher.is_accepting() {
                    self.errors.push(ValidationError::at(
                        ValidationErrorKind::IncompleteContent {
                            element: symbols::name(name).to_string(),
                            expected: matcher.expected(),
                        },
                        span,
                    ));
                }
            }
            Frame::Skip => {}
        }
    }
}

/// The source span an owned event would anchor an error to (`None` for
/// `Eof`, which has no position).
fn owned_event_span(event: &Event) -> Option<Span> {
    match event {
        Event::StartElement { span, .. }
        | Event::EndElement { span, .. }
        | Event::Text { span, .. }
        | Event::Comment { span, .. }
        | Event::ProcessingInstruction { span, .. } => Some(*span),
        Event::Eof => None,
    }
}

/// [`owned_event_span`] for the zero-copy stream.
fn borrowed_event_span(event: &BorrowedEvent<'_, '_>) -> Option<Span> {
    match event {
        BorrowedEvent::StartElement { span, .. }
        | BorrowedEvent::EndElement { span, .. }
        | BorrowedEvent::Text { span, .. }
        | BorrowedEvent::Comment { span, .. }
        | BorrowedEvent::ProcessingInstruction { span, .. } => Some(*span),
        BorrowedEvent::Eof => None,
    }
}

/// Parses and validates `src` in one streaming pass, without building a
/// tree — end to end on the zero-copy path: borrowed events, symbol-keyed
/// dispatch, borrowed text buffers. Parse failures surface as a trailing
/// [`ValidationErrorKind::NotWellFormed`] after whatever violations the
/// valid prefix already produced.
///
/// Runs under [`Limits::default`] — generous enough that legitimate
/// documents validate byte-identically to an unbounded run, tight enough
/// that hostile input is rejected in bounded time and memory. Use
/// [`validate_str_streaming_with_limits`] to tune or disable the budget.
pub fn validate_str_streaming(compiled: &CompiledSchema, src: &str) -> Vec<ValidationError> {
    validate_str_streaming_with_limits(compiled, src, &Limits::default())
}

/// [`validate_str_streaming`] under an explicit resource budget: the
/// reader enforces the parse-side ceilings, the validator the
/// collection-side ones, and a trip ends the stream with a single
/// [`ValidationErrorKind::Resource`] marker after whatever errors the
/// governed prefix already produced.
pub fn validate_str_streaming_with_limits(
    compiled: &CompiledSchema,
    src: &str,
    limits: &Limits,
) -> Vec<ValidationError> {
    let span = obs::span!("validate.stream");
    let (errors, tally) = validate_str_streaming_inner(compiled, src, limits);
    // one end-of-run clock read, shared by the trace record, the latency
    // histogram, and the wide event's total
    let elapsed = span.finish();
    record_stream_run("stream", elapsed, tally, &errors);
    errors
}

/// What a streaming run knew about its document besides the error list —
/// the raw material for its wide event, captured just before the reader
/// and validator are consumed.
struct DocTally {
    stats: xmlparse::ReaderStats,
    max_depth: u64,
}

fn validate_str_streaming_inner(
    compiled: &CompiledSchema,
    src: &str,
    limits: &Limits,
) -> (Vec<ValidationError>, DocTally) {
    let mut reader = Reader::with_limits(src, limits.clone());
    let mut validator = StreamingValidator::with_limits(compiled, limits.clone());
    loop {
        let outcome = reader.next_event_borrowed();
        match outcome {
            Ok(BorrowedEvent::Eof) => {
                let tally = DocTally {
                    stats: reader.stats(),
                    max_depth: validator.max_depth() as u64,
                };
                return (validator.finish(), tally);
            }
            Ok(event) => {
                validator.feed_borrowed(event);
                if validator.tripped() {
                    // the budget marker is already the last error; stop
                    // pulling events so a hostile tail costs nothing
                    let tally = DocTally {
                        stats: reader.stats(),
                        max_depth: validator.max_depth() as u64,
                    };
                    return (validator.into_errors(), tally);
                }
            }
            Err(e) => {
                let tally = DocTally {
                    stats: reader.stats(),
                    max_depth: validator.max_depth() as u64,
                };
                return (terminal_parse_error(validator, e), tally);
            }
        }
    }
}

/// Ends a streaming run on a fatal parse error: appends the terminal
/// error — typed, for resource trips; `NotWellFormed` otherwise — to
/// whatever violations the valid prefix already produced.
/// `into_errors()` has already flushed the validator's own tallies; the
/// synthesized terminal error must be recorded separately or it would go
/// unmetered.
fn terminal_parse_error(
    validator: StreamingValidator<'_, '_>,
    e: ParseError,
) -> Vec<ValidationError> {
    let mut errors = validator.into_errors();
    let span = Span {
        start: e.position,
        end: e.position,
    };
    let terminal = match e.kind {
        // the reader already counted the trip; surface it typed rather
        // than as a well-formedness failure
        ParseErrorKind::Resource(kind) => {
            ValidationError::at(ValidationErrorKind::Resource(kind), span)
        }
        kind => ValidationError::at(ValidationErrorKind::NotWellFormed(kind.to_string()), span),
    };
    crate::record_errors("streaming", std::slice::from_ref(&terminal));
    errors.push(terminal);
    errors
}

/// Validates input arriving as byte chunks — same checks, same error
/// list (kinds *and* spans) as [`validate_str_streaming`] over the
/// chunks' concatenation, but in memory bounded by element depth plus
/// one in-flight token: the chunked-parse path for documents larger
/// than memory. Runs under [`Limits::default`].
pub fn validate_chunks_streaming<'c>(
    compiled: &CompiledSchema,
    chunks: impl IntoIterator<Item = &'c [u8]>,
) -> Vec<ValidationError> {
    validate_chunks_streaming_with_limits(compiled, chunks, &Limits::default())
}

/// [`validate_chunks_streaming`] under an explicit resource budget.
/// `max_input_bytes` governs the *cumulative* fed byte count, so the
/// budget holds even though no single chunk exceeds it.
pub fn validate_chunks_streaming_with_limits<'c>(
    compiled: &CompiledSchema,
    chunks: impl IntoIterator<Item = &'c [u8]>,
    limits: &Limits,
) -> Vec<ValidationError> {
    let span = obs::span!("validate.stream.chunks");
    let mut feeder = FeedReader::with_limits(limits.clone());
    let mut validator = StreamingValidator::with_limits(compiled, limits.clone());
    let mut outcome: Result<bool, ParseError> = Ok(true);
    for chunk in chunks {
        outcome = feeder.feed(chunk, |event| {
            validator.feed_transient(event);
            !validator.tripped()
        });
        if !matches!(outcome, Ok(true)) {
            break;
        }
    }
    if let Ok(true) = outcome {
        outcome = feeder
            .finish(|event| {
                validator.feed_transient(event);
                !validator.tripped()
            })
            .map(|_| true);
    }
    let tally = DocTally {
        stats: feeder.stats(),
        max_depth: validator.max_depth() as u64,
    };
    let errors = conclude_feed(validator, outcome);
    let elapsed = span.finish();
    record_stream_run("stream.chunks", elapsed, tally, &errors);
    errors
}

/// How many bytes [`validate_read_streaming`] pulls per `read` call.
/// Large enough that per-chunk resume overhead vanishes against scan
/// cost, small enough that the window stays cache-friendly.
const READ_CHUNK_BYTES: usize = 64 * 1024;

/// Validates a byte stream pulled from `input` — [`validate_chunks_streaming`]
/// over [`READ_CHUNK_BYTES`]-sized reads, so a multi-gigabyte file (or
/// socket) validates in O(depth) memory without ever being resident.
/// I/O errors are the caller's problem and propagate as `Err`; parse and
/// validation problems come back in the usual error list.
pub fn validate_read_streaming<R: std::io::Read>(
    compiled: &CompiledSchema,
    input: R,
) -> std::io::Result<Vec<ValidationError>> {
    validate_read_streaming_with_limits(compiled, input, &Limits::default())
}

/// [`validate_read_streaming`] under an explicit resource budget.
pub fn validate_read_streaming_with_limits<R: std::io::Read>(
    compiled: &CompiledSchema,
    mut input: R,
    limits: &Limits,
) -> std::io::Result<Vec<ValidationError>> {
    let span = obs::span!("validate.stream.read");
    let mut feeder = FeedReader::with_limits(limits.clone());
    let mut validator = StreamingValidator::with_limits(compiled, limits.clone());
    let mut buf = vec![0u8; READ_CHUNK_BYTES];
    let mut outcome: Result<bool, ParseError> = Ok(true);
    loop {
        let n = match input.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        outcome = feeder.feed(&buf[..n], |event| {
            validator.feed_transient(event);
            !validator.tripped()
        });
        if !matches!(outcome, Ok(true)) {
            break;
        }
    }
    if let Ok(true) = outcome {
        outcome = feeder
            .finish(|event| {
                validator.feed_transient(event);
                !validator.tripped()
            })
            .map(|_| true);
    }
    let tally = DocTally {
        stats: feeder.stats(),
        max_depth: validator.max_depth() as u64,
    };
    let errors = conclude_feed(validator, outcome);
    let elapsed = span.finish();
    record_stream_run("stream.read", elapsed, tally, &errors);
    Ok(errors)
}

/// Turns a feed run's outcome into the final error list: a completed
/// document finishes the validator (root checks included), a stopped or
/// tripped stream keeps what it found, a parse error appends its
/// terminal marker.
fn conclude_feed(
    validator: StreamingValidator<'_, '_>,
    outcome: Result<bool, ParseError>,
) -> Vec<ValidationError> {
    match outcome {
        Ok(true) if !validator.tripped() => validator.finish(),
        Ok(_) => validator.into_errors(),
        Err(e) => terminal_parse_error(validator, e),
    }
}

/// The per-run observability flush shared by every streaming entry
/// point: latency histogram and rejection counter when metrics are on,
/// a per-document wide event when the flight recorder is on. `elapsed`
/// comes from the entry point's single span-finish clock read, so every
/// surface reports the same duration.
fn record_stream_run(
    entry: &'static str,
    elapsed: Option<std::time::Duration>,
    tally: DocTally,
    errors: &[ValidationError],
) {
    let limit_trips = errors
        .iter()
        .filter(|e| matches!(e.kind, ValidationErrorKind::Resource(_)))
        .count() as u64;
    if obs::enabled() {
        if let Some(elapsed) = elapsed {
            obs::metrics()
                .histogram(
                    "validator_stream_seconds",
                    "Streaming (parse + validate) latency per document.",
                    obs::DURATION_BUCKETS,
                )
                .observe_duration(elapsed);
        }
        if limit_trips > 0 {
            limits::record_rejected();
        }
    }
    if obs::trace::enabled() {
        let outcome = if limit_trips > 0 {
            obs::trace::Outcome::ResourceTripped
        } else if errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::NotWellFormed(_)))
        {
            obs::trace::Outcome::Malformed
        } else if !errors.is_empty() {
            obs::trace::Outcome::Invalid
        } else {
            obs::trace::Outcome::Valid
        };
        let total = elapsed.unwrap_or_default();
        obs::trace::record_wide_event(obs::trace::WideEvent {
            entry,
            bytes: tally.stats.bytes,
            events: tally.stats.events,
            max_depth: tally.max_depth,
            borrowed_events: tally.stats.borrowed_events,
            owned_events: tally.stats.owned_events,
            error_count: errors.len() as u64,
            limit_trips,
            outcome,
            // parse and validation are fused on the streaming path, so
            // the run is one phase; the trace tree has the fine structure
            phases: vec![(entry, total)],
            total,
            attrs: Vec::new(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_document;
    use limits::{CancelToken, ResourceErrorKind};
    use schema::corpus::{PURCHASE_ORDER_XML, PURCHASE_ORDER_XSD, WML_XSD};
    use std::time::{Duration, Instant};

    fn po() -> CompiledSchema {
        CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap()
    }

    fn wml() -> CompiledSchema {
        CompiledSchema::parse(WML_XSD).unwrap()
    }

    /// Both validators on the same source; asserts full agreement
    /// (kinds *and* spans) and returns the streaming list.
    fn both(compiled: &CompiledSchema, src: &str) -> Vec<ValidationError> {
        let streamed = validate_str_streaming(compiled, src);
        let doc = xmlparse::parse_document(src).expect("well-formed test input");
        let treed = validate_document(compiled, &doc);
        assert_eq!(streamed, treed, "validators disagree on:\n{src}");
        streamed
    }

    #[test]
    fn paper_document_is_valid() {
        assert!(both(&po(), PURCHASE_ORDER_XML).is_empty());
    }

    #[test]
    fn mixed_content_allows_text() {
        let errors = both(
            &wml(),
            "<wml><card id=\"c\"><p>hello <b>bold</b> world<br/></p></card></wml>",
        );
        assert!(errors.is_empty(), "{errors:#?}");
    }

    #[test]
    fn wrong_child_order_detected() {
        let src = PURCHASE_ORDER_XML
            .replacen("<shipTo", "<billTo", 1)
            .replacen("</shipTo>", "</billTo>", 1);
        let errors = validate_str_streaming(&po(), &src);
        assert!(errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::UnexpectedChild { .. })));
    }

    #[test]
    fn bad_simple_value_detected_with_position() {
        let src = PURCHASE_ORDER_XML.replace("<zip>90952</zip>", "<zip>not a number</zip>");
        let errors = both(&po(), &src);
        assert_eq!(errors.len(), 1, "{errors:#?}");
        assert!(matches!(
            errors[0].kind,
            ValidationErrorKind::SimpleType { .. }
        ));
        assert!(errors[0].span.unwrap().start.line > 1);
    }

    #[test]
    fn attribute_violations_detected() {
        let src = PURCHASE_ORDER_XML
            .replace("orderDate=\"1999-10-20\"", "orderDate=\"soon\" bogus=\"x\"")
            .replace("country=\"US\"", "country=\"DE\"")
            .replace(" partNum=\"872-AA\"", "");
        let errors = both(&po(), &src);
        for expect in [
            |k: &ValidationErrorKind| matches!(k, ValidationErrorKind::AttributeValue { .. }),
            |k: &ValidationErrorKind| matches!(k, ValidationErrorKind::UndeclaredAttribute { .. }),
            |k: &ValidationErrorKind| matches!(k, ValidationErrorKind::FixedAttribute { .. }),
            |k: &ValidationErrorKind| matches!(k, ValidationErrorKind::MissingAttribute { .. }),
        ] {
            assert!(errors.iter().any(|e| expect(&e.kind)), "{errors:#?}");
        }
    }

    #[test]
    fn incomplete_content_detected() {
        let src = PURCHASE_ORDER_XML.replacen("<zip>90952</zip>", "", 1);
        let errors = both(&po(), &src);
        assert!(errors.iter().any(|e| matches!(
            &e.kind,
            ValidationErrorKind::IncompleteContent { expected, .. }
                if expected.contains(&"zip".to_string())
        )));
    }

    #[test]
    fn text_in_element_only_content_detected() {
        let errors = both(&wml(), "<wml>stray<card id=\"c\"><p>fine</p></card></wml>");
        assert!(errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::TextNotAllowed { .. })));
    }

    #[test]
    fn undeclared_root_detected() {
        let errors = both(&po(), "<unknownRoot/>");
        assert!(matches!(
            errors[0].kind,
            ValidationErrorKind::UndeclaredRoot(_)
        ));
    }

    #[test]
    fn undeclared_subtree_consumed_without_validation() {
        // the bogus subtree is reported once at its open tag; its inner
        // garbage is not separately validated (same as the tree walk)
        let src = PURCHASE_ORDER_XML.replace(
            "<comment>Hurry, my lawn is going wild</comment>",
            "<bogus><zip>still not checked</zip></bogus>",
        );
        let errors = both(&po(), &src);
        assert_eq!(errors.len(), 1, "{errors:#?}");
        assert!(matches!(
            &errors[0].kind,
            ValidationErrorKind::UnexpectedChild { child, .. } if child == "bogus"
        ));
    }

    #[test]
    fn malformed_input_reported_not_well_formed() {
        let errors = validate_str_streaming(&po(), "<purchaseOrder><shipTo></purchaseOrder>");
        assert!(matches!(
            errors.last().unwrap().kind,
            ValidationErrorKind::NotWellFormed(_)
        ));
    }

    #[test]
    fn duplicate_attributes_rejected_before_validation() {
        // duplicates are a well-formedness violation caught by the parser
        // (reader::DuplicateAttribute), so neither validator ever sees
        // them; the streaming entry point reports the rejection honestly
        let errors = validate_str_streaming(
            &po(),
            "<purchaseOrder orderDate=\"1999-10-20\" orderDate=\"1999-10-21\"/>",
        );
        assert!(matches!(
            &errors.last().unwrap().kind,
            ValidationErrorKind::NotWellFormed(m) if m.contains("duplicate attribute")
        ));
    }

    #[test]
    fn empty_input_reports_missing_root() {
        let errors = validate_str_streaming(&po(), "");
        assert!(!errors.is_empty());
    }

    #[test]
    fn memory_is_bounded_by_depth_not_length() {
        // feed a long flat document event by event; the stack never grows
        // beyond the element depth
        let compiled = wml();
        let mut page = String::from("<wml><card id=\"c\"><p><select name=\"d\">");
        for i in 0..2000 {
            page.push_str(&format!("<option value=\"{i}\">o{i}</option>"));
        }
        page.push_str("</select></p></card></wml>");
        let mut reader = Reader::new(&page);
        let mut v = StreamingValidator::new(&compiled);
        let mut max_depth = 0;
        loop {
            match reader.next_event().unwrap() {
                Event::Eof => break,
                event => {
                    v.feed(&event);
                    max_depth = max_depth.max(v.depth());
                }
            }
        }
        assert!(max_depth <= 5, "depth grew to {max_depth}");
        assert!(v.finish().is_empty());
    }

    #[test]
    fn borrowed_and_owned_feeding_agree() {
        // the two feeding modes run the same machinery; hold them to the
        // same error list on a document that exercises every frame kind
        let compiled = po();
        let src = PURCHASE_ORDER_XML
            .replace("orderDate=\"1999-10-20\"", "orderDate=\"soon\"")
            .replace("<zip>90952</zip>", "<zip>nope</zip>");
        let borrowed = validate_str_streaming(&compiled, &src);
        let mut reader = Reader::new(src.as_str());
        let mut v = StreamingValidator::new(&compiled);
        loop {
            match reader.next_event().unwrap() {
                Event::Eof => break,
                event => v.feed(&event),
            }
        }
        assert_eq!(v.finish(), borrowed);
    }

    #[test]
    fn feed_all_counts_errors_without_collecting() {
        let compiled = po();
        let mut reader = Reader::new("<purchaseOrder><junk/></purchaseOrder>");
        let mut events = Vec::new();
        loop {
            match reader.next_event().unwrap() {
                Event::Eof => break,
                event => events.push(event),
            }
        }
        // by reference
        let mut v = StreamingValidator::new(&compiled);
        assert_eq!(v.error_count(), 0);
        let count = v.feed_all(&events);
        assert_eq!(count, v.error_count());
        assert_eq!(count, 1, "{:#?}", v.errors());
        // by value, split into batches: the return value is cumulative
        let (first, rest) = events.split_at(1);
        let mut v2 = StreamingValidator::new(&compiled);
        assert_eq!(v2.feed_all(first.to_vec()), 0);
        assert_eq!(v2.feed_all(rest.to_vec()), count);
        assert_eq!(v2.finish().len(), count);
    }

    #[test]
    fn feed_and_errors_are_incremental() {
        let compiled = po();
        let mut v = StreamingValidator::new(&compiled);
        let mut reader = Reader::new("<purchaseOrder><junk/></purchaseOrder>");
        loop {
            match reader.next_event().unwrap() {
                Event::Eof => break,
                event => v.feed(&event),
            }
        }
        // <junk> rejected mid-stream, before finish()
        assert!(v
            .errors()
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::UnexpectedChild { .. })));
        v.finish();
    }

    /// A document producing a deterministic flood of validation errors:
    /// every `<item/>` is declared but missing its required `partNum`
    /// and its required children.
    fn error_flood(items: usize) -> String {
        let mut src = String::from("<purchaseOrder><items>");
        for _ in 0..items {
            src.push_str("<item/>");
        }
        src.push_str("</items></purchaseOrder>");
        src
    }

    #[test]
    fn default_budget_is_byte_identical_to_unbounded() {
        let compiled = po();
        for src in [
            PURCHASE_ORDER_XML.to_string(),
            PURCHASE_ORDER_XML.replace("<zip>90952</zip>", "<zip>x</zip>"),
            error_flood(20),
        ] {
            assert_eq!(
                validate_str_streaming_with_limits(&compiled, &src, &Limits::unbounded()),
                validate_str_streaming(&compiled, &src),
                "default limits changed the verdict on:\n{src}"
            );
        }
    }

    #[test]
    fn error_cap_yields_exact_prefix_plus_marker() {
        let compiled = po();
        let src = error_flood(30);
        let unbounded = validate_str_streaming_with_limits(&compiled, &src, &Limits::unbounded());
        assert!(unbounded.len() > 20, "flood too small: {}", unbounded.len());
        let capped = validate_str_streaming_with_limits(
            &compiled,
            &src,
            &Limits::default().with_max_errors(8),
        );
        assert_eq!(capped.len(), 9, "{capped:#?}");
        assert_eq!(&capped[..8], &unbounded[..8]);
        let marker = capped.last().unwrap();
        assert!(matches!(
            marker.kind,
            ValidationErrorKind::Resource(ResourceErrorKind::TooManyErrors { limit: 8 })
        ));
        // the marker sits where the first suppressed error would have
        assert_eq!(marker.span, unbounded[8].span);
    }

    #[test]
    fn feed_all_error_accumulation_is_capped() {
        let compiled = po();
        let src = error_flood(500);
        let mut reader = Reader::new(&src);
        let mut events = Vec::new();
        loop {
            match reader.next_event().unwrap() {
                Event::Eof => break,
                event => events.push(event),
            }
        }
        let mut v =
            StreamingValidator::with_limits(&compiled, Limits::default().with_max_errors(8));
        let count = v.feed_all(&events);
        assert!(v.tripped());
        assert_eq!(count, 9, "{:#?}", v.errors());
        let errors = v.finish();
        assert_eq!(errors.len(), 9);
        assert!(matches!(
            errors.last().unwrap().kind,
            ValidationErrorKind::Resource(ResourceErrorKind::TooManyErrors { limit: 8 })
        ));
        // the list was cut as soon as the cap tripped; its backing
        // allocation never grew with the flood
        assert!(errors.capacity() <= 64, "capacity {}", errors.capacity());
    }

    #[test]
    fn past_deadline_trips_on_first_event() {
        let compiled = po();
        let budget = Limits::default().with_deadline(Instant::now() - Duration::from_millis(10));
        let errors = validate_str_streaming_with_limits(&compiled, PURCHASE_ORDER_XML, &budget);
        assert_eq!(errors.len(), 1, "{errors:#?}");
        assert!(matches!(
            errors[0].kind,
            ValidationErrorKind::Resource(ResourceErrorKind::DeadlineExceeded)
        ));
        // anchored at the event that observed the expiry
        assert!(errors[0].span.is_some());
    }

    #[test]
    fn cancellation_stops_the_stream() {
        let compiled = po();
        let token = CancelToken::new();
        token.cancel();
        let budget = Limits::default().with_cancel_token(&token);
        let errors = validate_str_streaming_with_limits(&compiled, PURCHASE_ORDER_XML, &budget);
        assert_eq!(errors.len(), 1, "{errors:#?}");
        assert!(matches!(
            errors[0].kind,
            ValidationErrorKind::Resource(ResourceErrorKind::Cancelled)
        ));
    }

    #[test]
    fn parser_budget_trip_surfaces_typed_not_as_well_formedness() {
        let compiled = po();
        let budget = Limits::default().with_max_depth(2);
        let errors = validate_str_streaming_with_limits(&compiled, PURCHASE_ORDER_XML, &budget);
        let last = errors.last().unwrap();
        assert!(
            matches!(
                last.kind,
                ValidationErrorKind::Resource(ResourceErrorKind::DepthExceeded { limit: 2 })
            ),
            "{errors:#?}"
        );
        assert!(last.span.is_some());
        assert!(!errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::NotWellFormed(_))));
    }

    #[test]
    fn chunked_validation_matches_whole_input() {
        // every error list — kinds and spans — must be identical to the
        // whole-input run, whatever the chunk granularity
        let compiled = po();
        for src in [
            PURCHASE_ORDER_XML.to_string(),
            PURCHASE_ORDER_XML.replace("<zip>90952</zip>", "<zip>not a zip</zip>"),
            PURCHASE_ORDER_XML.replace("orderDate=\"1999-10-20\"", "orderDate=\"soon\""),
            error_flood(30),
        ] {
            let whole = validate_str_streaming(&compiled, &src);
            for size in [1, 3, 7, 64, 4096] {
                let chunks: Vec<&[u8]> = src.as_bytes().chunks(size).collect();
                assert_eq!(
                    validate_chunks_streaming(&compiled, chunks),
                    whole,
                    "chunk size {size} diverged on:\n{src}"
                );
            }
        }
    }

    #[test]
    fn chunked_validation_reports_malformed_input() {
        let compiled = po();
        let src = "<purchaseOrder><shipTo></purchaseOrder>";
        let whole = validate_str_streaming(&compiled, src);
        let chunks: Vec<&[u8]> = src.as_bytes().chunks(5).collect();
        assert_eq!(validate_chunks_streaming(&compiled, chunks), whole);
        // a truncated stream is an UnexpectedEof the whole-input parse
        // of the prefix would also report
        let errors = validate_chunks_streaming(&compiled, [&b"<purchaseOrder><shipTo"[..]]);
        assert!(matches!(
            errors.last().unwrap().kind,
            ValidationErrorKind::NotWellFormed(_)
        ));
    }

    #[test]
    fn read_streaming_matches_whole_input() {
        let compiled = po();
        let whole = validate_str_streaming(&compiled, PURCHASE_ORDER_XML);
        let via_read = validate_read_streaming(&compiled, PURCHASE_ORDER_XML.as_bytes()).unwrap();
        assert_eq!(via_read, whole);
    }

    #[test]
    fn chunked_input_budget_is_cumulative() {
        let compiled = po();
        let budget = Limits::default().with_max_input_bytes(64);
        let big = error_flood(100);
        let chunks: Vec<&[u8]> = big.as_bytes().chunks(16).collect();
        let errors = validate_chunks_streaming_with_limits(&compiled, chunks, &budget);
        assert!(
            matches!(
                errors.last().unwrap().kind,
                ValidationErrorKind::Resource(ResourceErrorKind::InputTooLarge { limit: 64, .. })
            ),
            "{errors:#?}"
        );
    }

    #[test]
    fn tripped_stream_skips_missing_root_report() {
        let compiled = po();
        let token = CancelToken::new();
        token.cancel();
        let mut v =
            StreamingValidator::with_limits(&compiled, Limits::default().with_cancel_token(&token));
        let mut reader = Reader::new(PURCHASE_ORDER_XML);
        loop {
            match reader.next_event().unwrap() {
                Event::Eof => break,
                event => v.feed(&event),
            }
        }
        let errors = v.finish();
        // only the cancellation marker — no misleading NoRootElement
        assert_eq!(errors.len(), 1, "{errors:#?}");
        assert!(matches!(
            errors[0].kind,
            ValidationErrorKind::Resource(ResourceErrorKind::Cancelled)
        ));
    }
}
